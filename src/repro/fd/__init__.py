"""Functional-dependency discovery (Metanome / TANE / HyFD substitute)."""

from .approximate import approximate_fds, g3_error
from .hyfd import HyFDResult, discover_fds_hyfd, hyfd
from .partition import StrippedPartition
from .rules import (
    CONFIRMED,
    PENDING,
    REJECTED,
    FunctionalDependency,
    ManagedRule,
    RuleSet,
    ValueRule,
)
from .tane import TaneResult, brute_force_fds, discover_fds, tane

__all__ = [
    "CONFIRMED",
    "FunctionalDependency",
    "approximate_fds",
    "g3_error",
    "HyFDResult",
    "ManagedRule",
    "PENDING",
    "REJECTED",
    "RuleSet",
    "StrippedPartition",
    "TaneResult",
    "ValueRule",
    "brute_force_fds",
    "discover_fds",
    "discover_fds_hyfd",
    "hyfd",
    "tane",
]

"""HyFD-style hybrid FD discovery: sampling + induction + validation.

Follows the structure of Papenbrock & Naumann (2016): a sampling phase
collects *agree sets* from row pairs (evidence of non-FDs), an induction
phase maintains minimal candidate LHS sets per RHS attribute, and a
validation phase checks candidates against the full data with stripped
partitions, feeding new violations back into induction until a fixpoint.
The output equals TANE's minimal-FD set (property-tested).
"""

from __future__ import annotations

import numpy as np

from ..dataframe import DataFrame
from ..dataframe.types import pack_bool_rows
from .partition import StrippedPartition
from .rules import FunctionalDependency

AttrSet = frozenset[str]


class HyFDResult:
    """Discovered minimal FDs plus phase statistics."""

    def __init__(self) -> None:
        self.dependencies: list[FunctionalDependency] = []
        self.sampled_pairs = 0
        self.validations = 0
        self.refinement_rounds = 0


def hyfd(
    frame: DataFrame,
    max_lhs_size: int | None = None,
    sample_pairs: int = 512,
    seed: int = 0,
    columns: list[str] | None = None,
    store=None,
) -> HyFDResult:
    """Run the hybrid discovery; ``max_lhs_size`` caps LHS length.

    ``store`` caches the validation-phase partitions by column content
    (see :meth:`StrippedPartition.from_columns`), so repeated discovery
    in a session revalidates unchanged attribute sets from cache.
    """
    attributes = list(columns) if columns is not None else frame.column_names
    result = HyFDResult()
    if not attributes or frame.num_rows == 0:
        return result
    limit = len(attributes) - 1 if max_lhs_size is None else max_lhs_size

    # Dense per-attribute value codes: row pairs agree on an attribute
    # exactly when their codes match (missing groups with missing), so the
    # sampling and validation phases run on integer arrays only.
    code_matrix = np.column_stack(
        [frame.column(attribute).codes()[0] for attribute in attributes]
    )

    agree_sets = _sample_agree_sets(code_matrix, attributes, sample_pairs, seed)
    result.sampled_pairs = len(agree_sets)

    # candidates[A] is an antichain of minimal LHS candidates for A.
    candidates: dict[str, set[AttrSet]] = {a: {frozenset()} for a in attributes}
    for agree in agree_sets:
        _apply_non_fd(candidates, agree, attributes, limit)

    attribute_index = {a: i for i, a in enumerate(attributes)}
    partitions: dict[AttrSet, StrippedPartition] = {}
    changed = True
    while changed:
        changed = False
        result.refinement_rounds += 1
        for dependent in attributes:
            dep_codes = code_matrix[:, attribute_index[dependent]]
            for lhs in sorted(candidates[dependent], key=lambda s: (len(s), sorted(s))):
                violation = _find_violation(
                    frame, lhs, dep_codes, partitions, store=store
                )
                result.validations += 1
                if violation is None:
                    continue
                agree = _agree_set(code_matrix, attributes, *violation)
                _apply_non_fd(candidates, agree, attributes, limit)
                changed = True
                break  # candidate set for this RHS changed; revisit fresh

    for dependent in attributes:
        minimal = _minimize(candidates[dependent])
        for lhs in sorted(minimal, key=lambda s: (len(s), sorted(s))):
            if len(lhs) <= limit:
                result.dependencies.append(
                    FunctionalDependency(tuple(sorted(lhs)), dependent)
                )
    return result


def discover_fds_hyfd(
    frame: DataFrame,
    max_lhs_size: int | None = None,
    seed: int = 0,
    store=None,
) -> list[FunctionalDependency]:
    """Convenience wrapper returning HyFD's minimal FDs."""
    return hyfd(
        frame, max_lhs_size=max_lhs_size, seed=seed, store=store
    ).dependencies


# ----------------------------------------------------------------------
# Sampling phase
# ----------------------------------------------------------------------
def _sample_agree_sets(
    code_matrix: np.ndarray, attributes: list[str], sample_pairs: int, seed: int
) -> list[AttrSet]:
    """Agree sets from neighbouring rows under per-attribute sort orders.

    Sorting by one attribute clusters equal values next to each other, so
    neighbour pairs are likely to agree somewhere — exactly the focused
    sampling HyFD uses to find informative non-FD evidence fast. Sorting
    happens on the dense value codes (missing codes sort last), keeping
    the whole phase in integer array space.
    """
    rng = np.random.default_rng(seed)
    n, n_attrs = code_matrix.shape
    per_attribute = max(8, sample_pairs // max(1, n_attrs))
    pairs = min(per_attribute, n - 1)
    if pairs <= 0 or n_attrs == 0:
        return []
    lefts_parts = []
    rights_parts = []
    for column_index in range(n_attrs):
        order = np.argsort(code_matrix[:, column_index], kind="stable")
        picks = rng.choice(n - 1, size=pairs, replace=False)
        lefts_parts.append(order[picks])
        rights_parts.append(order[picks + 1])
    lefts = np.concatenate(lefts_parts)
    rights = np.concatenate(rights_parts)
    agreement = code_matrix[lefts] == code_matrix[rights]
    agree_sets: set[AttrSet] = set()
    packed = pack_bool_rows(agreement)
    if packed is not None:
        # Pack each pair's agreement pattern into one int and dedupe the
        # ints before building frozensets — most sampled pairs repeat a
        # handful of patterns.
        keys, _ = packed
        full = (np.int64(1) << np.int64(n_attrs)) - 1
        for key in np.unique(keys).tolist():
            if key == full:
                continue
            agree_sets.add(
                frozenset(
                    a for j, a in enumerate(attributes) if (key >> j) & 1
                )
            )
    else:
        for row_agreement in agreement:
            if row_agreement.all():
                continue
            agree_sets.add(
                frozenset(
                    a for a, same in zip(attributes, row_agreement) if same
                )
            )
    return sorted(agree_sets, key=lambda s: (len(s), sorted(s)))


def _agree_set(
    code_matrix: np.ndarray, attributes: list[str], left: int, right: int
) -> AttrSet:
    same = code_matrix[left] == code_matrix[right]
    return frozenset(a for a, match in zip(attributes, same) if match)


# ----------------------------------------------------------------------
# Induction phase
# ----------------------------------------------------------------------
def _apply_non_fd(
    candidates: dict[str, set[AttrSet]],
    agree: AttrSet,
    attributes: list[str],
    limit: int,
) -> None:
    """Refine candidate LHS sets given evidence that ``agree ->/-> others``.

    A pair agreeing exactly on ``agree`` invalidates every candidate
    ``X -> A`` with ``X ⊆ agree`` and ``A ∉ agree``. Each invalidated X is
    extended by one attribute outside ``agree`` (staying minimal).
    """
    for dependent in attributes:
        if dependent in agree:
            continue
        current = candidates[dependent]
        invalid = {lhs for lhs in current if lhs <= agree}
        if not invalid:
            continue
        survivors = current - invalid
        extensions: set[AttrSet] = set()
        for lhs in invalid:
            for attribute in attributes:
                if attribute == dependent or attribute in agree or attribute in lhs:
                    continue
                extended = lhs | {attribute}
                if len(extended) > limit:
                    continue
                extensions.add(extended)
        merged = survivors | extensions
        candidates[dependent] = _minimize(merged)


def _minimize(sets: set[AttrSet]) -> set[AttrSet]:
    """Keep only subset-minimal elements."""
    ordered = sorted(sets, key=len)
    minimal: list[AttrSet] = []
    for candidate in ordered:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return set(minimal)


# ----------------------------------------------------------------------
# Validation phase
# ----------------------------------------------------------------------
def _find_violation(
    frame: DataFrame,
    lhs: AttrSet,
    dep_codes: np.ndarray,
    partitions: dict[AttrSet, StrippedPartition],
    store=None,
) -> tuple[int, int] | None:
    """Return one violating row pair for ``lhs -> dependent``, else None.

    ``dep_codes`` are the dependent attribute's dense value codes; a class
    violates the FD exactly when it spans more than one code.
    """
    key = frozenset(lhs)
    if key not in partitions:
        partitions[key] = StrippedPartition.from_columns(
            frame, sorted(lhs), store=store
        )
    return partitions[key].violation_pair(dep_codes)

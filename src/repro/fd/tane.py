"""TANE — level-wise discovery of minimal functional dependencies.

Implements the algorithm of Huhtala et al. (1999): a breadth-first walk of
the attribute-set lattice with stripped partitions, rhs-candidate sets
``C+`` for minimality pruning, and key pruning.
"""

from __future__ import annotations

from itertools import combinations

from ..dataframe import DataFrame
from .partition import StrippedPartition, error_from_columns
from .rules import FunctionalDependency

AttrSet = frozenset[str]


class TaneResult:
    """Discovered minimal FDs plus search statistics.

    ``partitions_computed`` counts lattice nodes whose partition *or*
    stripped error was evaluated — the hybrid refinement may satisfy a
    node with an error-only kernel instead of materializing its classes,
    but the node still cost one refinement evaluation.
    """

    def __init__(self) -> None:
        self.dependencies: list[FunctionalDependency] = []
        self.levels_explored = 0
        self.partitions_computed = 0

    def add(self, determinants: AttrSet, dependent: str) -> None:
        self.dependencies.append(
            FunctionalDependency(tuple(sorted(determinants)), dependent)
        )


def discover_fds(
    frame: DataFrame,
    max_lhs_size: int | None = None,
    columns: list[str] | None = None,
    store=None,
) -> list[FunctionalDependency]:
    """Convenience wrapper returning the minimal FDs of a frame."""
    return tane(
        frame, max_lhs_size=max_lhs_size, columns=columns, store=store
    ).dependencies


def tane(
    frame: DataFrame,
    max_lhs_size: int | None = None,
    columns: list[str] | None = None,
    store=None,
) -> TaneResult:
    """Run TANE over ``frame``; optionally cap the LHS size for speed.

    ``store`` (an :class:`~repro.core.artifacts.ArtifactStore`) caches
    the base partitions and lattice error integers by column content, so
    repeated discovery inside a session — including after repairs that
    leave most columns untouched — skips the grouping sorts for every
    unchanged attribute set.
    """
    attributes = list(columns) if columns is not None else frame.column_names
    result = TaneResult()
    if not attributes or frame.num_rows == 0:
        return result
    schema: AttrSet = frozenset(attributes)
    limit = len(attributes) if max_lhs_size is None else max_lhs_size + 1

    partitions: dict[AttrSet, StrippedPartition] = {
        frozenset(): StrippedPartition.from_columns(frame, [], store=store)
    }
    errors: dict[AttrSet, int] = {frozenset(): partitions[frozenset()].error}
    for attribute in attributes:
        partition = StrippedPartition.from_column(frame, attribute, store=store)
        partitions[frozenset([attribute])] = partition
        errors[frozenset([attribute])] = partition.error
        result.partitions_computed += 1

    # C+(X): rhs candidates. C+(∅) = R.
    rhs_candidates: dict[AttrSet, AttrSet] = {frozenset(): schema}
    level: list[AttrSet] = [frozenset([a]) for a in attributes]

    while level and result.levels_explored < limit:
        result.levels_explored += 1
        _compute_candidates(level, rhs_candidates)
        _compute_dependencies(level, rhs_candidates, errors, schema, result)
        level = _prune(level, rhs_candidates, errors, schema, result)
        # Partitions for the generated level are only needed if the loop
        # will explore it — and the deepest explored level only ever
        # reads the error integer, never the classes, so its products
        # run in cheap error-only mode.
        if result.levels_explored >= limit:
            mode = "skip"
        elif result.levels_explored + 1 >= limit:
            mode = "error_only"
        else:
            mode = "full"
        level = _generate_next_level(
            frame, level, partitions, errors, result, mode, store=store
        )
    return result


def _compute_candidates(
    level: list[AttrSet], rhs_candidates: dict[AttrSet, AttrSet]
) -> None:
    for subset in level:
        if subset in rhs_candidates:
            continue
        candidate: AttrSet | None = None
        for attribute in subset:
            parent = subset - {attribute}
            parent_candidates = rhs_candidates.get(parent, frozenset())
            candidate = (
                parent_candidates
                if candidate is None
                else candidate & parent_candidates
            )
        rhs_candidates[subset] = candidate if candidate is not None else frozenset()


def _compute_dependencies(
    level: list[AttrSet],
    rhs_candidates: dict[AttrSet, AttrSet],
    errors: dict[AttrSet, int],
    schema: AttrSet,
    result: TaneResult,
) -> None:
    for subset in level:
        for attribute in sorted(subset & rhs_candidates[subset]):
            lhs = subset - {attribute}
            if errors[lhs] == errors[subset]:
                result.add(lhs, attribute)
                rhs_candidates[subset] = rhs_candidates[subset] - {attribute}
                rhs_candidates[subset] = rhs_candidates[subset] - (schema - subset)


def _prune(
    level: list[AttrSet],
    rhs_candidates: dict[AttrSet, AttrSet],
    errors: dict[AttrSet, int],
    schema: AttrSet,
    result: TaneResult,
) -> list[AttrSet]:
    # Minimality oracle for key pruning: X -> A (with X a superkey) is
    # minimal exactly when no already-output FD has the same dependent and
    # a LHS contained in X — every smaller valid FD was emitted at an
    # earlier level (or this level's compute_dependencies pass).
    found: dict[str, list[frozenset[str]]] = {}
    for fd in result.dependencies:
        found.setdefault(fd.dependent, []).append(frozenset(fd.determinants))

    remaining = []
    for subset in level:
        if not rhs_candidates[subset]:
            continue
        if errors[subset] == 0:
            for attribute in sorted(rhs_candidates[subset] - subset):
                smaller = found.get(attribute, [])
                if not any(lhs <= subset for lhs in smaller):
                    result.add(subset, attribute)
                    found.setdefault(attribute, []).append(subset)
            continue
        remaining.append(subset)
    return remaining


def _generate_next_level(
    frame: DataFrame,
    level: list[AttrSet],
    partitions: dict[AttrSet, StrippedPartition],
    errors: dict[AttrSet, int],
    result: TaneResult,
    mode: str = "full",
    store=None,
) -> list[AttrSet]:
    """Apriori-style candidate generation with partition products.

    ``mode`` controls how much work each generated union costs: ``full``
    materializes the refined partition (needed to build deeper levels),
    ``error_only`` computes just ``e(pi)`` (enough to explore the final
    level), and ``skip`` computes nothing (the level is never explored).
    """
    level_set = set(level)
    next_level: list[AttrSet] = []
    seen: set[AttrSet] = set()
    ordered = [tuple(sorted(subset)) for subset in level]
    ordered.sort()
    for i, left in enumerate(ordered):
        for right in ordered[i + 1 :]:
            if left[:-1] != right[:-1]:
                break
            union = frozenset(left) | frozenset(right)
            if union in seen:
                continue
            if all(
                union - {attribute} in level_set for attribute in union
            ):
                seen.add(union)
                next_level.append(union)
                if mode == "skip" or union in errors:
                    continue
                # Hybrid refinement: when both parents are materialized
                # and their stripped classes are small, the pairwise
                # product is cheapest (and worth materializing for deeper
                # levels). Otherwise grouping the cached column codes
                # directly beats scattering large owner arrays — those
                # unions stay unmaterialized and their supersets fall
                # back to code grouping too.
                left_part = partitions.get(frozenset(left))
                right_part = partitions.get(frozenset(right))
                small = (
                    left_part is not None
                    and right_part is not None
                    and left_part.size + right_part.size <= frame.num_rows
                )
                if small and mode == "full":
                    partitions[union] = left_part.product(right_part)
                    errors[union] = partitions[union].error
                elif small:
                    errors[union] = left_part.product_error(right_part)
                else:
                    errors[union] = error_from_columns(
                        frame, union, store=store
                    )
                result.partitions_computed += 1
    return next_level


def brute_force_fds(
    frame: DataFrame, max_lhs_size: int | None = None
) -> list[FunctionalDependency]:
    """Reference oracle: enumerate and check every candidate FD.

    Exponential — only for tests on small schemas. Returns minimal FDs.
    """
    attributes = frame.column_names
    limit = len(attributes) - 1 if max_lhs_size is None else max_lhs_size
    valid: list[FunctionalDependency] = []
    for dependent in attributes:
        others = [a for a in attributes if a != dependent]
        minimal: list[frozenset[str]] = []
        for size in range(0, limit + 1):
            for combo in combinations(others, size):
                lhs = frozenset(combo)
                if any(m <= lhs for m in minimal):
                    continue
                fd = FunctionalDependency(tuple(combo), dependent)
                if fd.holds_in(frame):
                    minimal.append(lhs)
                    valid.append(fd)
    return valid

"""TANE — level-wise discovery of minimal functional dependencies.

Implements the algorithm of Huhtala et al. (1999): a breadth-first walk of
the attribute-set lattice with stripped partitions, rhs-candidate sets
``C+`` for minimality pruning, and key pruning.
"""

from __future__ import annotations

from itertools import combinations

from ..dataframe import DataFrame
from .partition import StrippedPartition
from .rules import FunctionalDependency

AttrSet = frozenset[str]


class TaneResult:
    """Discovered minimal FDs plus search statistics."""

    def __init__(self) -> None:
        self.dependencies: list[FunctionalDependency] = []
        self.levels_explored = 0
        self.partitions_computed = 0

    def add(self, determinants: AttrSet, dependent: str) -> None:
        self.dependencies.append(
            FunctionalDependency(tuple(sorted(determinants)), dependent)
        )


def discover_fds(
    frame: DataFrame,
    max_lhs_size: int | None = None,
    columns: list[str] | None = None,
) -> list[FunctionalDependency]:
    """Convenience wrapper returning the minimal FDs of a frame."""
    return tane(frame, max_lhs_size=max_lhs_size, columns=columns).dependencies


def tane(
    frame: DataFrame,
    max_lhs_size: int | None = None,
    columns: list[str] | None = None,
) -> TaneResult:
    """Run TANE over ``frame``; optionally cap the LHS size for speed."""
    attributes = list(columns) if columns is not None else frame.column_names
    result = TaneResult()
    if not attributes or frame.num_rows == 0:
        return result
    schema: AttrSet = frozenset(attributes)
    limit = len(attributes) if max_lhs_size is None else max_lhs_size + 1

    partitions: dict[AttrSet, StrippedPartition] = {
        frozenset(): StrippedPartition.from_columns(frame, [])
    }
    for attribute in attributes:
        partitions[frozenset([attribute])] = StrippedPartition.from_column(
            frame, attribute
        )
        result.partitions_computed += 1

    # C+(X): rhs candidates. C+(∅) = R.
    rhs_candidates: dict[AttrSet, AttrSet] = {frozenset(): schema}
    level: list[AttrSet] = [frozenset([a]) for a in attributes]

    while level and result.levels_explored < limit:
        result.levels_explored += 1
        _compute_candidates(level, rhs_candidates)
        _compute_dependencies(level, rhs_candidates, partitions, schema, result)
        level = _prune(level, rhs_candidates, partitions, schema, result)
        level = _generate_next_level(level, partitions, result)
    return result


def _compute_candidates(
    level: list[AttrSet], rhs_candidates: dict[AttrSet, AttrSet]
) -> None:
    for subset in level:
        if subset in rhs_candidates:
            continue
        candidate: AttrSet | None = None
        for attribute in subset:
            parent = subset - {attribute}
            parent_candidates = rhs_candidates.get(parent, frozenset())
            candidate = (
                parent_candidates
                if candidate is None
                else candidate & parent_candidates
            )
        rhs_candidates[subset] = candidate if candidate is not None else frozenset()


def _compute_dependencies(
    level: list[AttrSet],
    rhs_candidates: dict[AttrSet, AttrSet],
    partitions: dict[AttrSet, StrippedPartition],
    schema: AttrSet,
    result: TaneResult,
) -> None:
    for subset in level:
        for attribute in sorted(subset & rhs_candidates[subset]):
            lhs = subset - {attribute}
            if partitions[lhs].error == partitions[subset].error:
                result.add(lhs, attribute)
                rhs_candidates[subset] = rhs_candidates[subset] - {attribute}
                rhs_candidates[subset] = rhs_candidates[subset] - (schema - subset)


def _prune(
    level: list[AttrSet],
    rhs_candidates: dict[AttrSet, AttrSet],
    partitions: dict[AttrSet, StrippedPartition],
    schema: AttrSet,
    result: TaneResult,
) -> list[AttrSet]:
    # Minimality oracle for key pruning: X -> A (with X a superkey) is
    # minimal exactly when no already-output FD has the same dependent and
    # a LHS contained in X — every smaller valid FD was emitted at an
    # earlier level (or this level's compute_dependencies pass).
    found: dict[str, list[frozenset[str]]] = {}
    for fd in result.dependencies:
        found.setdefault(fd.dependent, []).append(frozenset(fd.determinants))

    remaining = []
    for subset in level:
        if not rhs_candidates[subset]:
            continue
        if partitions[subset].is_superkey():
            for attribute in sorted(rhs_candidates[subset] - subset):
                smaller = found.get(attribute, [])
                if not any(lhs <= subset for lhs in smaller):
                    result.add(subset, attribute)
                    found.setdefault(attribute, []).append(subset)
            continue
        remaining.append(subset)
    return remaining


def _generate_next_level(
    level: list[AttrSet],
    partitions: dict[AttrSet, StrippedPartition],
    result: TaneResult,
) -> list[AttrSet]:
    """Apriori-style candidate generation with partition products."""
    level_set = set(level)
    next_level: list[AttrSet] = []
    seen: set[AttrSet] = set()
    ordered = [tuple(sorted(subset)) for subset in level]
    ordered.sort()
    for i, left in enumerate(ordered):
        for right in ordered[i + 1 :]:
            if left[:-1] != right[:-1]:
                break
            union = frozenset(left) | frozenset(right)
            if union in seen:
                continue
            if all(
                union - {attribute} in level_set for attribute in union
            ):
                seen.add(union)
                next_level.append(union)
                if union not in partitions:
                    partitions[union] = partitions[frozenset(left)].product(
                        partitions[frozenset(right)]
                    )
                    result.partitions_computed += 1
    return next_level


def brute_force_fds(
    frame: DataFrame, max_lhs_size: int | None = None
) -> list[FunctionalDependency]:
    """Reference oracle: enumerate and check every candidate FD.

    Exponential — only for tests on small schemas. Returns minimal FDs.
    """
    attributes = frame.column_names
    limit = len(attributes) - 1 if max_lhs_size is None else max_lhs_size
    valid: list[FunctionalDependency] = []
    for dependent in attributes:
        others = [a for a in attributes if a != dependent]
        minimal: list[frozenset[str]] = []
        for size in range(0, limit + 1):
            for combo in combinations(others, size):
                lhs = frozenset(combo)
                if any(m <= lhs for m in minimal):
                    continue
                fd = FunctionalDependency(tuple(combo), dependent)
                if fd.holds_in(frame):
                    minimal.append(lhs)
                    valid.append(fd)
    return valid

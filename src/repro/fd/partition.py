"""Stripped partitions — the core data structure of TANE-style FD discovery.

A partition groups row indices by their value combination on an attribute
set; *stripped* means singleton groups are dropped. The error measure
``e(X) = ||pi_X|| - |pi_X|`` lets FD validity be decided by comparing two
integers: ``X -> A`` holds exactly when ``e(X) == e(X ∪ {A})``.
"""

from __future__ import annotations

from typing import Iterable

from ..dataframe import DataFrame

_MISSING_TOKEN = ("__missing__",)


class StrippedPartition:
    """Equivalence classes (size >= 2) of rows over one attribute set."""

    __slots__ = ("classes", "n_rows")

    def __init__(self, classes: Iterable[Iterable[int]], n_rows: int) -> None:
        self.classes = [sorted(group) for group in classes if len(list(group)) >= 2]
        # Normalize ordering so equality/repr are deterministic.
        self.classes.sort()
        self.n_rows = n_rows

    # ------------------------------------------------------------------
    @classmethod
    def from_column(cls, frame: DataFrame, column: str) -> "StrippedPartition":
        groups: dict[object, list[int]] = {}
        values = frame.column(column).values()
        for row, value in enumerate(values):
            key = _MISSING_TOKEN if value is None else value
            groups.setdefault(key, []).append(row)
        return cls(groups.values(), frame.num_rows)

    @classmethod
    def from_columns(
        cls, frame: DataFrame, columns: Iterable[str]
    ) -> "StrippedPartition":
        names = list(columns)
        if not names:
            # pi_∅ is one class containing every row.
            return cls([list(range(frame.num_rows))], frame.num_rows)
        partition = cls.from_column(frame, names[0])
        for name in names[1:]:
            partition = partition.product(cls.from_column(frame, name))
        return partition

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def size(self) -> int:
        """||pi||: number of rows covered by non-singleton classes."""
        return sum(len(group) for group in self.classes)

    @property
    def error(self) -> int:
        """e(pi) = ||pi|| - |pi| — zero iff the attribute set is a superkey."""
        return self.size - self.num_classes

    def is_superkey(self) -> bool:
        return self.error == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrippedPartition):
            return NotImplemented
        return self.n_rows == other.n_rows and self.classes == other.classes

    def __repr__(self) -> str:
        return (
            f"StrippedPartition(classes={self.num_classes}, "
            f"size={self.size}, rows={self.n_rows})"
        )

    # ------------------------------------------------------------------
    def product(self, other: "StrippedPartition") -> "StrippedPartition":
        """Refinement pi_X * pi_Y = pi_{X ∪ Y} (linear-time algorithm)."""
        if self.n_rows != other.n_rows:
            raise ValueError("partitions cover different row counts")
        owner = [-1] * self.n_rows
        for class_id, group in enumerate(self.classes):
            for row in group:
                owner[row] = class_id
        buckets: dict[tuple[int, int], list[int]] = {}
        for other_id, group in enumerate(other.classes):
            for row in group:
                mine = owner[row]
                if mine >= 0:
                    buckets.setdefault((mine, other_id), []).append(row)
        return StrippedPartition(
            (group for group in buckets.values() if len(group) >= 2), self.n_rows
        )

    def refines(self, other: "StrippedPartition") -> bool:
        """True if every class of self is contained in a class of other.

        Rows absent from a stripped partition form singleton classes, which
        are contained in any class, so only self's explicit classes matter.
        """
        owner: dict[int, int] = {}
        for class_id, group in enumerate(other.classes):
            for row in group:
                owner[row] = class_id
        for group in self.classes:
            first = owner.get(group[0], -1 - group[0])
            for row in group[1:]:
                if owner.get(row, -1 - row) != first:
                    return False
        return True

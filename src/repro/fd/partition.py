"""Stripped partitions — the core data structure of TANE-style FD discovery.

A partition groups row indices by their value combination on an attribute
set; *stripped* means singleton groups are dropped. The error measure
``e(X) = ||pi_X|| - |pi_X|`` lets FD validity be decided by comparing two
integers: ``X -> A`` holds exactly when ``e(X) == e(X ∪ {A})``.

Storage contract: partitions are array-native. The equivalence classes
live in two numpy arrays — ``_rows`` (every covered row index, grouped
contiguously, ascending within each group) and ``_sizes`` (one length
per group) — built from the columnar engine's dense integer codes
(:meth:`repro.dataframe.Column.codes` /
:meth:`repro.dataframe.DataFrame.column_codes`). Equal cells share a
code and missing cells form their own group, so grouping and refinement
run as numpy sort kernels, and ``size``/``error`` are O(1). The public
``classes`` attribute (a sorted list of sorted row-index lists of plain
Python ints) is materialized lazily and cached, so consumers and tests
are unaffected.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..dataframe import DataFrame

_EMPTY = np.empty(0, dtype=np.int64)


def _group_rows_by_codes(
    codes: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group ``rows`` by integer codes into (rows, sizes) storage arrays.

    Codes need not be dense — one stable sort finds the groups. Singleton
    groups are dropped. ``rows`` must be ordered so that members of one
    code appear in ascending row order (true for positional codes and for
    refinement subsets of existing partitions). Groups come out in code
    order; the lexicographic ordering the sequence-era implementation
    exposed is applied lazily by :attr:`StrippedPartition.classes`.
    """
    n = codes.size
    if n == 0:
        return _EMPTY, _EMPTY
    order = codes.argsort(kind="stable")
    sorted_codes = codes[order]
    grouped_all = rows[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=is_start[1:])
    starts_all = np.flatnonzero(is_start)
    sizes_all = np.empty(starts_all.size, dtype=np.int64)
    np.subtract(starts_all[1:], starts_all[:-1], out=sizes_all[:-1])
    sizes_all[-1] = n - starts_all[-1]
    big = sizes_all >= 2
    if not big.any():
        return _EMPTY, _EMPTY
    return grouped_all[np.repeat(big, sizes_all)], sizes_all[big]


def stripped_error(codes: np.ndarray) -> int:
    """e(pi) of the partition induced by integer codes (need not be dense).

    Singleton groups contribute one row and one class each, cancelling in
    ``||pi|| - |pi|`` — so the stripped error is simply the number of
    keys minus the number of distinct keys, one ``np.sort`` away. This is
    the cheapest way to evaluate an FD candidate when the refined
    partition itself is never needed.
    """
    n = codes.size
    if n == 0:
        return 0
    sorted_keys = np.sort(codes)
    n_groups = 1 + int(np.count_nonzero(sorted_keys[1:] != sorted_keys[:-1]))
    return n - n_groups


def error_from_columns(
    frame: DataFrame, columns: Iterable[str], store=None
) -> int:
    """e(pi_X) straight from cached column codes, skipping class building.

    With a ``store``, the error integer is cached under the fingerprints
    of the named columns — repeated FD discovery over an unchanged (or
    partially repaired) frame skips the sort entirely.
    """
    names = list(columns)
    if not store:  # falsy when disabled: cold path, no hashing
        codes, _ = frame.column_codes(names, dense=False)
        return stripped_error(codes)
    # The error integer is independent of attribute order (grouping by a
    # composite key), so the key sorts the fingerprints — {A,B} and {B,A}
    # share one entry even when callers iterate sets. num_rows rides in
    # params for the empty attribute set, which has no fingerprints to
    # encode the frame size (same guard as from_columns).
    return store.cached(
        "fd:error",
        tuple(sorted(frame.column(name).fingerprint() for name in names)),
        (frame.num_rows,),
        lambda: stripped_error(frame.column_codes(names, dense=False)[0]),
    )


class StrippedPartition:
    """Equivalence classes (size >= 2) of rows over one attribute set."""

    __slots__ = ("_rows", "_sizes", "_classes", "_ids", "n_rows")

    def __init__(self, classes: Iterable[Iterable[int]], n_rows: int) -> None:
        # Materialize each group exactly once — a group may be a generator,
        # which a separate len(list(group)) probe would silently exhaust.
        materialized = [sorted(group) for group in classes]
        kept = [group for group in materialized if len(group) >= 2]
        # Normalize ordering so equality/repr are deterministic.
        kept.sort()
        self._classes: list[list[int]] | None = kept
        self._rows = np.fromiter(
            (row for group in kept for row in group),
            dtype=np.int64,
            count=sum(len(group) for group in kept),
        )
        self._sizes = np.array([len(group) for group in kept], dtype=np.int64)
        self._ids: np.ndarray | None = None
        self.n_rows = n_rows

    @classmethod
    def _from_arrays(
        cls, rows: np.ndarray, sizes: np.ndarray, n_rows: int
    ) -> "StrippedPartition":
        partition = cls.__new__(cls)
        partition._rows = rows
        partition._sizes = sizes
        partition._classes = None
        partition._ids = None
        partition.n_rows = n_rows
        return partition

    @classmethod
    def _from_codes(cls, codes: np.ndarray, n_rows: int) -> "StrippedPartition":
        positions = np.arange(codes.size, dtype=np.int64)
        rows, sizes = _group_rows_by_codes(codes, positions)
        return cls._from_arrays(rows, sizes, n_rows)

    # ------------------------------------------------------------------
    @classmethod
    def from_column(
        cls, frame: DataFrame, column: str, store=None
    ) -> "StrippedPartition":
        """Partition over one attribute, optionally artifact-cached.

        Partitions are pure functions of column content, so with a
        ``store`` they are keyed by the column's fingerprint and shared
        across discovery runs (partition objects are read-mostly: their
        lazy ``classes``/``_ids`` materialization is idempotent, and
        refinement builds new partitions rather than mutating).
        """
        if store:
            # Same key layout as from_columns, so single-attribute
            # partitions are shared between both entry points.
            return store.cached(
                "fd:partition",
                (frame.column(column).fingerprint(),),
                (frame.num_rows,),
                lambda: cls.from_column(frame, column),
            )
        codes, _ = frame.column(column).codes()
        return cls._from_codes(codes, frame.num_rows)

    @classmethod
    def from_columns(
        cls, frame: DataFrame, columns: Iterable[str], store=None
    ) -> "StrippedPartition":
        names = list(columns)
        if store:
            # num_rows rides in params: the empty attribute set has no
            # column fingerprints to encode the row count (pi_∅ covers
            # every row), and it keeps distinct-shape frames distinct.
            return store.cached(
                "fd:partition",
                tuple(frame.column(name).fingerprint() for name in names),
                (frame.num_rows,),
                lambda: cls.from_columns(frame, names),
            )
        if not names:
            # pi_∅ is one class containing every row.
            return cls([list(range(frame.num_rows))], frame.num_rows)
        codes, _ = frame.column_codes(names, dense=False)
        return cls._from_codes(codes, frame.num_rows)

    # ------------------------------------------------------------------
    @property
    def classes(self) -> list[list[int]]:
        """Equivalence classes as a sorted list of sorted row lists."""
        if self._classes is None:
            flat = self._rows.tolist()
            out: list[list[int]] = []
            start = 0
            for size in self._sizes.tolist():
                out.append(flat[start : start + size])
                start += size
            out.sort()
            self._classes = out
        return self._classes

    @property
    def num_classes(self) -> int:
        return int(self._sizes.size)

    @property
    def size(self) -> int:
        """||pi||: number of rows covered by non-singleton classes."""
        return int(self._rows.size)

    @property
    def error(self) -> int:
        """e(pi) = ||pi|| - |pi| — zero iff the attribute set is a superkey."""
        return self.size - self.num_classes

    def is_superkey(self) -> bool:
        return self.error == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrippedPartition):
            return NotImplemented
        # Internal group order varies with construction path; the lazily
        # sorted classes view is the canonical form.
        return self.n_rows == other.n_rows and self.classes == other.classes

    def __repr__(self) -> str:
        return (
            f"StrippedPartition(classes={self.num_classes}, "
            f"size={self.size}, rows={self.n_rows})"
        )

    # ------------------------------------------------------------------
    def _group_ids(self) -> np.ndarray:
        """Per-covered-row group id, parallel to ``_rows`` (cached)."""
        if self._ids is None:
            self._ids = np.repeat(
                np.arange(self._sizes.size, dtype=np.int64), self._sizes
            )
        return self._ids

    def product(self, other: "StrippedPartition") -> "StrippedPartition":
        """Refinement pi_X * pi_Y = pi_{X ∪ Y} (vectorized code pairing).

        Rows outside one of self's classes get a unique negative owner
        sentinel, so their pair keys are distinct — they fall into
        singleton groups that the grouping kernel strips for free.
        """
        if self.n_rows != other.n_rows:
            raise ValueError("partitions cover different row counts")
        if not self._sizes.size or not other._sizes.size:
            return StrippedPartition._from_arrays(_EMPTY, _EMPTY, self.n_rows)
        owner = np.arange(-1, -self.n_rows - 1, -1, dtype=np.int64)
        owner[self._rows] = self._group_ids()
        pair_key = owner[other._rows] * other._sizes.size + other._group_ids()
        grouped, sizes = _group_rows_by_codes(pair_key, other._rows)
        return StrippedPartition._from_arrays(grouped, sizes, self.n_rows)

    def product_error(self, other: "StrippedPartition") -> int:
        """e(pi_X * pi_Y) without materializing the refined partition.

        Used for the deepest lattice level TANE explores, where only the
        error integer is ever read — a plain ``np.sort`` over the pair
        keys replaces the argsort + row gathering of :meth:`product`.
        """
        if self.n_rows != other.n_rows:
            raise ValueError("partitions cover different row counts")
        if not self._sizes.size or not other._sizes.size:
            return 0
        owner = np.arange(-1, -self.n_rows - 1, -1, dtype=np.int64)
        owner[self._rows] = self._group_ids()
        pair_key = owner[other._rows] * other._sizes.size + other._group_ids()
        return stripped_error(pair_key)

    def violation_pair(self, codes: np.ndarray) -> tuple[int, int] | None:
        """First row pair disagreeing on ``codes`` inside one class.

        Scans classes in order and returns ``(anchor, offender)`` — the
        class's first row and its first row whose code differs — or None
        when every class is constant on ``codes`` (i.e. X -> A holds).
        """
        if not self._rows.size:
            return None
        anchors = np.repeat(
            self._rows[np.cumsum(self._sizes) - self._sizes], self._sizes
        )
        differing = np.flatnonzero(codes[self._rows] != codes[anchors])
        if not differing.size:
            return None
        position = int(differing[0])
        return int(anchors[position]), int(self._rows[position])

    def refines(self, other: "StrippedPartition") -> bool:
        """True if every class of self is contained in a class of other.

        Rows absent from a stripped partition form singleton classes, which
        are contained in any class, so only self's explicit classes matter.
        """
        owner: dict[int, int] = {}
        for class_id, group in enumerate(other.classes):
            for row in group:
                owner[row] = class_id
        for group in self.classes:
            first = owner.get(group[0], -1 - group[0])
            for row in group[1:]:
                if owner.get(row, -1 - row) != first:
                    return False
        return True

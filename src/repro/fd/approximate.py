"""Approximate FD discovery — rules that hold up to a violation budget.

Real dirty data rarely satisfies any interesting FD exactly; rule-based
cleaning therefore mines *approximate* dependencies whose g3 error (the
minimum fraction of rows to delete so the FD holds exactly) stays under a
tolerance, then flags the violating minority cells.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from ..dataframe import DataFrame
from .rules import FunctionalDependency


def g3_error(frame: DataFrame, fd: FunctionalDependency) -> float:
    """g3 measure: fraction of rows violating the majority per LHS group."""
    if frame.num_rows == 0:
        return 0.0
    groups: dict[tuple, Counter] = {}
    for i in range(frame.num_rows):
        key = tuple(frame.at(i, name) for name in fd.determinants)
        groups.setdefault(key, Counter())[frame.at(i, fd.dependent)] += 1
    keep = sum(counts.most_common(1)[0][1] for counts in groups.values())
    return 1.0 - keep / frame.num_rows


def approximate_fds(
    frame: DataFrame,
    tolerance: float = 0.08,
    max_lhs_size: int = 1,
    min_group_size: float = 1.5,
    columns: list[str] | None = None,
) -> list[FunctionalDependency]:
    """Mine approximate FDs with g3 error below ``tolerance``.

    ``min_group_size`` filters key-like determinants (average rows per
    distinct LHS value must exceed it) — FDs whose LHS is nearly unique are
    trivially satisfied and useless for cleaning.
    """
    names = list(columns) if columns is not None else frame.column_names
    discovered: list[FunctionalDependency] = []
    accepted_lhs: dict[str, list[frozenset[str]]] = {name: [] for name in names}
    for size in range(1, max_lhs_size + 1):
        for combo in combinations(names, size):
            lhs = frozenset(combo)
            distinct = len(
                {
                    tuple(frame.at(i, name) for name in combo)
                    for i in range(frame.num_rows)
                }
            )
            if distinct == 0:
                continue
            if frame.num_rows / distinct < min_group_size:
                continue
            for dependent in names:
                if dependent in lhs:
                    continue
                if any(prior <= lhs for prior in accepted_lhs[dependent]):
                    continue  # a smaller LHS already determines this RHS
                fd = FunctionalDependency(tuple(combo), dependent)
                if g3_error(frame, fd) <= tolerance:
                    discovered.append(fd)
                    accepted_lhs[dependent].append(lhs)
    return discovered

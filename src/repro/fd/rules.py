"""Rule objects: functional dependencies and user-defined value rules.

These are the artifacts the dashboard's rule-engineering workflow operates
on (§3): automatically discovered FDs that users validate, plus custom
rules with explicit determinant and dependent columns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..dataframe import Cell, DataFrame

PENDING = "pending"
CONFIRMED = "confirmed"
REJECTED = "rejected"


@dataclass(frozen=True)
class FunctionalDependency:
    """``determinants -> dependent`` over column names."""

    determinants: tuple[str, ...]
    dependent: str

    def __post_init__(self) -> None:
        if self.dependent in self.determinants:
            raise ValueError("dependent cannot be one of the determinants")
        object.__setattr__(self, "determinants", tuple(sorted(self.determinants)))

    def __str__(self) -> str:
        lhs = ", ".join(self.determinants) if self.determinants else "∅"
        return f"[{lhs}] -> {self.dependent}"

    def attributes(self) -> set[str]:
        return set(self.determinants) | {self.dependent}

    def holds_in(self, frame: DataFrame) -> bool:
        """Exact validity check against a frame (missing = distinct value)."""
        return not self.violations(frame)

    def violating_groups(self, frame: DataFrame) -> list[list[int]]:
        """Row groups that agree on the determinants but not the dependent."""
        groups: dict[tuple, list[int]] = {}
        for i in range(frame.num_rows):
            key = tuple(frame.at(i, name) for name in self.determinants)
            groups.setdefault(key, []).append(i)
        violating = []
        for rows in groups.values():
            values = {frame.at(i, self.dependent) for i in rows}
            if len(values) > 1:
                violating.append(rows)
        return violating

    def violations(self, frame: DataFrame) -> set[Cell]:
        """Dependent cells of minority rows inside each violating group.

        Within a violating group the most common dependent value is taken
        as the intended one; the other rows' dependent cells are flagged.
        """
        cells: set[Cell] = set()
        for rows in self.violating_groups(frame):
            values = Counter(frame.at(i, self.dependent) for i in rows)
            majority, _ = max(values.items(), key=lambda kv: (kv[1], str(kv[0])))
            for i in rows:
                if frame.at(i, self.dependent) != majority:
                    cells.add((i, self.dependent))
        return cells

    def to_dict(self) -> dict[str, Any]:
        return {
            "determinants": list(self.determinants),
            "dependent": self.dependent,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionalDependency":
        return cls(tuple(data["determinants"]), data["dependent"])


@dataclass
class ValueRule:
    """A user-defined predicate rule over single rows.

    ``check`` returns True when the row satisfies the rule; offending rows
    contribute the cells of the rule's columns to the violation set.
    """

    name: str
    columns: tuple[str, ...]
    check: Callable[[dict[str, Any]], bool]
    description: str = ""

    def violations(self, frame: DataFrame) -> set[Cell]:
        cells: set[Cell] = set()
        for i, row in enumerate(frame.iter_rows()):
            try:
                satisfied = bool(self.check(row))
            except Exception:
                satisfied = False
            if not satisfied:
                for column in self.columns:
                    cells.add((i, column))
        return cells


@dataclass
class ManagedRule:
    """An FD with review state — what the user-in-the-loop validates."""

    rule: FunctionalDependency
    status: str = PENDING
    source: str = "discovered"
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule.to_dict(),
            "status": self.status,
            "source": self.source,
            "note": self.note,
        }


@dataclass
class RuleSet:
    """Collection of managed FDs plus user value rules."""

    managed: list[ManagedRule] = field(default_factory=list)
    value_rules: list[ValueRule] = field(default_factory=list)

    def add_discovered(self, rules: Iterable[FunctionalDependency]) -> None:
        known = {managed.rule for managed in self.managed}
        for rule in rules:
            if rule not in known:
                self.managed.append(ManagedRule(rule=rule, source="discovered"))
                known.add(rule)

    def add_custom(self, rule: FunctionalDependency, note: str = "") -> ManagedRule:
        managed = ManagedRule(
            rule=rule, status=CONFIRMED, source="user", note=note
        )
        self.managed.append(managed)
        return managed

    def set_status(self, rule: FunctionalDependency, status: str) -> None:
        if status not in (PENDING, CONFIRMED, REJECTED):
            raise ValueError(f"unknown status {status!r}")
        for managed in self.managed:
            if managed.rule == rule:
                managed.status = status
                return
        raise KeyError(f"rule {rule} not managed")

    def active_rules(self) -> list[FunctionalDependency]:
        """Rules usable for detection: confirmed, or still pending review."""
        return [m.rule for m in self.managed if m.status != REJECTED]

    def confirmed_rules(self) -> list[FunctionalDependency]:
        return [m.rule for m in self.managed if m.status == CONFIRMED]

    def __len__(self) -> int:
        return len(self.managed)

"""Minimal JSON-over-HTTP framework (FastAPI substitute).

A :class:`Router` maps ``METHOD /path/{param}`` templates to handler
callables. Handlers receive a :class:`Request` and return a
:class:`Response` (or a plain dict, auto-wrapped with status 200). The
router can be served over a real socket via :func:`serve` or exercised
in-process through :class:`repro.api.client.TestClient`.
"""

from __future__ import annotations

import json
import logging
import math
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlparse

logger = logging.getLogger(__name__)


def sanitize_json(value: Any) -> Any:
    """Replace non-finite floats with None, recursively.

    ``json.dumps`` happily emits ``NaN`` / ``Infinity`` — JavaScript
    literals that RFC 8259 forbids and strict parsers reject — so every
    response body passes through here before serialization. Statistics
    over degenerate columns (std of one value, correlation of constants)
    are where they come from; ``null`` is the faithful wire encoding.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: sanitize_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json(item) for item in value]
    return value


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    path_params: dict[str, str] = field(default_factory=dict)
    query: dict[str, str] = field(default_factory=dict)
    body: Any = None


@dataclass
class Response:
    """JSON response payload."""

    status: int = 200
    body: Any = None

    def to_bytes(self) -> bytes:
        # allow_nan=False backstops the sanitizer: a non-finite float
        # that slips past it (e.g. inside an unexpected container type)
        # raises loudly instead of emitting invalid JSON.
        return json.dumps(
            sanitize_json(self.body), default=str, allow_nan=False
        ).encode("utf-8")


class HTTPError(Exception):
    """Raise inside handlers to produce a non-200 JSON error response."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


Handler = Callable[[Request], Response | dict | list]

_PARAM_PATTERN = re.compile(r"\{(\w+)\}")


def _compile_template(template: str) -> re.Pattern:
    pattern = _PARAM_PATTERN.sub(r"(?P<\1>[^/]+)", template.rstrip("/") or "/")
    return re.compile(f"^{pattern}$")


class Router:
    """Method + path-template dispatch table."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, str, Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        self._routes.append(
            (method.upper(), _compile_template(template), template, handler)
        )

    def get(self, template: str) -> Callable[[Handler], Handler]:
        return self._decorator("GET", template)

    def post(self, template: str) -> Callable[[Handler], Handler]:
        return self._decorator("POST", template)

    def put(self, template: str) -> Callable[[Handler], Handler]:
        return self._decorator("PUT", template)

    def delete(self, template: str) -> Callable[[Handler], Handler]:
        return self._decorator("DELETE", template)

    def _decorator(self, method: str, template: str) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self.add(method, template, handler)
            return handler

        return register

    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Route a request; 404 unknown path, 405 wrong method."""
        path = request.path.rstrip("/") or "/"
        path_exists = False
        for method, pattern, _, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            path_exists = True
            if method != request.method.upper():
                continue
            request.path_params = match.groupdict()
            try:
                outcome = handler(request)
            except HTTPError as error:
                return Response(error.status, {"detail": error.detail})
            except (KeyError, FileNotFoundError) as error:
                return Response(404, {"detail": str(error)})
            except (ValueError, RuntimeError) as error:
                return Response(400, {"detail": str(error)})
            except Exception as error:  # noqa: BLE001 — catch-all: a handler
                # bug must surface as a 500 JSON body, not a dead socket.
                logger.exception(
                    "unhandled error in handler for %s %s",
                    request.method,
                    request.path,
                )
                return Response(
                    500, {"detail": f"{type(error).__name__}: {error}"}
                )
            if isinstance(outcome, Response):
                return outcome
            return Response(200, outcome)
        if path_exists:
            return Response(405, {"detail": "method not allowed"})
        return Response(404, {"detail": f"no route for {request.path}"})

    def routes(self) -> list[tuple[str, str]]:
        return [(method, template) for method, _, template, _ in self._routes]


def _make_handler_class(router: Router) -> type:
    class _JSONRequestHandler(BaseHTTPRequestHandler):
        def _handle(self, method: str) -> None:
            parsed = urlparse(self.path)
            query = {
                key: values[0] for key, values in parse_qs(parsed.query).items()
            }
            body = None
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                raw = self.rfile.read(length)
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError:
                    self._send(Response(400, {"detail": "invalid JSON body"}))
                    return
            request = Request(
                method=method, path=parsed.path, query=query, body=body
            )
            self._send(router.dispatch(request))

        def _send(self, response: Response) -> None:
            payload = response.to_bytes()
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 (stdlib API)
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._handle("POST")

        def do_PUT(self) -> None:  # noqa: N802
            self._handle("PUT")

        def do_DELETE(self) -> None:  # noqa: N802
            self._handle("DELETE")

        def log_message(self, *args: Any) -> None:  # silence default logging
            return

    return _JSONRequestHandler


def serve(
    router: Router, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Start a background HTTP server for the router; caller shuts it down."""
    server = ThreadingHTTPServer((host, port), _make_handler_class(router))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server

"""Minimal JSON-over-HTTP framework (FastAPI/uvicorn substitute).

A :class:`Router` maps ``METHOD /path/{param}`` templates to handler
callables. Handlers receive a :class:`Request` and return a
:class:`Response` (or a plain dict, auto-wrapped with status 200). The
router can be served over a real socket via :func:`serve` or exercised
in-process through :class:`repro.api.client.TestClient`.

Serving model
-------------
:func:`serve` boots an :class:`AsyncHTTPServer`: a stdlib-``asyncio``
front end whose event loop only parses requests and writes responses —
every handler runs on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
(``max_workers`` argument, else the ``DATALENS_SERVER_WORKERS``
environment variable, else 4), so a slow pipeline call never blocks
request intake. Connections are keep-alive (HTTP/1.1) unless the client
sends ``Connection: close``; a request body with Content-Type
``text/csv`` is *streamed*: the handler receives a binary file-like at
``request.stream`` fed from the socket with ~1 MiB of backpressure-bounded
buffering, which is how a chunked-CSV upload far larger than RAM reaches
:func:`repro.dataframe.read_csv_chunked` without ever materializing.

Error mapping
-------------
Inside handlers, raise :class:`HTTPError` for an explicit status. The
dispatcher otherwise maps ``ValueError``/``RuntimeError`` to 400 and
``FileNotFoundError`` to 404; applications can register further typed
mappings with :meth:`Router.map_exception` (e.g. the REST app maps
:class:`repro.core.DatasetNotFoundError` to 404). Every *other*
exception — including a bare ``KeyError``, which historically masqueraded
as 404 — is a handler bug: it returns a 500 JSON body and logs the
traceback, keeping the socket alive.

Path parameters are URL-decoded (``unquote``) before reaching handlers,
so dataset names with spaces or non-ASCII characters round-trip.
"""

from __future__ import annotations

import asyncio
import http.client
import io
import json
import logging
import math
import os
import re
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable
from urllib.parse import parse_qs, unquote, urlsplit

from ..core import faults as _faults
from .jobs import resolve_worker_count

logger = logging.getLogger(__name__)

#: Request bodies with this content type are streamed to the handler.
STREAMING_CONTENT_TYPES = ("text/csv",)

#: Environment variable holding the per-request handler deadline in
#: seconds; a handler still running at the deadline gets its request
#: answered with ``503`` + ``Retry-After`` (unset = no deadline).
REQUEST_TIMEOUT_ENV = "DATALENS_REQUEST_TIMEOUT"

#: ``Retry-After`` seconds advertised on overload/deadline responses.
RETRY_AFTER_SECONDS = 1


def resolve_request_timeout(timeout: float | None = None) -> float | None:
    """Explicit ``timeout``, else ``DATALENS_REQUEST_TIMEOUT``, else None."""
    if timeout is not None:
        if timeout <= 0:
            raise ValueError(f"request timeout must be > 0, got {timeout}")
        return timeout
    raw = os.environ.get(REQUEST_TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"invalid number for {REQUEST_TIMEOUT_ENV}: {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"{REQUEST_TIMEOUT_ENV} must be > 0, got {value}")
    return value


def sanitize_json(value: Any) -> Any:
    """Replace non-finite floats with None, recursively.

    ``json.dumps`` happily emits ``NaN`` / ``Infinity`` — JavaScript
    literals that RFC 8259 forbids and strict parsers reject — so every
    response body passes through here before serialization. Statistics
    over degenerate columns (std of one value, correlation of constants)
    are where they come from; ``null`` is the faithful wire encoding.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: sanitize_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json(item) for item in value]
    return value


@dataclass
class Request:
    """One parsed HTTP request.

    ``headers`` keys are lower-cased. ``stream`` is a binary file-like
    holding the raw body for streaming content types (``text/csv``),
    ``None`` otherwise; ``body`` is the parsed JSON payload (or raw text
    for other non-streaming content types).
    """

    method: str
    path: str
    path_params: dict[str, str] = field(default_factory=dict)
    query: dict[str, str] = field(default_factory=dict)
    body: Any = None
    headers: dict[str, str] = field(default_factory=dict)
    stream: Any = None


@dataclass
class Response:
    """JSON response payload.

    ``headers`` carries extra response headers (e.g. ``Retry-After`` on
    429/503 overload replies) merged after the framework's own.
    """

    status: int = 200
    body: Any = None
    headers: dict[str, str] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        # allow_nan=False backstops the sanitizer: a non-finite float
        # that slips past it (e.g. inside an unexpected container type)
        # raises loudly instead of emitting invalid JSON.
        return json.dumps(
            sanitize_json(self.body), default=str, allow_nan=False
        ).encode("utf-8")


class HTTPError(Exception):
    """Raise inside handlers to produce a non-200 JSON error response."""

    def __init__(
        self,
        status: int,
        detail: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.headers = headers or {}


Handler = Callable[[Request], "Response | dict | list"]

_PARAM_PATTERN = re.compile(r"\{(\w+)\}")


def _compile_template(template: str) -> re.Pattern:
    pattern = _PARAM_PATTERN.sub(r"(?P<\1>[^/]+)", template.rstrip("/") or "/")
    return re.compile(f"^{pattern}$")


class Router:
    """Method + path-template dispatch table."""

    #: Built-in exception → status mappings, checked after registered ones.
    _DEFAULT_ERROR_MAP: tuple[tuple[type, int], ...] = (
        (FileNotFoundError, 404),
        (ValueError, 400),
        (RuntimeError, 400),
    )

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, str, Handler]] = []
        self._error_map: list[tuple[type, int, float | None]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        self._routes.append(
            (method.upper(), _compile_template(template), template, handler)
        )

    def get(self, template: str) -> Callable[[Handler], Handler]:
        return self._decorator("GET", template)

    def post(self, template: str) -> Callable[[Handler], Handler]:
        return self._decorator("POST", template)

    def put(self, template: str) -> Callable[[Handler], Handler]:
        return self._decorator("PUT", template)

    def delete(self, template: str) -> Callable[[Handler], Handler]:
        return self._decorator("DELETE", template)

    def _decorator(self, method: str, template: str) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self.add(method, template, handler)
            return handler

        return register

    # ------------------------------------------------------------------
    def map_exception(
        self,
        exc_type: type,
        status: int,
        retry_after: float | None = None,
    ) -> None:
        """Map a typed handler exception to an HTTP status.

        Registered mappings win over the built-in defaults and are
        checked in registration order (register subclasses first).
        ``retry_after`` adds a ``Retry-After`` header to the response —
        use it for transient conditions (overload, shutdown) the client
        should simply retry.
        """
        self._error_map.append((exc_type, status, retry_after))

    def _status_for(self, error: Exception) -> tuple[int, float | None] | None:
        for exc_type, status, retry_after in self._error_map:
            if isinstance(error, exc_type):
                return status, retry_after
        for exc_type, status in self._DEFAULT_ERROR_MAP:
            if isinstance(error, exc_type):
                return status, None
        return None

    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Route a request; 404 unknown path, 405 wrong method."""
        path = request.path.rstrip("/") or "/"
        path_exists = False
        for method, pattern, _, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            path_exists = True
            if method != request.method.upper():
                continue
            # Templates match the *encoded* path (%2F never splits a
            # segment); the captured values are decoded here so handlers
            # see real dataset names — spaces, unicode, and all.
            request.path_params = {
                name: unquote(value)
                for name, value in match.groupdict().items()
            }
            try:
                outcome = handler(request)
            except HTTPError as error:
                return Response(
                    error.status, {"detail": error.detail}, dict(error.headers)
                )
            except Exception as error:  # noqa: BLE001 — mapped below; an
                # unmapped exception is a handler bug and must surface as
                # a 500 JSON body, not a dead socket or a bogus 404.
                mapped = self._status_for(error)
                if mapped is not None:
                    status, retry_after = mapped
                    headers = (
                        {"Retry-After": str(int(retry_after))}
                        if retry_after is not None
                        else {}
                    )
                    return Response(status, {"detail": str(error)}, headers)
                logger.exception(
                    "unhandled error in handler for %s %s",
                    request.method,
                    request.path,
                )
                return Response(
                    500, {"detail": f"{type(error).__name__}: {error}"}
                )
            if isinstance(outcome, Response):
                return outcome
            return Response(200, outcome)
        if path_exists:
            return Response(405, {"detail": "method not allowed"})
        return Response(404, {"detail": f"no route for {request.path}"})

    def routes(self) -> list[tuple[str, str]]:
        return [(method, template) for method, _, template, _ in self._routes]


# ----------------------------------------------------------------------
# Streaming request bodies
# ----------------------------------------------------------------------
class _RequestBodyStream(io.RawIOBase):
    """Socket → handler byte bridge with bounded buffering.

    The event loop feeds chunks via :meth:`feed` (a coroutine that
    suspends once ``HIGH_WATER`` bytes are buffered — backpressure);
    the handler thread consumes through the blocking file-like API.
    ``feed_eof``/``abort`` wake a blocked reader, so a cancelled upload
    surfaces as a short read instead of a hang.
    """

    HIGH_WATER = 1 << 20  # pause the socket pump at 1 MiB buffered
    LOW_WATER = 1 << 19

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        super().__init__()
        self._loop = loop
        self._cond = threading.Condition()
        self._chunks: deque[memoryview] = deque()
        self._buffered = 0
        self._eof = False
        self._drain_waiter: asyncio.Future | None = None

    def readable(self) -> bool:
        return True

    # -- event-loop side ------------------------------------------------
    async def feed(self, chunk: bytes) -> None:
        with self._cond:
            self._chunks.append(memoryview(chunk))
            self._buffered += len(chunk)
            self._cond.notify()
            waiter = None
            if self._buffered >= self.HIGH_WATER and self._drain_waiter is None:
                waiter = self._drain_waiter = self._loop.create_future()
        if waiter is not None:
            await waiter

    def feed_eof(self) -> None:
        with self._cond:
            self._eof = True
            waiter, self._drain_waiter = self._drain_waiter, None
            self._cond.notify_all()
        if waiter is not None:
            self._loop.call_soon_threadsafe(_resolve_future, waiter)

    abort = feed_eof

    # -- handler-thread side --------------------------------------------
    def readinto(self, buffer) -> int:  # type: ignore[override]
        with self._cond:
            while not self._chunks and not self._eof:
                self._cond.wait()
            if not self._chunks:
                return 0
            chunk = self._chunks[0]
            count = min(len(buffer), len(chunk))
            buffer[:count] = chunk[:count]
            if count == len(chunk):
                self._chunks.popleft()
            else:
                self._chunks[0] = chunk[count:]
            self._buffered -= count
            waiter = None
            if self._buffered <= self.LOW_WATER and self._drain_waiter is not None:
                waiter, self._drain_waiter = self._drain_waiter, None
        if waiter is not None:
            self._loop.call_soon_threadsafe(_resolve_future, waiter)
        return count


def _resolve_future(future: asyncio.Future) -> None:
    if not future.done():
        future.set_result(None)


# ----------------------------------------------------------------------
# Asyncio HTTP server
# ----------------------------------------------------------------------
class AsyncHTTPServer:
    """Non-blocking HTTP/1.1 server around a :class:`Router`.

    The event loop runs on a dedicated daemon thread; handlers execute
    on a bounded thread pool via ``run_in_executor``, so the loop stays
    free to accept and parse concurrent requests (the old
    ``ThreadingHTTPServer`` spent one OS thread per in-flight request
    *and* ran handlers on it). ``server_address`` and ``shutdown()``
    keep the stdlib server's management surface.

    Degradation contract: every socket read (request line, headers,
    body) is bounded by ``KEEPALIVE_TIMEOUT``, so a stalled client can
    never pin a connection; ``request_timeout`` (or
    ``DATALENS_REQUEST_TIMEOUT``) bounds handler execution — a request
    over the deadline is answered ``503`` + ``Retry-After`` and the
    connection closed (the worker thread finishes in the background).
    ``shutdown(drain_timeout=)`` stops accepting connections, lets
    in-flight requests finish up to the deadline, then force-cancels —
    it returns True when everything drained cleanly.
    """

    KEEPALIVE_TIMEOUT = 30.0
    READ_CHUNK = 1 << 16
    DEFAULT_DRAIN_TIMEOUT = 5.0

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_workers: int | None = None,
        request_timeout: float | None = None,
    ) -> None:
        self.router = router
        self._host = host
        self._port = port
        self.request_timeout = resolve_request_timeout(request_timeout)
        self._pool = ThreadPoolExecutor(
            max_workers=resolve_worker_count(max_workers),
            thread_name_prefix="datalens-http",
        )
        self.server_address: tuple[str, int] = (host, port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight: set[asyncio.Task] = set()
        self._draining = False
        self._drain_timeout = self.DEFAULT_DRAIN_TIMEOUT
        self._drained = True
        self._thread = threading.Thread(
            target=self._run_loop, name="datalens-http-loop", daemon=True
        )

    # ------------------------------------------------------------------
    def start(self) -> "AsyncHTTPServer":
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def shutdown(self, drain_timeout: float | None = None) -> bool:
        """Stop the server, draining in-flight requests first.

        In-flight requests get ``drain_timeout`` seconds (default
        :data:`DEFAULT_DRAIN_TIMEOUT`) to complete; idle keep-alive
        connections are closed immediately, and whatever is still
        running at the deadline is cancelled. Returns True when every
        in-flight request finished before the deadline.
        """
        if drain_timeout is not None:
            self._drain_timeout = max(0.0, drain_timeout)
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # loop already closing
                pass
        self._thread.join(timeout=self._drain_timeout + 10)
        self._pool.shutdown(wait=False, cancel_futures=True)
        return self._drained

    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover — startup races
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self.server_address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stop.wait()
            # Graceful drain: stop accepting, close idle keep-alive
            # connections, give in-flight requests until the deadline,
            # then cancel whatever is left.
            self._draining = True
            server.close()
            await server.wait_closed()
            for task in tuple(self._conn_tasks):
                if task not in self._inflight:
                    task.cancel()
            deadline = self._loop.time() + self._drain_timeout
            while self._inflight and self._loop.time() < deadline:
                await asyncio.sleep(0.02)
            self._drained = not self._inflight
            for task in tuple(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                close = await self._handle_one(reader, writer)
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            TimeoutError,
            ConnectionError,
        ):
            pass
        except Exception:  # pragma: no cover — defensive: never kill the loop
            logger.exception("connection handler failed")
        finally:
            self._conn_tasks.discard(task)
            self._inflight.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 — peer may already be gone
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns True when the connection must close."""
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=self.KEEPALIVE_TIMEOUT
        )
        if not request_line:
            return True
        # From here the connection is serving a request: the graceful
        # drain waits for it instead of cancelling it.
        task = asyncio.current_task()
        self._inflight.add(task)
        try:
            return await self._serve_request(request_line, reader, writer)
        finally:
            self._inflight.discard(task)

    async def _serve_request(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        if self._draining:
            await self._write_response(
                writer,
                Response(
                    503,
                    {"detail": "server is shutting down"},
                    {"Retry-After": str(RETRY_AFTER_SECONDS)},
                ),
                True,
            )
            return True
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._write_response(
                writer, Response(400, {"detail": "malformed request line"}), True
            )
            return True
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            # Bounded like the request line: a client trickling headers
            # (or stalling mid-request) times the connection out instead
            # of holding it open forever.
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.KEEPALIVE_TIMEOUT
            )
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        connection = headers.get("connection", "").lower()
        close = connection == "close" or (
            version == "HTTP/1.0" and connection != "keep-alive"
        )
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            await self._write_response(
                writer, Response(400, {"detail": "invalid Content-Length"}), True
            )
            return True

        parsed = urlsplit(target)
        request = Request(
            method=method,
            path=parsed.path,
            query={
                key: values[0]
                for key, values in parse_qs(parsed.query).items()
            },
            headers=headers,
        )
        content_type = headers.get("content-type", "").partition(";")[0].strip()

        if length and content_type in STREAMING_CONTENT_TYPES:
            # Streamed body: the handler reads from the socket through a
            # bounded bridge; the connection closes afterwards because
            # the handler may not consume every byte.
            response = await self._dispatch_streaming(request, reader, length)
            close = True
        else:
            if length:
                raw = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self.KEEPALIVE_TIMEOUT
                )
                if content_type in ("", "application/json"):
                    try:
                        request.body = json.loads(raw)
                    except json.JSONDecodeError:
                        await self._write_response(
                            writer,
                            Response(400, {"detail": "invalid JSON body"}),
                            close,
                        )
                        return close
                else:
                    request.body = raw.decode("utf-8", errors="replace")
            try:
                response = await self._dispatch(request)
            except TimeoutError:
                # The worker thread finishes in the background; its
                # result is discarded. The client gets a retryable 503.
                response = self._deadline_response()
                close = True
        await self._write_response(writer, response, close)
        return close

    def _deadline_response(self) -> Response:
        return Response(
            503,
            {
                "detail": (
                    f"request exceeded the {self.request_timeout}s "
                    "deadline; retry shortly"
                )
            },
            {"Retry-After": str(RETRY_AFTER_SECONDS)},
        )

    async def _dispatch(self, request: Request) -> Response:
        loop = asyncio.get_running_loop()
        dispatched = loop.run_in_executor(
            self._pool, self.router.dispatch, request
        )
        if self.request_timeout is not None:
            return await asyncio.wait_for(dispatched, self.request_timeout)
        return await dispatched

    async def _dispatch_streaming(
        self, request: Request, reader: asyncio.StreamReader, length: int
    ) -> Response:
        loop = asyncio.get_running_loop()
        stream = _RequestBodyStream(loop)
        request.stream = io.BufferedReader(stream, buffer_size=self.READ_CHUNK)
        dispatched = loop.run_in_executor(
            self._pool, self.router.dispatch, request
        )
        pump = asyncio.ensure_future(self._pump_body(reader, stream, length))
        try:
            if self.request_timeout is not None:
                return await asyncio.wait_for(
                    dispatched, self.request_timeout
                )
            return await dispatched
        except TimeoutError:
            return self._deadline_response()
        finally:
            pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            stream.abort()

    async def _pump_body(
        self,
        reader: asyncio.StreamReader,
        stream: _RequestBodyStream,
        length: int,
    ) -> None:
        remaining = length
        try:
            while remaining > 0:
                chunk = await asyncio.wait_for(
                    reader.read(min(self.READ_CHUNK, remaining)),
                    timeout=self.KEEPALIVE_TIMEOUT,
                )
                if not chunk:
                    break  # client went away; handler sees a short body
                remaining -= len(chunk)
                await stream.feed(chunk)
        finally:
            stream.feed_eof()

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, close: bool
    ) -> None:
        # Fault site for chaos testing: an injected error here models a
        # failed response write — the connection drops (clients retry),
        # a half-written JSON body is never emitted.
        _faults.maybe_fire("http.write")
        payload = response.to_bytes()
        reason = http.client.responses.get(response.status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in response.headers.items()
        )
        head = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()


def serve(
    router: Router,
    host: str = "127.0.0.1",
    port: int = 8080,
    max_workers: int | None = None,
    request_timeout: float | None = None,
) -> AsyncHTTPServer:
    """Start a background async HTTP server; caller calls ``shutdown()``."""
    return AsyncHTTPServer(
        router,
        host=host,
        port=port,
        max_workers=max_workers,
        request_timeout=request_timeout,
    ).start()

"""In-process test client for the REST router (no sockets needed)."""

from __future__ import annotations

from typing import Any

from .http import Request, Response, Router


class TestClient:
    """Drive a router the way an HTTP client would, synchronously."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, router: Router) -> None:
        self.router = router

    def request(
        self,
        method: str,
        path: str,
        body: Any = None,
        query: dict[str, str] | None = None,
    ) -> Response:
        return self.router.dispatch(
            Request(method=method, path=path, query=dict(query or {}), body=body)
        )

    def get(self, path: str, query: dict[str, str] | None = None) -> Response:
        return self.request("GET", path, query=query)

    def post(self, path: str, body: Any = None) -> Response:
        return self.request("POST", path, body=body)

    def put(self, path: str, body: Any = None) -> Response:
        return self.request("PUT", path, body=body)

    def delete(self, path: str) -> Response:
        return self.request("DELETE", path)

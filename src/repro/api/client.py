"""In-process test client for the REST router (no sockets needed)."""

from __future__ import annotations

import io
from typing import Any

from .http import Request, Response, Router


class TestClient:
    """Drive a router the way an HTTP client would, synchronously.

    ``headers`` (e.g. ``{"X-Tenant": "alice"}``) are lower-cased like
    the socket server does. :meth:`post_csv` mimics a streaming
    ``text/csv`` upload by handing the body to the handler as
    ``request.stream``.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self, router: Router, headers: dict[str, str] | None = None
    ) -> None:
        self.router = router
        self.headers = {
            key.lower(): value for key, value in (headers or {}).items()
        }

    def request(
        self,
        method: str,
        path: str,
        body: Any = None,
        query: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
        stream: Any = None,
    ) -> Response:
        merged = dict(self.headers)
        merged.update(
            (key.lower(), value) for key, value in (headers or {}).items()
        )
        return self.router.dispatch(
            Request(
                method=method,
                path=path,
                query=dict(query or {}),
                body=body,
                headers=merged,
                stream=stream,
            )
        )

    def get(
        self,
        path: str,
        query: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        return self.request("GET", path, query=query, headers=headers)

    def post(
        self,
        path: str,
        body: Any = None,
        query: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        return self.request(
            "POST", path, body=body, query=query, headers=headers
        )

    def post_csv(
        self,
        path: str,
        csv_text: str,
        query: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        """POST a body the way the socket server streams ``text/csv``."""
        merged = {"content-type": "text/csv"}
        merged.update(headers or {})
        return self.request(
            "POST",
            path,
            query=query,
            headers=merged,
            stream=io.BytesIO(csv_text.encode("utf-8")),
        )

    def put(
        self,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        return self.request("PUT", path, body=body, headers=headers)

    def delete(self, path: str) -> Response:
        return self.request("DELETE", path)

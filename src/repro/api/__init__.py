"""REST integration layer (FastAPI substitute)."""

from .app import create_app
from .client import TestClient
from .http import HTTPError, Request, Response, Router, serve

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "Router",
    "TestClient",
    "create_app",
    "serve",
]

"""REST integration layer (FastAPI substitute), served by asyncio."""

from .app import TenantRegistry, create_app
from .client import TestClient
from .http import (
    AsyncHTTPServer,
    HTTPError,
    Request,
    Response,
    Router,
    sanitize_json,
    serve,
)
from .jobs import (
    DEFAULT_WORKERS,
    JOB_QUEUE_DEPTH_ENV,
    JOB_RETRIES_ENV,
    Job,
    JobNotFoundError,
    JobQueue,
    JobQueueClosedError,
    JobQueueFullError,
    LockRegistry,
    RWLock,
    SERVER_WORKERS_ENV,
    resolve_job_retries,
    resolve_queue_depth,
    resolve_worker_count,
)

__all__ = [
    "AsyncHTTPServer",
    "DEFAULT_WORKERS",
    "HTTPError",
    "JOB_QUEUE_DEPTH_ENV",
    "JOB_RETRIES_ENV",
    "Job",
    "JobNotFoundError",
    "JobQueue",
    "JobQueueClosedError",
    "JobQueueFullError",
    "LockRegistry",
    "RWLock",
    "Request",
    "Response",
    "Router",
    "SERVER_WORKERS_ENV",
    "TenantRegistry",
    "TestClient",
    "create_app",
    "resolve_job_retries",
    "resolve_queue_depth",
    "resolve_worker_count",
    "sanitize_json",
    "serve",
]

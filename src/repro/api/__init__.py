"""REST integration layer (FastAPI substitute), served by asyncio."""

from .app import TenantRegistry, create_app
from .client import TestClient
from .http import (
    AsyncHTTPServer,
    HTTPError,
    Request,
    Response,
    Router,
    sanitize_json,
    serve,
)
from .jobs import (
    DEFAULT_WORKERS,
    Job,
    JobNotFoundError,
    JobQueue,
    LockRegistry,
    RWLock,
    SERVER_WORKERS_ENV,
    resolve_worker_count,
)

__all__ = [
    "AsyncHTTPServer",
    "DEFAULT_WORKERS",
    "HTTPError",
    "Job",
    "JobNotFoundError",
    "JobQueue",
    "LockRegistry",
    "RWLock",
    "Request",
    "Response",
    "Router",
    "SERVER_WORKERS_ENV",
    "TenantRegistry",
    "TestClient",
    "create_app",
    "resolve_worker_count",
    "sanitize_json",
    "serve",
]

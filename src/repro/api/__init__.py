"""REST integration layer (FastAPI substitute)."""

from .app import create_app
from .client import TestClient
from .http import HTTPError, Request, Response, Router, sanitize_json, serve

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "Router",
    "TestClient",
    "create_app",
    "sanitize_json",
    "serve",
]

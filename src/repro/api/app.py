"""REST endpoints exposing the DataLens controller (§3's integration API).

The paper integrates external data-preparation tools through REST: POST
forwards tasks, GET retrieves results, PUT updates request state. This
app exposes that surface over the in-process controller so BI/ML
platforms (or the bundled dashboard) can drive the pipeline remotely —
now as an async job-queue server rather than one blocking thread per
request.

API reference
-------------
Datasets (all paths URL-decode ``{name}``, so spaces/unicode work):

==========  =====================================  =============================
Method      Path                                   Purpose
==========  =====================================  =============================
GET         /health                                liveness + dataset listing
GET         /datasets                              list datasets (this tenant)
POST        /datasets                              ingest ``records`` /
                                                   ``csv_text`` / ``preloaded``
POST        /datasets/{name}/upload                **streaming** CSV upload
                                                   (Content-Type ``text/csv``)
GET         /datasets/{name}                       preview (``?limit=``,
                                                   ``?sort_by=a,b``,
                                                   ``?descending=1``,
                                                   ``?sort_strategy=``)
GET         /datasets/{name}/profile               profile report [async-able]
GET         /datasets/{name}/quality               quality metrics
GET         /datasets/{name}/cache                 artifact-cache counters
GET         /datasets/{name}/spill                 spill-store counters
POST        /datasets/{name}/rules/discover        FD discovery
GET/PUT     /datasets/{name}/rules                 list / add / set status
POST        /datasets/{name}/rules/parse           natural-language rule
GET         /datasets/{name}/explanations          detection explanations
POST        /datasets/{name}/tags                  tag a value
PUT         /datasets/{name}/labels                label a cell
POST        /datasets/{name}/detect                run detectors [async-able]
GET         /datasets/{name}/detections            consolidated detections
POST        /datasets/{name}/repair                run a repairer [async-able]
GET         /datasets/{name}/datasheet             DataSheet (§5)
GET         /datasets/{name}/dashboard             dashboard HTML
GET         /datasets/{name}/drift                 version drift report
GET         /datasets/{name}/versions              Delta history
POST        /datasets/{name}/versions/restore      time travel
POST        /datasets/{name}/iterative             iterative clean [async-able]
GET         /jobs                                  this tenant's jobs
GET         /jobs/{job_id}                         poll one job
==========  =====================================  =============================

Async vs sync mode
    Endpoints marked *async-able* accept ``?async=1``: instead of
    holding the socket for the duration of the pipeline work, the
    request returns ``202`` with a job id immediately and the work runs
    on the bounded job pool. Poll ``GET /jobs/{id}`` for the lifecycle
    ``queued → running → done|failed`` — ``done`` carries the same
    payload the sync call would have returned, ``failed`` carries the
    error detail. Without the flag the call is synchronous and
    identical to the historical behavior.

    Jobs that fail with a *transient* error (connection resets,
    timeouts, injected :class:`~repro.core.faults.TransientFaultError`)
    are retried automatically with exponential backoff + jitter, up to
    ``DATALENS_JOB_RETRIES`` extra attempts (default 2); between
    attempts the job polls as ``retrying``, and every attempt's error,
    timing, and backoff is listed under ``attempts`` in the
    ``GET /jobs/{id}`` payload. A job still queued when the server
    shuts down polls as ``failed`` with a ``cancelled`` error.

Overload & degradation
    The serving path sheds load instead of queueing unboundedly:

    * ``429`` + ``Retry-After`` — the job queue is at its depth bound
      (``DATALENS_JOB_QUEUE_DEPTH`` active jobs, default 256).
    * ``503`` + ``Retry-After`` — the per-request deadline
      (``DATALENS_REQUEST_TIMEOUT`` seconds, unset = none) elapsed
      before the handler finished, the server is draining for
      shutdown, or a transient fault surfaced; all are safe to retry.
    * ``507`` — storage exhaustion: the spill directory
      (:class:`~repro.dataframe.spill.SpillCapacityError`) or artifact
      cache (:class:`~repro.core.artifacts.ArtifactCapacityError`) is
      out of space.
    * ``500`` — a spilled shard failed its checksum
      (:class:`~repro.dataframe.spill.SpillError` names the shard and
      path): the server *refuses* to serve data it cannot verify.

    Every error above is a JSON body with a ``detail`` key — overload
    never surfaces as a hung socket or a non-JSON reply. Graceful
    shutdown (``shutdown(drain_timeout=…)`` on both the HTTP server and
    the job queue) stops intake, drains in-flight requests and running
    jobs up to the deadline, then force-cancels the remainder.

Fault injection (chaos testing)
    Setting ``DATALENS_FAULT_INJECT`` activates deterministic fault
    injection at named sites (``spill.read``, ``spill.write``,
    ``spill.evict``, ``artifact.get``, ``artifact.put``,
    ``ingest.chunk``, ``job.run``, ``http.write``). The spec grammar is
    ``rule(;rule)*`` with comma-separated ``key=value`` fields:
    ``site=<fnmatch pattern>`` (required), ``error=transient|fault|
    oserror|enospc|timeout|connection``, ``prob=<0..1>`` (seeded RNG),
    ``count=<max fires>``, ``after=<skip first N>``,
    ``latency=<seconds>``, ``seed=<int>`` — e.g.
    ``site=spill.*,error=transient,prob=0.01,seed=7``. Transient faults
    at storage sites are absorbed by bounded internal retries
    (``DATALENS_IO_RETRIES``), so responses stay bit-identical to a
    fault-free run; see :mod:`repro.core.faults`.

Concurrency model
    Each ``(tenant, dataset)`` pair has a reader/writer lock: read-only
    requests run concurrently while mutating requests (ingest, detect,
    repair, restore, labels, tags, rules, iterative) serialize against
    readers and each other — a detect and a repair hammering one
    dataset can interleave in any order but never corrupt session
    state. Job bodies acquire the same locks when they run, so async
    and sync traffic serialize together. On a *spilled* frame even
    read-only requests take the exclusive lock: a dense access
    materializes columns and releases their shard files, which must not
    race with another reader still iterating them.

Multi-tenancy
    The tenant is the ``X-Tenant`` header (or ``?tenant=`` query
    parameter), defaulting to ``default``. Each tenant gets an isolated
    :class:`~repro.core.DataLens` workspace (``tenants/<name>/`` under
    the base workspace) — datasets, sessions, versions, and jobs are
    invisible across tenants. The content-addressed
    :class:`~repro.core.ArtifactStore` is deliberately *shared*:
    artifact keys are column fingerprints, so identical columns
    uploaded by different tenants hit the same cache entries.

Error semantics
    ``404`` unknown dataset/job (typed ``DatasetNotFoundError`` /
    ``JobNotFoundError`` — a stray ``KeyError`` from a handler bug is a
    logged ``500``), ``422`` missing/malformed fields and parameters
    (the detail names the offending parameter; negative limits are
    clamped to 0 instead of erroring), ``400`` domain errors
    (``ValueError`` / ``RuntimeError`` from the pipeline).

Environment knobs
    ``DATALENS_SERVER_WORKERS`` — job-pool *and* HTTP-dispatch worker
    count (default 4); ``DATALENS_JOB_QUEUE_DEPTH`` — active-job bound
    before 429s (default 256); ``DATALENS_JOB_RETRIES`` — transient-job
    retry budget (default 2); ``DATALENS_REQUEST_TIMEOUT`` — per-request
    deadline in seconds (unset = none); ``DATALENS_FAULT_INJECT`` /
    ``DATALENS_IO_RETRIES`` — chaos spec and storage retry budget. The
    chunk/spill knobs of the underlying controller
    (``DATALENS_DEFAULT_CHUNK_SIZE``, ``DATALENS_SPILL_BUDGET``,
    ``DATALENS_SPILL_DIR``, ``DATALENS_ARTIFACT_CACHE*``) apply to
    uploads as usual.
"""

from __future__ import annotations

import io
import re
from typing import Any, Callable

from ..core import ArtifactStore, DataLens, DatasetNotFoundError
from ..core.artifacts import ArtifactCapacityError
from ..core.faults import TransientFaultError
from ..dataframe import DataFrame, read_csv_text
from ..dataframe.spill import SpillCapacityError, SpillError
from .http import RETRY_AFTER_SECONDS, HTTPError, Request, Response, Router
from .jobs import (
    JobNotFoundError,
    JobQueue,
    JobQueueClosedError,
    JobQueueFullError,
    LockRegistry,
)

DEFAULT_TENANT = "default"
TENANT_HEADER = "x-tenant"
_TENANT_PATTERN = re.compile(r"^[A-Za-z0-9._\-]+$")
_TRUTHY = {"1", "true", "yes", "on"}


class TenantRegistry:
    """Per-tenant controllers over one shared, fingerprint-keyed cache.

    The ``default`` tenant is the controller handed to
    :func:`create_app`; any other tenant lazily gets its own
    :class:`~repro.core.DataLens` rooted at
    ``<base>/tenants/<tenant>`` with the same chunk/spill/seed
    configuration. All controllers share one
    :class:`~repro.core.ArtifactStore` — see the module docstring.
    """

    def __init__(self, base: DataLens) -> None:
        import threading

        if base.artifact_store is None:
            base.artifact_store = ArtifactStore()
        self.shared_artifacts = base.artifact_store
        self._base = base
        self._tenants: dict[str, DataLens] = {DEFAULT_TENANT: base}
        self._lock = threading.Lock()

    def lens_for(self, tenant: str) -> DataLens:
        with self._lock:
            lens = self._tenants.get(tenant)
            if lens is None:
                base = self._base
                lens = DataLens(
                    base.workspace_dir / "tenants" / tenant,
                    seed=base.seed,
                    chunk_size=base.loader.chunk_size,
                    profile_jobs=base.profile_jobs,
                    spill_budget=base.loader.spill_budget,
                    spill_dir=base.loader.spill_dir,
                    artifact_store=self.shared_artifacts,
                )
                self._tenants[tenant] = lens
            return lens

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)


# ----------------------------------------------------------------------
# Request parsing helpers (422 with the offending parameter named)
# ----------------------------------------------------------------------
def _require(body: Any, key: str) -> Any:
    if not isinstance(body, dict) or key not in body:
        raise HTTPError(422, f"missing required field {key!r}")
    return body[key]


def _int_param(
    source: Any, name: str, default: int | None, minimum: int | None = 0
) -> int | None:
    """Parse an optional integer parameter; 422 names it when malformed.

    Values below ``minimum`` are clamped rather than rejected, so a
    negative ``limit`` degrades to an empty listing instead of erroring.
    Pass ``minimum=None`` where clamping would change semantics (row
    indices, version numbers) — out-of-range values then fail in the
    handler with their usual status.
    """
    raw = (source or {}).get(name)
    if raw is None:
        return default
    if isinstance(raw, bool) or isinstance(raw, float):
        raise HTTPError(
            422, f"invalid integer for parameter {name!r}: {raw!r}"
        )
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise HTTPError(
            422, f"invalid integer for parameter {name!r}: {raw!r}"
        ) from None
    return value if minimum is None else max(minimum, value)


def _required_int(body: Any, name: str, minimum: int | None = 0) -> int:
    _require(body, name)
    value = _int_param(body, name, None, minimum=minimum)
    assert value is not None
    return value


def _float_param(source: Any, name: str, default: float) -> float:
    raw = (source or {}).get(name)
    if raw is None:
        return default
    if isinstance(raw, bool):
        raise HTTPError(422, f"invalid number for parameter {name!r}: {raw!r}")
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise HTTPError(
            422, f"invalid number for parameter {name!r}: {raw!r}"
        ) from None


def _tenant_of(request: Request) -> str:
    raw = (
        request.headers.get(TENANT_HEADER)
        or request.query.get("tenant")
        or DEFAULT_TENANT
    )
    if not _TENANT_PATTERN.match(raw):
        raise HTTPError(
            422,
            f"invalid tenant {raw!r}: use letters, digits, '.', '_', '-'",
        )
    return raw


def _wants_async(request: Request) -> bool:
    return request.query.get("async", "").strip().lower() in _TRUTHY


def _frame_preview(frame: DataFrame, limit: int = 20) -> dict[str, Any]:
    return {
        "num_rows": frame.num_rows,
        "num_columns": frame.num_columns,
        "columns": frame.column_names,
        "dtypes": frame.dtypes(),
        "rows": frame.head(limit).to_records(),
    }


def create_app(
    lens: DataLens,
    workers: int | None = None,
    job_queue: JobQueue | None = None,
) -> Router:
    """Build the REST router bound to one DataLens workspace.

    The returned router carries its serving collaborators as
    attributes: ``router.job_queue`` (bounded worker pool for
    ``?async=1`` submissions), ``router.locks`` (per-(tenant, dataset)
    reader/writer locks), and ``router.tenants`` (the
    :class:`TenantRegistry` with the shared artifact store).
    """
    router = Router()
    registry = TenantRegistry(lens)
    queue = job_queue if job_queue is not None else JobQueue(workers=workers)
    locks = LockRegistry()
    router.job_queue = queue
    router.locks = locks
    router.tenants = registry
    router.map_exception(DatasetNotFoundError, 404)
    router.map_exception(JobNotFoundError, 404)
    # Degradation mappings (subclasses before their bases): overload and
    # shutdown answer with Retry-After so well-behaved clients back off;
    # storage exhaustion is 507 Insufficient Storage; a corrupt spilled
    # shard is a server-side data fault (500), never silently wrong data.
    router.map_exception(JobQueueFullError, 429, retry_after=RETRY_AFTER_SECONDS)
    router.map_exception(
        JobQueueClosedError, 503, retry_after=RETRY_AFTER_SECONDS
    )
    router.map_exception(
        TransientFaultError, 503, retry_after=RETRY_AFTER_SECONDS
    )
    router.map_exception(SpillCapacityError, 507)
    router.map_exception(ArtifactCapacityError, 507)
    router.map_exception(SpillError, 500)

    # -- shared plumbing ------------------------------------------------
    def _session(request: Request):
        """Resolve (tenant, name, session); 404s before any job submit."""
        tenant = _tenant_of(request)
        name = request.path_params["name"]
        session = registry.lens_for(tenant).session(name)
        return tenant, name, session

    def _read_guard(tenant: str, name: str, session: Any):
        """Read lock — upgraded to exclusive while the frame is spilled.

        A "read" on a spilled frame is not storage-neutral: a dense
        access materializes the columns and *releases the shard files*,
        so two concurrent readers could delete shards out from under
        each other. The spilled→dense transition happens exactly once,
        under this exclusive lock; once dense (``spill_store_of`` is
        None), reads are storage-neutral and run concurrently again.
        """
        from ..dataframe import spill_store_of

        lock = locks.of(tenant, name)
        if spill_store_of(session.frame) is not None:
            return lock.write_lock()
        return lock.read_lock()

    def _read(request: Request, fn: Callable[[Any], Any]):
        tenant, name, session = _session(request)
        with _read_guard(tenant, name, session):
            return fn(session)

    def _write(request: Request, fn: Callable[[Any], Any]):
        tenant, name, session = _session(request)
        with locks.of(tenant, name).write_lock():
            return fn(session)

    def _maybe_async(
        request: Request, kind: str, work: Callable[[], Any]
    ) -> Any:
        """Run ``work`` inline, or queue it when ``?async=1`` is set.

        ``work`` must do its own locking — it may execute later on a
        job-pool thread, where the request-time lock would be useless.
        """
        if not _wants_async(request):
            return work()
        tenant = _tenant_of(request)
        job = queue.submit(
            kind,
            work,
            dataset=request.path_params.get("name"),
            tenant=tenant,
        )
        return Response(
            202,
            {"job_id": job.id, "status": job.status, "poll": f"/jobs/{job.id}"},
        )

    # ------------------------------------------------------------------
    @router.get("/health")
    def health(request: Request) -> dict:
        tenant = _tenant_of(request)
        return {
            "status": "ok",
            "datasets": registry.lens_for(tenant).list_datasets(),
            "workers": queue.workers,
        }

    @router.get("/datasets")
    def list_datasets(request: Request) -> dict:
        tenant = _tenant_of(request)
        return {"datasets": registry.lens_for(tenant).list_datasets()}

    @router.post("/datasets")
    def ingest(request: Request) -> dict:
        tenant = _tenant_of(request)
        lens_t = registry.lens_for(tenant)
        body = request.body
        if "preloaded" in (body or {}):
            target = _require(body, "preloaded")
        else:
            target = _require(body, "name")
        if not isinstance(target, str) or not target:
            raise HTTPError(422, "dataset name must be a non-empty string")
        with locks.of(tenant, target).write_lock():
            if "records" in body:
                frame = DataFrame.from_records(body["records"])
                session = lens_t.ingest_frame(target, frame)
            elif "csv_text" in body:
                frame = read_csv_text(body["csv_text"])
                session = lens_t.ingest_frame(target, frame)
            elif "preloaded" in body:
                session = lens_t.ingest_preloaded(body["preloaded"])
            else:
                raise HTTPError(
                    422, "provide 'records', 'csv_text', or 'preloaded'"
                )
            return {"dataset": session.name, "shape": list(session.frame.shape)}

    @router.post("/datasets/{name}/upload")
    def upload(request: Request) -> dict:
        """Streaming chunked-CSV upload (Content-Type ``text/csv``).

        The body flows socket → chunked parser → (optionally spilled)
        shards in one pass, so uploads far larger than RAM ingest under
        the controller's ``DATALENS_SPILL_BUDGET`` / chunk-size
        configuration without ever materializing.
        """
        tenant = _tenant_of(request)
        name = request.path_params["name"]
        if not _TENANT_PATTERN.match(name):
            raise HTTPError(
                422,
                f"invalid dataset name {name!r}: use letters, digits, "
                "'.', '_', '-'",
            )
        if request.stream is not None:
            lines: Any = io.TextIOWrapper(
                request.stream, encoding="utf-8", newline=""
            )
        elif isinstance(request.body, str) and request.body:
            lines = io.StringIO(request.body)
        else:
            raise HTTPError(
                422, "provide a non-empty text/csv request body"
            )
        lens_t = registry.lens_for(tenant)
        with locks.of(tenant, name).write_lock():
            session = lens_t.ingest_csv_stream(name, lines)
            payload = {
                "dataset": session.name,
                "shape": list(session.frame.shape),
                "spill": session.spill_stats(),
            }
        return payload

    @router.get("/datasets/{name}")
    def preview(request: Request) -> dict:
        """Preview rows, optionally sorted server-side.

        ``?sort_by=col_a,col_b`` sorts before slicing ``limit`` rows;
        ``?descending=1`` flips the order and ``?sort_strategy=`` forces
        ``memory``/``external`` (default ``auto``: external when the
        frame is spilled, so sorting never densifies the stored frame).
        """
        limit = _int_param(request.query, "limit", 20)
        sort_spec = request.query.get("sort_by", "").strip()
        sort_columns = [c.strip() for c in sort_spec.split(",") if c.strip()]
        descending = (
            request.query.get("descending", "").strip().lower() in _TRUTHY
        )
        strategy = request.query.get("sort_strategy") or None

        def work(session: Any) -> dict:
            frame = session.frame
            if sort_columns:
                from ..dataframe import sort_by

                try:
                    frame = sort_by(
                        frame,
                        sort_columns,
                        descending=descending,
                        strategy=strategy,
                    )
                except KeyError as exc:
                    raise HTTPError(422, str(exc.args[0])) from exc
                except ValueError as exc:
                    raise HTTPError(422, str(exc)) from exc
            return _frame_preview(frame, limit)

        return _read(request, work)

    # ------------------------------------------------------------------
    @router.get("/datasets/{name}/profile")
    def get_profile(request: Request) -> Any:
        tenant, name, session = _session(request)

        def work() -> dict:
            with _read_guard(tenant, name, session):
                report = session.profile_report
                if report is None:
                    report = session.profile()
                return report.to_dict()

        return _maybe_async(request, "profile", work)

    @router.get("/datasets/{name}/quality")
    def get_quality(request: Request) -> dict:
        return _read(request, lambda session: session.quality_metrics())

    @router.get("/datasets/{name}/cache")
    def get_cache_stats(request: Request) -> dict:
        """Artifact-cache counters (shared store: hits/misses/evictions)."""
        return _read(request, lambda session: session.cache_stats())

    @router.get("/datasets/{name}/spill")
    def get_spill_stats(request: Request) -> dict:
        """Spill-store residency counters for the session's working frame."""
        return _read(request, lambda session: session.spill_stats())

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/rules/discover")
    def discover_rules(request: Request) -> dict:
        body = request.body or {}
        algorithm = body.get("algorithm", "approximate")
        max_lhs = _int_param(body, "max_lhs_size", 1, minimum=1)
        tolerance = _float_param(body, "tolerance", 0.1)

        def work(session) -> dict:
            rules = session.discover_rules(
                algorithm=algorithm, max_lhs_size=max_lhs, tolerance=tolerance
            )
            return {"rules": [rule.to_dict() for rule in rules]}

        return _write(request, work)

    @router.get("/datasets/{name}/rules")
    def list_rules(request: Request) -> dict:
        return _read(
            request,
            lambda session: {
                "rules": [
                    managed.to_dict() for managed in session.rule_set.managed
                ]
            },
        )

    @router.put("/datasets/{name}/rules")
    def put_rule(request: Request) -> dict:
        determinants = _require(request.body, "determinants")
        dependent = _require(request.body, "dependent")
        status = (request.body or {}).get("status")

        def work(session) -> dict:
            if status in ("confirmed", "rejected"):
                from ..fd import FunctionalDependency

                rule = FunctionalDependency(tuple(determinants), dependent)
                session.rule_set.set_status(rule, status)
                return {"rule": rule.to_dict(), "status": status}
            try:
                rule = session.add_custom_rule(
                    determinants,
                    dependent,
                    note=(request.body or {}).get("note", ""),
                )
            except KeyError as error:  # unknown column → not found
                raise HTTPError(404, str(error.args[0])) from None
            return {"rule": rule.to_dict(), "status": "confirmed"}

        return _write(request, work)

    @router.post("/datasets/{name}/rules/parse")
    def parse_nl_rule(request: Request) -> dict:
        """Natural-language rule definition (future work 1)."""
        from ..core.nlrules import RuleParseError

        text = _require(request.body, "text")

        def work(session) -> dict:
            try:
                parsed = session.add_rule_from_text(text)
            except RuleParseError as error:
                raise HTTPError(422, str(error)) from error
            return {"kind": parsed.kind, "rule": parsed.describe()}

        return _write(request, work)

    @router.get("/datasets/{name}/explanations")
    def get_explanations(request: Request) -> dict:
        """Explainability (future work 2)."""
        limit = _int_param(request.query, "limit", 20)

        def work(session) -> dict:
            explanations = session.explain_detections(limit=limit)
            return {
                "explanations": [
                    {
                        "row": exp.cell[0],
                        "column": exp.cell[1],
                        "value": exp.value,
                        "evidence": [
                            {
                                "tool": ev.tool,
                                "reason": ev.reason,
                                "score": ev.score,
                            }
                            for ev in exp.evidence
                        ],
                        "repair": exp.repair,
                    }
                    for exp in explanations
                ]
            }

        return _read(request, work)

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/tags")
    def add_tag(request: Request) -> dict:
        value = _require(request.body, "value")

        def work(session) -> dict:
            session.tag_value(value)
            return {"tagged_values": [str(v) for v in session.tags.values()]}

        return _write(request, work)

    @router.put("/datasets/{name}/labels")
    def put_label(request: Request) -> dict:
        row = _required_int(request.body, "row", minimum=None)
        column = _require(request.body, "column")
        is_dirty = bool(_require(request.body, "is_dirty"))

        def work(session) -> dict:
            try:
                session.label_cell(row, column, is_dirty)
            except KeyError as error:  # cell out of range → not found
                raise HTTPError(404, str(error.args[0])) from None
            return {"labels": len(session.labels)}

        return _write(request, work)

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/detect")
    def detect(request: Request) -> Any:
        tools = _require(request.body, "tools")
        if not isinstance(tools, list) or not tools or not all(
            isinstance(tool, str) for tool in tools
        ):
            raise HTTPError(
                422, "field 'tools' must be a non-empty list of tool names"
            )
        tenant, name, session = _session(request)

        def work() -> dict:
            with locks.of(tenant, name).write_lock():
                try:
                    cells = session.run_detection(tools)
                except KeyError as error:  # unknown detector name
                    raise HTTPError(422, str(error.args[0])) from None
                return {
                    "num_cells": len(cells),
                    "per_tool": {
                        tool: len(result.cells)
                        for tool, result in session.detection_results.items()
                    },
                }

        return _maybe_async(request, "detect", work)

    @router.get("/datasets/{name}/detections")
    def get_detections(request: Request) -> dict:
        limit = _int_param(request.query, "limit", 200)

        def work(session) -> dict:
            cells = sorted(session.detected_cells)[:limit]
            return {
                "num_cells": len(session.detected_cells),
                "cells": [
                    {"row": row, "column": column} for row, column in cells
                ],
                "summary": session.detection_summary(),
            }

        return _read(request, work)

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/repair")
    def repair(request: Request) -> Any:
        body = request.body or {}
        tool = body.get("tool", "ml_imputer")
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise HTTPError(422, "field 'params' must be an object")
        tenant, name, session = _session(request)

        def work() -> dict:
            with locks.of(tenant, name).write_lock():
                try:
                    repaired = session.run_repair(tool, **params)
                except KeyError as error:  # unknown repairer name
                    raise HTTPError(422, str(error.args[0])) from None
                return {
                    "tool": tool,
                    "num_repairs": len(session.repair_result.repairs),
                    "version_after_repair": session.version_after_repair,
                    "shape": list(repaired.shape),
                }

        return _maybe_async(request, "repair", work)

    # ------------------------------------------------------------------
    @router.get("/datasets/{name}/datasheet")
    def get_datasheet(request: Request) -> dict:
        return _read(
            request, lambda session: session.generate_datasheet().to_dict()
        )

    @router.get("/datasets/{name}/dashboard")
    def get_dashboard(request: Request) -> dict:
        """Figure-2 main window as standalone HTML (returned as JSON field)."""
        from ..dashboard import render_dashboard

        return _read(request, lambda session: {"html": render_dashboard(session)})

    @router.get("/datasets/{name}/drift")
    def get_drift(request: Request) -> dict:
        """Drift report between two Delta versions (monitoring loop)."""
        from ..profiling import drift_report

        baseline = _int_param(request.query, "baseline", 0)

        def work(session) -> dict:
            latest = session.delta.latest_version() or 0
            current = _int_param(request.query, "current", latest)
            return drift_report(
                session.delta.read(baseline), session.delta.read(current)
            )

        return _read(request, work)

    @router.get("/datasets/{name}/versions")
    def get_versions(request: Request) -> dict:
        return _read(
            request, lambda session: {"versions": session.version_history()}
        )

    @router.post("/datasets/{name}/versions/restore")
    def restore_version(request: Request) -> dict:
        version = _required_int(request.body, "version", minimum=None)

        def work(session) -> dict:
            new_version = session.delta.restore(version)
            # load_version both swaps the working frame and resets
            # frame-derived state (profile report, detections, repair
            # proposal), so the next GET /profile reflects the restored
            # content — incrementally, via the session artifact store.
            session.load_version(new_version)
            return {"restored_from": version, "new_version": new_version}

        return _write(request, work)

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/iterative")
    def iterative(request: Request) -> Any:
        body = request.body or {}
        task = _require(body, "task")
        target = _require(body, "target")
        n_iterations = _int_param(body, "n_iterations", 10, minimum=1)
        model = body.get("model", "decision_tree")
        sampler = body.get("sampler", "tpe")
        tenant, name, session = _session(request)

        def work() -> dict:
            with locks.of(tenant, name).write_lock():
                result = session.iterative_clean(
                    task=task,
                    target=target,
                    n_iterations=n_iterations,
                    model=model,
                    sampler=sampler,
                )
                return {
                    "best_score": result.best_score,
                    "best_params": result.best_params,
                    "baseline_dirty": result.baseline_dirty,
                    "n_iterations": result.n_iterations,
                    "search_runtime_seconds": result.search_runtime_seconds,
                }

        return _maybe_async(request, "iterative", work)

    # ------------------------------------------------------------------
    @router.get("/jobs")
    def list_jobs(request: Request) -> dict:
        tenant = _tenant_of(request)
        dataset = request.query.get("dataset")
        return {
            "jobs": [
                job.to_dict()
                for job in queue.list(tenant=tenant, dataset=dataset)
            ]
        }

    @router.get("/jobs/{job_id}")
    def get_job(request: Request) -> dict:
        tenant = _tenant_of(request)
        job_id = request.path_params["job_id"]
        job = queue.get(job_id)
        if job.tenant != tenant:  # don't leak other tenants' jobs
            raise JobNotFoundError(job_id)
        return job.to_dict()

    return router

"""REST endpoints exposing the DataLens controller (§3's integration API).

The paper integrates external data-preparation tools through REST: POST
forwards tasks, GET retrieves results, PUT updates request state. This app
exposes the same surface over the in-process controller so that BI/ML
platforms (or the bundled dashboard) can drive the pipeline remotely.
"""

from __future__ import annotations

from typing import Any

from ..core import DataLens
from ..dataframe import DataFrame, read_csv_text
from .http import HTTPError, Request, Router


def _require(body: Any, key: str) -> Any:
    if not isinstance(body, dict) or key not in body:
        raise HTTPError(422, f"missing required field {key!r}")
    return body[key]


def _frame_preview(frame: DataFrame, limit: int = 20) -> dict[str, Any]:
    return {
        "num_rows": frame.num_rows,
        "num_columns": frame.num_columns,
        "columns": frame.column_names,
        "dtypes": frame.dtypes(),
        "rows": frame.head(limit).to_records(),
    }


def create_app(lens: DataLens) -> Router:
    """Build the REST router bound to one DataLens workspace."""
    router = Router()

    # ------------------------------------------------------------------
    @router.get("/health")
    def health(request: Request) -> dict:
        return {"status": "ok", "datasets": lens.list_datasets()}

    @router.get("/datasets")
    def list_datasets(request: Request) -> dict:
        return {"datasets": lens.list_datasets()}

    @router.post("/datasets")
    def ingest(request: Request) -> dict:
        name = _require(request.body, "name")
        if "records" in request.body:
            frame = DataFrame.from_records(request.body["records"])
        elif "csv_text" in request.body:
            frame = read_csv_text(request.body["csv_text"])
        elif "preloaded" in request.body:
            session = lens.ingest_preloaded(request.body["preloaded"])
            return {"dataset": session.name, "shape": list(session.frame.shape)}
        else:
            raise HTTPError(422, "provide 'records', 'csv_text', or 'preloaded'")
        session = lens.ingest_frame(name, frame)
        return {"dataset": session.name, "shape": list(session.frame.shape)}

    @router.get("/datasets/{name}")
    def preview(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        limit = int(request.query.get("limit", "20"))
        return _frame_preview(session.frame, limit)

    # ------------------------------------------------------------------
    @router.get("/datasets/{name}/profile")
    def get_profile(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        report = session.profile_report or session.profile()
        return report.to_dict()

    @router.get("/datasets/{name}/quality")
    def get_quality(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        return session.quality_metrics()

    @router.get("/datasets/{name}/cache")
    def get_cache_stats(request: Request) -> dict:
        """Artifact-cache counters for the session (hits/misses/evictions)."""
        session = lens.session(request.path_params["name"])
        return session.cache_stats()

    @router.get("/datasets/{name}/spill")
    def get_spill_stats(request: Request) -> dict:
        """Spill-store residency counters for the session's working frame."""
        session = lens.session(request.path_params["name"])
        return session.spill_stats()

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/rules/discover")
    def discover_rules(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        body = request.body or {}
        rules = session.discover_rules(
            algorithm=body.get("algorithm", "approximate"),
            max_lhs_size=int(body.get("max_lhs_size", 1)),
            tolerance=float(body.get("tolerance", 0.1)),
        )
        return {"rules": [rule.to_dict() for rule in rules]}

    @router.get("/datasets/{name}/rules")
    def list_rules(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        return {
            "rules": [managed.to_dict() for managed in session.rule_set.managed]
        }

    @router.put("/datasets/{name}/rules")
    def put_rule(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        determinants = _require(request.body, "determinants")
        dependent = _require(request.body, "dependent")
        status = (request.body or {}).get("status")
        if status in ("confirmed", "rejected"):
            from ..fd import FunctionalDependency

            rule = FunctionalDependency(tuple(determinants), dependent)
            session.rule_set.set_status(rule, status)
            return {"rule": rule.to_dict(), "status": status}
        rule = session.add_custom_rule(
            determinants, dependent, note=(request.body or {}).get("note", "")
        )
        return {"rule": rule.to_dict(), "status": "confirmed"}

    @router.post("/datasets/{name}/rules/parse")
    def parse_nl_rule(request: Request) -> dict:
        """Natural-language rule definition (future work 1)."""
        from ..core.nlrules import RuleParseError

        session = lens.session(request.path_params["name"])
        text = _require(request.body, "text")
        try:
            parsed = session.add_rule_from_text(text)
        except RuleParseError as error:
            raise HTTPError(422, str(error)) from error
        return {"kind": parsed.kind, "rule": parsed.describe()}

    @router.get("/datasets/{name}/explanations")
    def get_explanations(request: Request) -> dict:
        """Explainability (future work 2)."""
        session = lens.session(request.path_params["name"])
        limit = int(request.query.get("limit", "20"))
        explanations = session.explain_detections(limit=limit)
        return {
            "explanations": [
                {
                    "row": exp.cell[0],
                    "column": exp.cell[1],
                    "value": exp.value,
                    "evidence": [
                        {"tool": ev.tool, "reason": ev.reason, "score": ev.score}
                        for ev in exp.evidence
                    ],
                    "repair": exp.repair,
                }
                for exp in explanations
            ]
        }

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/tags")
    def add_tag(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        session.tag_value(_require(request.body, "value"))
        return {"tagged_values": [str(v) for v in session.tags.values()]}

    @router.put("/datasets/{name}/labels")
    def put_label(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        row = int(_require(request.body, "row"))
        column = _require(request.body, "column")
        is_dirty = bool(_require(request.body, "is_dirty"))
        session.label_cell(row, column, is_dirty)
        return {"labels": len(session.labels)}

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/detect")
    def detect(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        tools = _require(request.body, "tools")
        cells = session.run_detection(tools)
        return {
            "num_cells": len(cells),
            "per_tool": {
                tool: len(result.cells)
                for tool, result in session.detection_results.items()
            },
        }

    @router.get("/datasets/{name}/detections")
    def get_detections(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        limit = int(request.query.get("limit", "200"))
        cells = sorted(session.detected_cells)[:limit]
        return {
            "num_cells": len(session.detected_cells),
            "cells": [{"row": row, "column": column} for row, column in cells],
            "summary": session.detection_summary(),
        }

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/repair")
    def repair(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        body = request.body or {}
        tool = body.get("tool", "ml_imputer")
        params = body.get("params", {})
        repaired = session.run_repair(tool, **params)
        return {
            "tool": tool,
            "num_repairs": len(session.repair_result.repairs),
            "version_after_repair": session.version_after_repair,
            "shape": list(repaired.shape),
        }

    # ------------------------------------------------------------------
    @router.get("/datasets/{name}/datasheet")
    def get_datasheet(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        return session.generate_datasheet().to_dict()

    @router.get("/datasets/{name}/dashboard")
    def get_dashboard(request: Request) -> dict:
        """Figure-2 main window as standalone HTML (returned as JSON field)."""
        from ..dashboard import render_dashboard

        session = lens.session(request.path_params["name"])
        return {"html": render_dashboard(session)}

    @router.get("/datasets/{name}/drift")
    def get_drift(request: Request) -> dict:
        """Drift report between two Delta versions (monitoring loop)."""
        from ..profiling import drift_report

        session = lens.session(request.path_params["name"])
        latest = session.delta.latest_version() or 0
        baseline = int(request.query.get("baseline", "0"))
        current = int(request.query.get("current", str(latest)))
        return drift_report(
            session.delta.read(baseline), session.delta.read(current)
        )

    @router.get("/datasets/{name}/versions")
    def get_versions(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        return {"versions": session.version_history()}

    @router.post("/datasets/{name}/versions/restore")
    def restore_version(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        version = int(_require(request.body, "version"))
        new_version = session.delta.restore(version)
        # load_version both swaps the working frame and resets
        # frame-derived state (profile report, detections, repair
        # proposal), so the next GET /profile reflects the restored
        # content — incrementally, via the session artifact store.
        session.load_version(new_version)
        return {"restored_from": version, "new_version": new_version}

    # ------------------------------------------------------------------
    @router.post("/datasets/{name}/iterative")
    def iterative(request: Request) -> dict:
        session = lens.session(request.path_params["name"])
        body = request.body or {}
        result = session.iterative_clean(
            task=_require(body, "task"),
            target=_require(body, "target"),
            n_iterations=int(body.get("n_iterations", 10)),
            model=body.get("model", "decision_tree"),
            sampler=body.get("sampler", "tpe"),
        )
        return {
            "best_score": result.best_score,
            "best_params": result.best_params,
            "baseline_dirty": result.baseline_dirty,
            "n_iterations": result.n_iterations,
            "search_runtime_seconds": result.search_runtime_seconds,
        }

    return router

"""Background jobs and per-dataset locking for the async REST layer.

This module holds the concurrency machinery that lets the serving layer
(:mod:`repro.api.app` over :mod:`repro.api.http`) answer requests while
heavy pipeline work runs elsewhere:

``JobQueue``
    A bounded :class:`~concurrent.futures.ThreadPoolExecutor` executing
    profiling / detection / repair / iterative-clean work off the HTTP
    event loop. ``POST …?async=1`` submits a job and returns ``202``
    with a job id; ``GET /jobs/{id}`` polls it. Job lifecycle::

        queued ──> running ──> done    (result carries the payload)
                          └──> failed  (error carries the detail)

    The worker count comes from the ``workers`` argument, else the
    ``DATALENS_SERVER_WORKERS`` environment variable, else
    :data:`DEFAULT_WORKERS`. Finished jobs are retained (newest first)
    up to ``max_retained`` so polls after completion still answer.

``RWLock`` / ``LockRegistry``
    Per-dataset reader/writer locks: any number of read-only requests
    proceed concurrently, while mutating requests (ingest, detect,
    repair, restore, labels, tags, rules) serialize against both
    readers and each other. Writer-preference keeps a stream of reads
    from starving a pending mutation. The registry hands out one lock
    per ``(tenant, dataset)`` key.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterator

SERVER_WORKERS_ENV = "DATALENS_SERVER_WORKERS"
DEFAULT_WORKERS = 4

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


def resolve_worker_count(workers: int | None = None) -> int:
    """Explicit ``workers``, else ``DATALENS_SERVER_WORKERS``, else 4."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        return workers
    raw = os.environ.get(SERVER_WORKERS_ENV, "").strip()
    if not raw:
        return DEFAULT_WORKERS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid integer for {SERVER_WORKERS_ENV}: {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{SERVER_WORKERS_ENV} must be >= 1, got {value}")
    return value


class JobNotFoundError(KeyError):
    """Unknown job id (mapped to HTTP 404 by the REST app)."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"no job with id {job_id!r}")
        self.job_id = job_id

    def __str__(self) -> str:  # KeyError would add quotes around the message
        return self.args[0]


@dataclass
class Job:
    """One queued unit of pipeline work and its lifecycle record."""

    id: str
    kind: str
    dataset: str | None
    tenant: str
    status: str = QUEUED
    result: Any = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "dataset": self.dataset,
            "tenant": self.tenant,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.status == DONE:
            payload["result"] = self.result
        if self.status == FAILED:
            payload["error"] = self.error
        return payload


class JobQueue:
    """Bounded worker pool with pollable job records.

    Thread safety: all job-state transitions happen under one lock, and
    a condition variable backs :meth:`wait`. Work callables run on the
    pool; an exception marks the job ``failed`` with
    ``"ExcType: detail"`` as the error (it never escapes the worker).
    """

    def __init__(
        self, workers: int | None = None, max_retained: int = 512
    ) -> None:
        self.workers = resolve_worker_count(workers)
        if max_retained < 1:
            raise ValueError(f"max_retained must be >= 1, got {max_retained}")
        self._max_retained = max_retained
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="datalens-job"
        )
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        work: Callable[[], Any],
        dataset: str | None = None,
        tenant: str = "default",
    ) -> Job:
        """Queue ``work`` on the pool; returns the (still queued) job."""
        job = Job(id=uuid.uuid4().hex, kind=kind, dataset=dataset, tenant=tenant)
        with self._lock:
            self._jobs[job.id] = job
            self._prune_locked()
        self._pool.submit(self._run, job, work)
        return job

    def _run(self, job: Job, work: Callable[[], Any]) -> None:
        with self._changed:
            job.status = RUNNING
            job.started_at = time.time()
            self._changed.notify_all()
        try:
            result = work()
        except BaseException as error:  # noqa: BLE001 — a job failure must
            # land in the job record, not kill the worker thread.
            detail = getattr(error, "detail", None) or str(error)
            with self._changed:
                job.status = FAILED
                job.error = f"{type(error).__name__}: {detail}"
                job.finished_at = time.time()
                self._changed.notify_all()
        else:
            with self._changed:
                job.status = DONE
                job.result = result
                job.finished_at = time.time()
                self._changed.notify_all()

    def _prune_locked(self) -> None:
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in (DONE, FAILED)
        ]
        excess = len(self._jobs) - self._max_retained
        for job_id in finished[: max(0, excess)]:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def list(
        self, tenant: str | None = None, dataset: str | None = None
    ) -> list[Job]:
        """Matching jobs, newest submission first."""
        with self._lock:
            jobs = list(self._jobs.values())
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        if dataset is not None:
            jobs = [job for job in jobs if job.dataset == dataset]
        return sorted(jobs, key=lambda job: job.submitted_at, reverse=True)

    def wait(self, job_id: str, timeout: float = 30.0) -> Job:
        """Block until the job finishes; raises TimeoutError otherwise."""
        deadline = time.monotonic() + timeout
        job = self.get(job_id)
        with self._changed:
            while job.status not in (DONE, FAILED):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id!r} still {job.status} after {timeout}s"
                    )
                self._changed.wait(remaining)
        return job

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


class RWLock:
    """Writer-preference reader/writer lock (not reentrant).

    Any number of readers share the lock; a writer excludes readers and
    other writers. A waiting writer blocks *new* readers, so mutations
    cannot starve behind a stream of reads.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_lock(self) -> Iterator[None]:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_lock(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class LockRegistry:
    """One :class:`RWLock` per key, created on first use."""

    def __init__(self) -> None:
        self._locks: dict[Hashable, RWLock] = {}
        self._guard = threading.Lock()

    def of(self, *key: Hashable) -> RWLock:
        with self._guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = RWLock()
            return lock

"""Background jobs and per-dataset locking for the async REST layer.

This module holds the concurrency machinery that lets the serving layer
(:mod:`repro.api.app` over :mod:`repro.api.http`) answer requests while
heavy pipeline work runs elsewhere:

``JobQueue``
    A bounded :class:`~concurrent.futures.ThreadPoolExecutor` executing
    profiling / detection / repair / iterative-clean work off the HTTP
    event loop. ``POST …?async=1`` submits a job and returns ``202``
    with a job id; ``GET /jobs/{id}`` polls it. Job lifecycle::

        queued ──> running ──> done      (result carries the payload)
                     │   └───> failed    (error carries the detail)
                     └─> retrying ──> running ──> …

    The worker count comes from the ``workers`` argument, else the
    ``DATALENS_SERVER_WORKERS`` environment variable, else
    :data:`DEFAULT_WORKERS`. Finished jobs are retained (newest first)
    up to ``max_retained`` so polls after completion still answer.

    Overload and failure handling:

    * The queue is **depth-bounded** (``DATALENS_JOB_QUEUE_DEPTH``,
      default 256 active jobs): submitting beyond the bound raises
      :class:`JobQueueFullError`, which the REST layer maps to ``429`` +
      ``Retry-After`` instead of queueing unboundedly.
    * Jobs failing with a **transient** error (see
      :func:`repro.core.faults.is_transient`) are retried automatically
      with exponential backoff + seeded jitter, up to
      ``DATALENS_JOB_RETRIES`` extra attempts (default 2); every attempt
      is recorded in ``Job.attempts`` and visible via ``GET /jobs/{id}``.
    * :meth:`JobQueue.shutdown` with a ``drain_timeout`` stops accepting
      (:class:`JobQueueClosedError` → ``503``), waits for active jobs up
      to the deadline, fails whatever is still queued with a
      ``cancelled`` error, then force-cancels the pool — no silently
      abandoned work.

``RWLock`` / ``LockRegistry``
    Per-dataset reader/writer locks: any number of read-only requests
    proceed concurrently, while mutating requests (ingest, detect,
    repair, restore, labels, tags, rules) serialize against both
    readers and each other. Writer-preference keeps a stream of reads
    from starving a pending mutation. The registry hands out one lock
    per ``(tenant, dataset)`` key.
"""

from __future__ import annotations

import os
import random
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterator

from ..core import faults as _faults

SERVER_WORKERS_ENV = "DATALENS_SERVER_WORKERS"
DEFAULT_WORKERS = 4

#: Environment variable bounding concurrently active (queued + running +
#: retrying) jobs; submits beyond it raise :class:`JobQueueFullError`.
JOB_QUEUE_DEPTH_ENV = "DATALENS_JOB_QUEUE_DEPTH"
DEFAULT_QUEUE_DEPTH = 256

#: Environment variable setting how many extra attempts a job failing
#: with a *transient* error gets (0 disables retries).
JOB_RETRIES_ENV = "DATALENS_JOB_RETRIES"
DEFAULT_JOB_RETRIES = 2

QUEUED = "queued"
RUNNING = "running"
RETRYING = "retrying"
DONE = "done"
FAILED = "failed"

#: Statuses that count against the queue-depth bound.
ACTIVE_STATUSES = (QUEUED, RUNNING, RETRYING)


def _resolve_positive_int(env: str, default: int, minimum: int) -> int:
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"invalid integer for {env}: {raw!r}") from None
    if value < minimum:
        raise ValueError(f"{env} must be >= {minimum}, got {value}")
    return value


def resolve_queue_depth(depth: int | None = None) -> int:
    """Explicit ``depth``, else ``DATALENS_JOB_QUEUE_DEPTH``, else 256."""
    if depth is not None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        return depth
    return _resolve_positive_int(JOB_QUEUE_DEPTH_ENV, DEFAULT_QUEUE_DEPTH, 1)


def resolve_job_retries(retries: int | None = None) -> int:
    """Explicit ``retries``, else ``DATALENS_JOB_RETRIES``, else 2."""
    if retries is not None:
        if retries < 0:
            raise ValueError(f"job retries must be >= 0, got {retries}")
        return retries
    return _resolve_positive_int(JOB_RETRIES_ENV, DEFAULT_JOB_RETRIES, 0)


def resolve_worker_count(workers: int | None = None) -> int:
    """Explicit ``workers``, else ``DATALENS_SERVER_WORKERS``, else 4."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        return workers
    raw = os.environ.get(SERVER_WORKERS_ENV, "").strip()
    if not raw:
        return DEFAULT_WORKERS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid integer for {SERVER_WORKERS_ENV}: {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{SERVER_WORKERS_ENV} must be >= 1, got {value}")
    return value


class JobQueueFullError(RuntimeError):
    """The queue is at its depth bound (mapped to HTTP 429 + Retry-After)."""

    def __init__(self, depth: int) -> None:
        super().__init__(
            f"job queue is full ({depth} active jobs); retry shortly or "
            f"raise {JOB_QUEUE_DEPTH_ENV}"
        )
        self.depth = depth


class JobQueueClosedError(RuntimeError):
    """The queue is shutting down and accepts no new work (HTTP 503)."""

    def __init__(self) -> None:
        super().__init__("job queue is shutting down; no new work accepted")


class JobNotFoundError(KeyError):
    """Unknown job id (mapped to HTTP 404 by the REST app)."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"no job with id {job_id!r}")
        self.job_id = job_id

    def __str__(self) -> str:  # KeyError would add quotes around the message
        return self.args[0]


@dataclass
class Job:
    """One queued unit of pipeline work and its lifecycle record."""

    id: str
    kind: str
    dataset: str | None
    tenant: str
    status: str = QUEUED
    result: Any = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: One record per failed attempt: ``{"attempt", "error",
    #: "started_at", "finished_at", "backoff_seconds"}`` —
    #: ``backoff_seconds`` is None on the final (non-retried) failure.
    attempts: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "dataset": self.dataset,
            "tenant": self.tenant,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": [dict(record) for record in self.attempts],
        }
        if self.status == DONE:
            payload["result"] = self.result
        if self.status == FAILED:
            payload["error"] = self.error
        return payload


class JobQueue:
    """Bounded worker pool with pollable job records.

    Thread safety: all job-state transitions happen under one lock, and
    a condition variable backs :meth:`wait`. Work callables run on the
    pool; an exception marks the job ``failed`` with
    ``"ExcType: detail"`` as the error (it never escapes the worker).
    """

    def __init__(
        self,
        workers: int | None = None,
        max_retained: int = 512,
        max_depth: int | None = None,
        retries: int | None = None,
        retry_base_delay: float = 0.05,
    ) -> None:
        self.workers = resolve_worker_count(workers)
        if max_retained < 1:
            raise ValueError(f"max_retained must be >= 1, got {max_retained}")
        self._max_retained = max_retained
        self.max_depth = resolve_queue_depth(max_depth)
        self.retries = resolve_job_retries(retries)
        self.retry_base_delay = retry_base_delay
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="datalens-job"
        )
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._accepting = True
        self.rejected_full = 0
        self.rejected_closed = 0
        self.retried_attempts = 0
        # Seeded so backoff jitter — and thus chaos-suite timing — is
        # reproducible run to run.
        self._jitter_rng = random.Random(0)

    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        work: Callable[[], Any],
        dataset: str | None = None,
        tenant: str = "default",
    ) -> Job:
        """Queue ``work`` on the pool; returns the (still queued) job.

        Raises :class:`JobQueueClosedError` once :meth:`shutdown` has
        begun and :class:`JobQueueFullError` when active (queued /
        running / retrying) jobs have reached ``max_depth``.
        """
        job = Job(id=uuid.uuid4().hex, kind=kind, dataset=dataset, tenant=tenant)
        with self._lock:
            if not self._accepting:
                self.rejected_closed += 1
                raise JobQueueClosedError()
            active = sum(
                1
                for existing in self._jobs.values()
                if existing.status in ACTIVE_STATUSES
            )
            if active >= self.max_depth:
                self.rejected_full += 1
                raise JobQueueFullError(active)
            self._jobs[job.id] = job
            self._prune_locked()
        self._pool.submit(self._run, job, work)
        return job

    def _run(self, job: Job, work: Callable[[], Any]) -> None:
        attempt = 0
        while True:
            with self._changed:
                if job.status == FAILED:
                    # Cancelled while queued/sleeping (drain deadline).
                    return
                job.status = RUNNING
                if job.started_at is None:
                    job.started_at = time.time()
                attempt_started = time.time()
                self._changed.notify_all()
            try:
                _faults.maybe_fire("job.run")
                result = work()
            except BaseException as error:  # noqa: BLE001 — a job failure
                # must land in the job record, not kill the worker thread.
                detail = getattr(error, "detail", None) or str(error)
                message = f"{type(error).__name__}: {detail}"
                retry = (
                    _faults.is_transient(error)
                    and attempt < self.retries
                )
                with self._changed:
                    if job.status == FAILED:
                        return
                    retry = retry and self._accepting
                    backoff = None
                    if retry:
                        backoff = self.retry_base_delay * (2**attempt) + (
                            self.retry_base_delay * self._jitter_rng.random()
                        )
                        job.status = RETRYING
                        self.retried_attempts += 1
                    else:
                        job.status = FAILED
                        job.error = message
                        job.finished_at = time.time()
                    job.attempts.append(
                        {
                            "attempt": attempt + 1,
                            "error": message,
                            "started_at": attempt_started,
                            "finished_at": time.time(),
                            "backoff_seconds": backoff,
                        }
                    )
                    self._changed.notify_all()
                if not retry:
                    return
                time.sleep(backoff)
                attempt += 1
            else:
                with self._changed:
                    if job.status == FAILED:
                        return
                    job.status = DONE
                    job.result = result
                    job.finished_at = time.time()
                    self._changed.notify_all()
                return

    def _prune_locked(self) -> None:
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in (DONE, FAILED)
        ]
        excess = len(self._jobs) - self._max_retained
        for job_id in finished[: max(0, excess)]:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def list(
        self, tenant: str | None = None, dataset: str | None = None
    ) -> list[Job]:
        """Matching jobs, newest submission first."""
        with self._lock:
            jobs = list(self._jobs.values())
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        if dataset is not None:
            jobs = [job for job in jobs if job.dataset == dataset]
        return sorted(jobs, key=lambda job: job.submitted_at, reverse=True)

    def wait(self, job_id: str, timeout: float = 30.0) -> Job:
        """Block until the job finishes; raises TimeoutError otherwise."""
        deadline = time.monotonic() + timeout
        job = self.get(job_id)
        with self._changed:
            while job.status not in (DONE, FAILED):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id!r} still {job.status} after {timeout}s"
                    )
                self._changed.wait(remaining)
        return job

    def shutdown(
        self, wait: bool = True, drain_timeout: float | None = None
    ) -> bool:
        """Stop accepting work and wind the pool down.

        Without ``drain_timeout`` this is the historical behavior:
        block (or not, per ``wait``) until the pool exits. With a
        ``drain_timeout``, active jobs get that many seconds to finish;
        whatever is still queued or retrying at the deadline is marked
        ``failed`` with a ``cancelled`` error (pollable afterwards) and
        the pool is force-cancelled. Returns True when every job
        finished on its own.
        """
        with self._changed:
            self._accepting = False
            self._changed.notify_all()
        if drain_timeout is None:
            self._pool.shutdown(wait=wait)
            return True
        deadline = time.monotonic() + drain_timeout
        with self._changed:
            while True:
                active = [
                    job
                    for job in self._jobs.values()
                    if job.status in ACTIVE_STATUSES
                ]
                if not active:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._changed.wait(remaining)
            drained = not active
            now = time.time()
            for job in active:
                job.status = FAILED
                job.error = (
                    "CancelledError: cancelled — server shut down before "
                    "the job could finish"
                )
                job.finished_at = now
            if active:
                self._changed.notify_all()
        self._pool.shutdown(wait=False, cancel_futures=True)
        return drained


class RWLock:
    """Writer-preference reader/writer lock (not reentrant).

    Any number of readers share the lock; a writer excludes readers and
    other writers. A waiting writer blocks *new* readers, so mutations
    cannot starve behind a stream of reads.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_lock(self) -> Iterator[None]:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_lock(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class LockRegistry:
    """One :class:`RWLock` per key, created on first use."""

    def __init__(self) -> None:
        self._locks: dict[Hashable, RWLock] = {}
        self._guard = threading.Lock()

    def of(self, *key: Hashable) -> RWLock:
        with self._guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = RWLock()
            return lock

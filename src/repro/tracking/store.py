"""File-backed experiment tracking (MLflow substitute).

Runs are grouped into named experiments — DataLens uses "Detection" and
"Repair" (§5) — and each run stores params, (stepped) metrics, tags, and
artifacts under a directory tree:

    <root>/<experiment_id>/meta.json
    <root>/<experiment_id>/<run_id>/meta.json
    <root>/<experiment_id>/<run_id>/params.json
    <root>/<experiment_id>/<run_id>/metrics.json
    <root>/<experiment_id>/<run_id>/artifacts/...
"""

from __future__ import annotations

import json
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

ACTIVE = "active"
FINISHED = "finished"
FAILED = "failed"


@dataclass
class RunRecord:
    """In-memory view of one tracked run."""

    run_id: str
    experiment_id: str
    name: str
    status: str = ACTIVE
    start_time: float = field(default_factory=time.time)
    end_time: float | None = None
    params: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    tags: dict[str, str] = field(default_factory=dict)

    def latest_metrics(self) -> dict[str, float]:
        return {
            key: history[-1][1] for key, history in self.metrics.items() if history
        }


class TrackingStore:
    """Persistence layer for experiments and runs."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Experiments
    # ------------------------------------------------------------------
    def create_experiment(self, name: str) -> str:
        existing = self.experiment_id_by_name(name)
        if existing is not None:
            return existing
        experiment_id = f"exp_{len(self.list_experiments()):04d}"
        path = self.root / experiment_id
        path.mkdir(parents=True, exist_ok=True)
        (path / "meta.json").write_text(
            json.dumps({"experiment_id": experiment_id, "name": name}),
            encoding="utf-8",
        )
        return experiment_id

    def experiment_id_by_name(self, name: str) -> str | None:
        for experiment in self.list_experiments():
            if experiment["name"] == name:
                return experiment["experiment_id"]
        return None

    def list_experiments(self) -> list[dict[str, Any]]:
        experiments = []
        for meta_path in sorted(self.root.glob("exp_*/meta.json")):
            experiments.append(json.loads(meta_path.read_text(encoding="utf-8")))
        return experiments

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def create_run(self, experiment_id: str, name: str) -> RunRecord:
        if not (self.root / experiment_id / "meta.json").exists():
            raise KeyError(f"unknown experiment {experiment_id!r}")
        run = RunRecord(
            run_id=uuid.uuid4().hex[:12],
            experiment_id=experiment_id,
            name=name,
        )
        self.save_run(run)
        return run

    def run_dir(self, run: RunRecord) -> Path:
        return self.root / run.experiment_id / run.run_id

    def save_run(self, run: RunRecord) -> None:
        path = self.run_dir(run)
        path.mkdir(parents=True, exist_ok=True)
        (path / "meta.json").write_text(
            json.dumps(
                {
                    "run_id": run.run_id,
                    "experiment_id": run.experiment_id,
                    "name": run.name,
                    "status": run.status,
                    "start_time": run.start_time,
                    "end_time": run.end_time,
                    "tags": run.tags,
                }
            ),
            encoding="utf-8",
        )
        (path / "params.json").write_text(
            json.dumps(run.params, default=str), encoding="utf-8"
        )
        (path / "metrics.json").write_text(
            json.dumps(run.metrics), encoding="utf-8"
        )

    def load_run(self, experiment_id: str, run_id: str) -> RunRecord:
        path = self.root / experiment_id / run_id
        if not path.exists():
            raise KeyError(f"unknown run {run_id!r}")
        meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
        params = json.loads((path / "params.json").read_text(encoding="utf-8"))
        metrics_raw = json.loads((path / "metrics.json").read_text(encoding="utf-8"))
        run = RunRecord(
            run_id=meta["run_id"],
            experiment_id=meta["experiment_id"],
            name=meta["name"],
            status=meta["status"],
            start_time=meta["start_time"],
            end_time=meta["end_time"],
            params=params,
            metrics={
                key: [(int(step), float(value)) for step, value in history]
                for key, history in metrics_raw.items()
            },
            tags=dict(meta.get("tags", {})),
        )
        return run

    def list_runs(self, experiment_id: str) -> list[RunRecord]:
        base = self.root / experiment_id
        runs = []
        if not base.exists():
            return runs
        for run_dir in sorted(base.iterdir()):
            if run_dir.is_dir() and (run_dir / "meta.json").exists():
                runs.append(self.load_run(experiment_id, run_dir.name))
        return runs

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    def log_artifact_text(
        self, run: RunRecord, file_name: str, content: str
    ) -> Path:
        artifact_dir = self.run_dir(run) / "artifacts"
        artifact_dir.mkdir(parents=True, exist_ok=True)
        path = artifact_dir / file_name
        path.write_text(content, encoding="utf-8")
        return path

    def log_artifact_file(self, run: RunRecord, source: str | Path) -> Path:
        artifact_dir = self.run_dir(run) / "artifacts"
        artifact_dir.mkdir(parents=True, exist_ok=True)
        destination = artifact_dir / Path(source).name
        shutil.copyfile(source, destination)
        return destination

    def list_artifacts(self, run: RunRecord) -> list[str]:
        artifact_dir = self.run_dir(run) / "artifacts"
        if not artifact_dir.exists():
            return []
        return sorted(p.name for p in artifact_dir.iterdir() if p.is_file())

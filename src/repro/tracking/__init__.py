"""Experiment tracking (MLflow substitute)."""

from .client import (
    DETECTION_EXPERIMENT,
    REPAIR_EXPERIMENT,
    TrackingClient,
)
from .store import ACTIVE, FAILED, FINISHED, RunRecord, TrackingStore

__all__ = [
    "ACTIVE",
    "DETECTION_EXPERIMENT",
    "FAILED",
    "FINISHED",
    "REPAIR_EXPERIMENT",
    "RunRecord",
    "TrackingClient",
    "TrackingStore",
]

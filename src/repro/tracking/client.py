"""High-level tracking client with MLflow-style ergonomics."""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from .store import ACTIVE, FAILED, FINISHED, RunRecord, TrackingStore

#: Experiment groups DataLens uses out of the box (§5).
DETECTION_EXPERIMENT = "Detection"
REPAIR_EXPERIMENT = "Repair"


class TrackingClient:
    """Log params/metrics/artifacts into a :class:`TrackingStore`."""

    def __init__(self, root: str | Path) -> None:
        self.store = TrackingStore(root)
        self._active: RunRecord | None = None

    # ------------------------------------------------------------------
    def set_experiment(self, name: str) -> str:
        return self.store.create_experiment(name)

    @contextmanager
    def start_run(self, experiment: str, name: str) -> Iterator[RunRecord]:
        """Context manager around one run; marks failure on exception."""
        experiment_id = self.store.create_experiment(experiment)
        run = self.store.create_run(experiment_id, name)
        previous = self._active
        self._active = run
        try:
            yield run
        except Exception:
            run.status = FAILED
            raise
        else:
            run.status = FINISHED
        finally:
            run.end_time = time.time()
            self.store.save_run(run)
            self._active = previous

    def _require_active(self) -> RunRecord:
        if self._active is None or self._active.status != ACTIVE:
            raise RuntimeError("no active run; use start_run()")
        return self._active

    # ------------------------------------------------------------------
    def log_param(self, key: str, value: Any) -> None:
        run = self._require_active()
        run.params[key] = value

    def log_params(self, params: dict[str, Any]) -> None:
        run = self._require_active()
        run.params.update(params)

    def log_metric(self, key: str, value: float, step: int | None = None) -> None:
        run = self._require_active()
        history = run.metrics.setdefault(key, [])
        next_step = step if step is not None else len(history)
        history.append((int(next_step), float(value)))

    def set_tag(self, key: str, value: str) -> None:
        run = self._require_active()
        run.tags[key] = str(value)

    def log_text_artifact(self, file_name: str, content: str) -> Path:
        run = self._require_active()
        return self.store.log_artifact_text(run, file_name, content)

    def log_file_artifact(self, source: str | Path) -> Path:
        run = self._require_active()
        return self.store.log_artifact_file(run, source)

    # ------------------------------------------------------------------
    def search_runs(
        self, experiment: str, status: str | None = None
    ) -> list[RunRecord]:
        experiment_id = self.store.experiment_id_by_name(experiment)
        if experiment_id is None:
            return []
        runs = self.store.list_runs(experiment_id)
        if status is not None:
            runs = [run for run in runs if run.status == status]
        return runs

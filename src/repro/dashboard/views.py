"""HTML rendering of the DataLens main window (Figure 2).

The page layout mirrors the paper's dashboard: a left panel for upload and
tool selection, a tabbed center (Data Overview / Data Profile / Error
Detection Results / DataSheets), and a right panel with data-quality
gauges. The output is a self-contained static HTML document.
"""

from __future__ import annotations

from html import escape
from typing import Any

import numpy as np

from ..core.controller import DataLensSession
from ..core.registry import detector_names, repairer_names
from .charts import bar_chart, stacked_bar_chart

_PAGE_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 0;
       background: #f4f6f8; color: #1c2733; }
header { background: #173753; color: white; padding: 12px 24px; }
.layout { display: flex; gap: 16px; padding: 16px; align-items: flex-start; }
.panel { background: white; border-radius: 8px; padding: 16px;
         box-shadow: 0 1px 3px rgba(0,0,0,.12); }
.left { width: 220px; } .right { width: 260px; } .center { flex: 1; }
.tab { margin-bottom: 28px; border-top: 3px solid #4e79a7; padding-top: 8px; }
table { border-collapse: collapse; font-size: 12px; width: 100%; }
th, td { border: 1px solid #d8dee5; padding: 3px 7px; text-align: left; }
th { background: #eef2f6; }
.metric { display: flex; justify-content: space-between; margin: 6px 0; }
.metric .bar { background: #e3e8ee; width: 130px; height: 10px;
               border-radius: 5px; overflow: hidden; }
.metric .fill { background: #59a14f; height: 100%; }
.alert { color: #9a3412; font-size: 12px; }
.badge { display:inline-block; background:#eef2f6; border-radius: 4px;
         padding: 1px 6px; margin: 2px; font-size: 11px; }
"""


def _table(rows: list[dict[str, Any]], columns: list[str], limit: int = 15) -> str:
    head = "".join(f"<th>{escape(str(c))}</th>" for c in columns)
    body_rows = []
    for row in rows[:limit]:
        cells = "".join(
            f"<td>{escape('' if row.get(c) is None else str(row.get(c)))}</td>"
            for c in columns
        )
        body_rows.append(f"<tr>{cells}</tr>")
    return f"<table><thead><tr>{head}</tr></thead><tbody>{''.join(body_rows)}</tbody></table>"


def render_left_panel(session: DataLensSession) -> str:
    detectors = "".join(
        f"<span class='badge'>{escape(name)}</span>" for name in detector_names()
    )
    repairers = "".join(
        f"<span class='badge'>{escape(name)}</span>" for name in repairer_names()
    )
    stats = session.cache_stats()
    cache_line = (
        f"<p class='cache'>entries: {stats['entries']}; "
        f"hit rate: {stats['hit_rate']:.0%} "
        f"({stats['hits']} hits / {stats['misses']} misses)</p>"
        if stats["enabled"]
        else "<p class='cache'>disabled</p>"
    )
    return (
        "<div class='panel left'><h3>Data Upload</h3>"
        f"<p>dataset: <b>{escape(session.name)}</b><br>"
        f"shape: {session.frame.num_rows} × {session.frame.num_columns}</p>"
        f"<h3>Detection Tools</h3><p>{detectors}</p>"
        f"<h3>Repair Tools</h3><p>{repairers}</p>"
        f"<h3>Artifact Cache</h3>{cache_line}</div>"
    )


def _affected_rows_table(session: DataLensSession, limit: int = 8) -> str:
    """Rows containing at least one detected cell, via the select() fast path."""
    frame = session.frame
    if not session.detected_cells or not frame.num_rows:
        return ""
    row_mask = np.zeros(frame.num_rows, dtype=bool)
    affected = sorted({row for row, _ in session.detected_cells})
    row_mask[affected] = True
    flagged = frame.select(row_mask)
    records = flagged.head(limit).to_records()
    for record, row_index in zip(records, affected):
        record["row"] = row_index
    return (
        f"<h3>Rows with detected errors ({len(affected)} rows)</h3>"
        + _table(records, ["row", *frame.column_names])
    )


def render_overview_tab(session: DataLensSession) -> str:
    frame = session.frame
    rows = frame.head(12).to_records()
    detected = sorted(session.detected_cells)[:20]
    detected_rows = [{"row": r, "column": c} for r, c in detected]
    labeling = (
        f"<p>user labels collected: {len(session.labels)}; "
        f"tagged values: {', '.join(map(escape, map(str, session.tags.values()))) or '—'}</p>"
    )
    detections_html = (
        _table(detected_rows, ["row", "column"])
        if detected_rows
        else "<p>no detections yet</p>"
    )
    return (
        "<section class='tab'><h2>Data Overview</h2>"
        + _table(rows, frame.column_names)
        + f"<h3>Detected errors ({len(session.detected_cells)} cells)</h3>"
        + detections_html
        + _affected_rows_table(session)
        + "<h3>User labeling</h3>"
        + labeling
        + "</section>"
    )


def render_profile_tab(session: DataLensSession) -> str:
    report = session.profile_report
    if report is None:
        return (
            "<section class='tab'><h2>Data Profile</h2>"
            "<p>profile not generated yet</p></section>"
        )
    rules = session.rule_set.managed
    rule_rows = [
        {
            "rule": str(managed.rule),
            "status": managed.status,
            "source": managed.source,
        }
        for managed in rules
    ]
    rules_html = (
        _table(rule_rows, ["rule", "status", "source"])
        if rule_rows
        else "<p>no FD rules discovered yet</p>"
    )
    return (
        "<section class='tab'><h2>Data Profile</h2>"
        + report.to_html()
        + "<h3>Functional dependency rules</h3>"
        + rules_html
        + "</section>"
    )


def render_detection_tab(session: DataLensSession) -> str:
    if not session.detection_results:
        return (
            "<section class='tab'><h2>Error Detection Results</h2>"
            "<p>no detection results yet</p></section>"
        )
    summary = session.detection_summary()
    columns = session.frame.column_names
    categories = {
        "Outlier": ("sd", "iqr", "isolation_forest"),
        "Missing Values": ("mv_detector",),
        "User Tagging": ("user_tags",),
        "Others": tuple(
            name
            for name in summary
            if name
            not in ("sd", "iqr", "isolation_forest", "mv_detector", "user_tags")
        ),
    }
    series = {}
    for label, tools in categories.items():
        series[label] = [
            sum(summary.get(tool, {}).get(column, 0.0) for tool in tools)
            for column in columns
        ]
    chart = stacked_bar_chart(
        columns, series, title="Distribution of detections across attributes"
    )
    per_tool = bar_chart(
        list(summary.keys()),
        [len(session.detection_results[name].cells) for name in summary],
        title="Detected cells per tool",
    )
    tool_rows = [
        {
            "tool": name,
            "cells": len(result.cells),
            "runtime_s": f"{result.runtime_seconds:.3f}",
        }
        for name, result in session.detection_results.items()
    ]
    return (
        "<section class='tab'><h2>Error Detection Results</h2>"
        + chart
        + per_tool
        + _table(tool_rows, ["tool", "cells", "runtime_s"])
        + "</section>"
    )


def render_datasheet_tab(session: DataLensSession) -> str:
    sheet = session.generate_datasheet()
    return (
        "<section class='tab'><h2>DataSheets</h2>"
        f"<pre style='font-size:11px'>{escape(sheet.to_json())}</pre>"
        "</section>"
    )


def render_quality_panel(session: DataLensSession) -> str:
    metrics = session.quality_metrics()
    bars = []
    for key, value in metrics.items():
        percent = max(0.0, min(1.0, float(value))) * 100.0
        bars.append(
            f"<div class='metric'><span>{escape(key)}</span>"
            f"<span class='bar'><span class='fill' "
            f"style='width:{percent:.0f}%'></span></span>"
            f"<span>{value:.2f}</span></div>"
        )
    return (
        "<div class='panel right'><h3>Data Quality</h3>"
        + "".join(bars)
        + "</div>"
    )


def render_dashboard(session: DataLensSession) -> str:
    """Full main-window HTML for a session."""
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>DataLens — {escape(session.name)}</title>"
        f"<style>{_PAGE_STYLE}</style></head><body>"
        "<header><h1>DataLens</h1></header>"
        "<div class='layout'>"
        + render_left_panel(session)
        + "<div class='panel center'>"
        + render_overview_tab(session)
        + render_profile_tab(session)
        + render_detection_tab(session)
        + render_datasheet_tab(session)
        + "</div>"
        + render_quality_panel(session)
        + "</div></body></html>"
    )

"""Tiny standalone SVG chart generation for the dashboard.

Covers the visual idioms the paper's figures use: grouped/stacked bars
(Figure 4's per-attribute error distribution) and dual-axis line charts
(Figures 3 and 5).
"""

from __future__ import annotations

from html import escape
from typing import Mapping, Sequence

PALETTE = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
    "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
]


def _scale(value: float, maximum: float, span: float) -> float:
    if maximum <= 0:
        return 0.0
    return value / maximum * span


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 560,
    height: int = 260,
    color: str = PALETTE[0],
) -> str:
    """Simple vertical bar chart as an SVG string."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    margin = 40
    plot_width = width - 2 * margin
    plot_height = height - 2 * margin
    maximum = max(values) if values else 1.0
    n = max(1, len(values))
    slot = plot_width / n
    bar_width = slot * 0.7
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        f"<text x='{width / 2}' y='18' text-anchor='middle' "
        f"font-size='13'>{escape(title)}</text>",
    ]
    for i, (label, value) in enumerate(zip(labels, values)):
        bar_height = _scale(float(value), maximum, plot_height)
        x = margin + i * slot + (slot - bar_width) / 2
        y = margin + plot_height - bar_height
        parts.append(
            f"<rect x='{x:.1f}' y='{y:.1f}' width='{bar_width:.1f}' "
            f"height='{bar_height:.1f}' fill='{color}'/>"
        )
        parts.append(
            f"<text x='{x + bar_width / 2:.1f}' y='{height - margin + 14}' "
            f"text-anchor='middle' font-size='9'>{escape(str(label))}</text>"
        )
    parts.append(
        f"<line x1='{margin}' y1='{margin + plot_height}' "
        f"x2='{width - margin}' y2='{margin + plot_height}' stroke='#333'/>"
    )
    parts.append("</svg>")
    return "".join(parts)


def stacked_bar_chart(
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 640,
    height: int = 300,
) -> str:
    """Stacked bars: one bar per category, one colored segment per series.

    This is the Figure 4 layout — error rate per attribute stacked by
    error source (Outlier / Missing Values / User Tagging / Others).
    """
    margin = 46
    plot_width = width - 2 * margin
    plot_height = height - 2 * margin - 20
    totals = [
        sum(values[i] for values in series.values())
        for i in range(len(categories))
    ]
    maximum = max(totals) if totals else 1.0
    n = max(1, len(categories))
    slot = plot_width / n
    bar_width = slot * 0.66
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        f"<text x='{width / 2}' y='16' text-anchor='middle' "
        f"font-size='13'>{escape(title)}</text>",
    ]
    for legend_index, name in enumerate(series):
        color = PALETTE[legend_index % len(PALETTE)]
        lx = margin + legend_index * 130
        parts.append(
            f"<rect x='{lx}' y='24' width='10' height='10' fill='{color}'/>"
        )
        parts.append(
            f"<text x='{lx + 14}' y='33' font-size='10'>{escape(name)}</text>"
        )
    base_y = margin + 20 + plot_height
    for i, category in enumerate(categories):
        x = margin + i * slot + (slot - bar_width) / 2
        stack_y = base_y
        for series_index, (name, values) in enumerate(series.items()):
            segment = _scale(float(values[i]), maximum, plot_height)
            stack_y -= segment
            color = PALETTE[series_index % len(PALETTE)]
            parts.append(
                f"<rect x='{x:.1f}' y='{stack_y:.1f}' width='{bar_width:.1f}' "
                f"height='{segment:.1f}' fill='{color}'/>"
            )
        parts.append(
            f"<text x='{x + bar_width / 2:.1f}' y='{base_y + 14}' "
            f"text-anchor='middle' font-size='9'>{escape(str(category))}</text>"
        )
    parts.append(
        f"<line x1='{margin}' y1='{base_y}' x2='{width - margin}' "
        f"y2='{base_y}' stroke='#333'/>"
    )
    parts.append("</svg>")
    return "".join(parts)


def line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 560,
    height: int = 280,
) -> str:
    """Multi-series line chart (Figure 3/5 style)."""
    margin = 46
    plot_width = width - 2 * margin
    plot_height = height - 2 * margin - 16
    all_values = [v for values in series.values() for v in values]
    maximum = max(all_values) if all_values else 1.0
    minimum = min(all_values + [0.0])
    span = max(maximum - minimum, 1e-12)
    x_min = min(x_values) if x_values else 0.0
    x_span = max((max(x_values) - x_min) if x_values else 1.0, 1e-12)

    def to_xy(x: float, y: float) -> tuple[float, float]:
        px = margin + (x - x_min) / x_span * plot_width
        py = margin + 16 + plot_height - (y - minimum) / span * plot_height
        return px, py

    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        f"<text x='{width / 2}' y='14' text-anchor='middle' "
        f"font-size='13'>{escape(title)}</text>",
    ]
    for series_index, (name, values) in enumerate(series.items()):
        color = PALETTE[series_index % len(PALETTE)]
        points = " ".join(
            f"{to_xy(x, y)[0]:.1f},{to_xy(x, y)[1]:.1f}"
            for x, y in zip(x_values, values)
        )
        parts.append(
            f"<polyline points='{points}' fill='none' stroke='{color}' "
            f"stroke-width='2'/>"
        )
        lx = margin + series_index * 130
        parts.append(
            f"<rect x='{lx}' y='22' width='10' height='10' fill='{color}'/>"
        )
        parts.append(
            f"<text x='{lx + 14}' y='31' font-size='10'>{escape(name)}</text>"
        )
        for x, y in zip(x_values, values):
            px, py = to_xy(x, y)
            parts.append(f"<circle cx='{px:.1f}' cy='{py:.1f}' r='2.5' fill='{color}'/>")
    base_y = margin + 16 + plot_height
    parts.append(
        f"<line x1='{margin}' y1='{base_y}' x2='{width - margin}' "
        f"y2='{base_y}' stroke='#333'/>"
    )
    for x in x_values:
        px, _ = to_xy(x, minimum)
        parts.append(
            f"<text x='{px:.1f}' y='{base_y + 14}' text-anchor='middle' "
            f"font-size='9'>{escape(str(x))}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)

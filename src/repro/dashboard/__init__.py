"""Dashboard rendering (Figure 2): HTML tabs + SVG charts."""

from .charts import PALETTE, bar_chart, line_chart, stacked_bar_chart
from .views import (
    render_dashboard,
    render_datasheet_tab,
    render_detection_tab,
    render_left_panel,
    render_overview_tab,
    render_profile_tab,
    render_quality_panel,
)

__all__ = [
    "PALETTE",
    "bar_chart",
    "line_chart",
    "render_dashboard",
    "render_datasheet_tab",
    "render_detection_tab",
    "render_left_panel",
    "render_overview_tab",
    "render_profile_tab",
    "render_quality_panel",
    "stacked_bar_chart",
]

"""Data ingestion: files, SQL databases, and the per-dataset workspace.

Mirrors §2 of the paper: an upload creates a folder named after the file
holding ``dirty.csv`` plus a ``delta`` subfolder for the version store, and
SQL tables are loaded through a connection and then treated identically to
uploaded files. MySQL/PostgreSQL/MSSQL are replaced by stdlib ``sqlite3``
(same connect/select/load path, no external server needed offline).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from pathlib import Path

from ..dataframe import (
    DataFrame,
    SpillStore,
    default_chunk_size,
    read_csv,
    read_csv_chunked,
    read_csv_stream,
    read_csv_text,
    spill_enabled_by_env,
    write_csv,
)
from .datasets import PRELOADED, load_clean

DIRTY_FILE_NAME = "dirty.csv"
DELTA_DIR_NAME = "delta"


@dataclass
class DatasetWorkspace:
    """Filesystem layout for one ingested dataset."""

    name: str
    root: Path

    @property
    def dirty_path(self) -> Path:
        return self.root / DIRTY_FILE_NAME

    @property
    def delta_path(self) -> Path:
        return self.root / DELTA_DIR_NAME

    def repaired_path(self, tag: str = "repaired") -> Path:
        return self.root / f"{tag}.csv"


class DataLoader:
    """Feeds input data into the dashboard controller (§2, "data loader").

    ``chunk_size`` switches :meth:`load` to the streaming chunked reader
    (:func:`~repro.dataframe.read_csv_chunked`): the dirty CSV is packed
    into a :class:`~repro.dataframe.ChunkedFrame` of that many rows per
    shard without materializing the full table as Python rows. When not
    given, the ``DATALENS_DEFAULT_CHUNK_SIZE`` environment override
    applies; when neither is set, loads stay monolithic.

    ``spill_budget`` / ``spill_dir`` additionally spill the packed
    shards to disk (see :mod:`repro.dataframe.spill`), bounding resident
    shard bytes during and after the load — this is the beyond-RAM
    ingestion path. Either setting implies chunked loads; when neither
    is given, the ``DATALENS_SPILL_BUDGET`` / ``DATALENS_SPILL_DIR``
    environment overrides apply.
    """

    def __init__(
        self,
        base_dir: str | Path,
        chunk_size: int | None = None,
        spill_budget: int | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        self.base_dir = Path(base_dir)
        self.base_dir.mkdir(parents=True, exist_ok=True)
        self.chunk_size = chunk_size
        self.spill_budget = spill_budget
        self.spill_dir = spill_dir

    def _effective_chunk_size(self) -> int | None:
        if self.chunk_size is not None:
            return self.chunk_size
        return default_chunk_size()

    def _spill_requested(self) -> bool:
        if self.spill_budget is not None or self.spill_dir is not None:
            return True
        return spill_enabled_by_env()

    def _spill_store(self) -> SpillStore | None:
        """A fresh store for one load when spilling is explicitly set.

        Returns None otherwise, letting ``read_csv_chunked`` apply the
        environment default.
        """
        if self.spill_budget is not None or self.spill_dir is not None:
            return SpillStore(
                budget_bytes=self.spill_budget, directory=self.spill_dir
            )
        return None

    # ------------------------------------------------------------------
    def workspace_for(self, dataset_name: str) -> DatasetWorkspace:
        root = self.base_dir / dataset_name
        root.mkdir(parents=True, exist_ok=True)
        (root / DELTA_DIR_NAME).mkdir(exist_ok=True)
        return DatasetWorkspace(name=dataset_name, root=root)

    def ingest_frame(self, name: str, frame: DataFrame) -> DatasetWorkspace:
        """Register an in-memory frame as an uploaded dataset."""
        workspace = self.workspace_for(name)
        write_csv(frame, workspace.dirty_path)
        return workspace

    def ingest_csv(self, path: str | Path, delimiter: str = ",") -> DatasetWorkspace:
        """Upload a CSV/TSV file; the dataset is named after the file stem."""
        source = Path(path)
        frame = read_csv(source, delimiter=delimiter)
        return self.ingest_frame(source.stem, frame)

    def ingest_csv_stream(self, name: str, lines) -> tuple[DatasetWorkspace, DataFrame]:
        """Single-pass streaming upload: persist *and* parse CSV lines.

        Every line read from ``lines`` (any iterable of text — the REST
        layer passes the request-body stream) is tee'd to the dataset's
        ``dirty.csv`` while the chunked reader packs it into shards
        under the loader's chunk/spill configuration, so the upload is
        written to the workspace and parsed without ever holding the
        full table. Returns the workspace together with the parsed
        frame so callers skip the usual re-load from disk.
        """
        workspace = self.workspace_for(name)
        chunk_size = self._effective_chunk_size()
        chunked = chunk_size is not None or self._spill_requested()
        with open(
            workspace.dirty_path, "w", newline="", encoding="utf-8"
        ) as sink:
            if chunked:
                def tee():
                    for line in lines:
                        sink.write(line)
                        yield line

                frame: DataFrame = read_csv_stream(
                    tee(), chunk_size=chunk_size, spill=self._spill_store()
                )
            else:
                # Monolithic configuration: small-data path, parse the
                # accumulated text exactly like ``load`` would.
                text = "".join(lines)
                sink.write(text)
                frame = read_csv_text(text)
        return workspace, frame

    def ingest_preloaded(self, name: str) -> DatasetWorkspace:
        """Load one of the datasets that ship with the dashboard."""
        if name not in PRELOADED:
            raise KeyError(f"unknown preloaded dataset {name!r}")
        return self.ingest_frame(name, load_clean(name))

    def ingest_sql(
        self,
        database: str | Path,
        table: str,
        query: str | None = None,
    ) -> DatasetWorkspace:
        """Load a table (or arbitrary SELECT) from a SQLite database."""
        if query is None:
            if not table.replace("_", "").isalnum():
                raise ValueError(f"suspicious table name {table!r}")
            query = f"SELECT * FROM {table}"
        with sqlite3.connect(str(database)) as connection:
            cursor = connection.execute(query)
            column_names = [desc[0] for desc in cursor.description]
            rows = cursor.fetchall()
        frame = DataFrame.from_rows(rows, column_names)
        return self.ingest_frame(table, frame)

    # ------------------------------------------------------------------
    def load(self, dataset_name: str) -> DataFrame:
        """Read back the dirty CSV of an ingested dataset.

        Returns a ChunkedFrame (streamed, sharded) when a chunk size is
        configured, else a monolithic DataFrame — bit-identical either
        way.
        """
        workspace = self.workspace_for(dataset_name)
        if not workspace.dirty_path.exists():
            raise FileNotFoundError(
                f"dataset {dataset_name!r} has no {DIRTY_FILE_NAME}"
            )
        chunk_size = self._effective_chunk_size()
        if chunk_size is not None or self._spill_requested():
            return read_csv_chunked(
                workspace.dirty_path,
                chunk_size=chunk_size,
                spill=self._spill_store(),
            )
        return read_csv(workspace.dirty_path)

    def list_datasets(self) -> list[str]:
        return sorted(
            p.name
            for p in self.base_dir.iterdir()
            if p.is_dir() and (p / DIRTY_FILE_NAME).exists()
        )

    def save_repaired(
        self, dataset_name: str, frame: DataFrame, tag: str = "repaired"
    ) -> Path:
        """Persist a repaired frame next to the dirty CSV (§3, data repair)."""
        workspace = self.workspace_for(dataset_name)
        path = workspace.repaired_path(tag)
        write_csv(frame, path)
        return path


def frame_to_sqlite(frame: DataFrame, database: str | Path, table: str) -> None:
    """Write a frame into a SQLite table (test/demo helper)."""
    if not table.replace("_", "").isalnum():
        raise ValueError(f"suspicious table name {table!r}")
    quoted = ", ".join(f'"{name}"' for name in frame.column_names)
    placeholders = ", ".join("?" for _ in frame.column_names)
    with sqlite3.connect(str(database)) as connection:
        connection.execute(f"DROP TABLE IF EXISTS {table}")
        connection.execute(f"CREATE TABLE {table} ({quoted})")
        connection.executemany(
            f"INSERT INTO {table} VALUES ({placeholders})",
            [frame.row_tuple(i) for i in range(frame.num_rows)],
        )
        connection.commit()

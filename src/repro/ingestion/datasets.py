"""Preloaded datasets.

The paper evaluates on the NASA airfoil self-noise dataset (regression) and
the Beers dataset (multi-class classification), and ships preloaded datasets
so users can explore the dashboard without their own data (§2). The real
files are not redistributable in this offline environment, so deterministic
synthetic generators reproduce each dataset's schema, size, value ranges,
and learnability. The substitution preserves behaviour because every
experiment only needs (a) the schema/type mix, (b) a learnable signal for
the downstream model, and (c) a realistic error profile — all of which are
generated here and injected by :mod:`repro.ingestion.errors`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..dataframe import DataFrame

#: Column names of the NASA airfoil self-noise dataset as used in Figure 4.
NASA_COLUMNS = [
    "Frequency",
    "Angle",
    "Chord Length",
    "Velocity",
    "Thickness",
    "Sound Pressure",
]

BEER_STYLES = [
    "American IPA",
    "American Pale Ale",
    "Stout",
    "Porter",
    "Lager",
    "Hefeweizen",
]

_BEER_NAME_PARTS = (
    ("Hoppy", "Golden", "Dark", "Red", "Wild", "Old", "Iron", "River", "Stone",
     "Lucky", "Broken", "Silent", "Burning", "Frozen", "Rolling", "Copper"),
    ("Trail", "Anvil", "Harvest", "Summit", "Canyon", "Meadow", "Harbor",
     "Bridge", "Lantern", "Barrel", "Wolf", "Raven", "Otter", "Bison",
     "Falcon", "Pine"),
)

_HOSPITAL_CITIES = [
    ("BIRMINGHAM", "AL", "35233"),
    ("DOTHAN", "AL", "36301"),
    ("BOAZ", "AL", "35957"),
    ("FLORENCE", "AL", "35631"),
    ("SHEFFIELD", "AL", "35660"),
    ("OPP", "AL", "36467"),
    ("LUVERNE", "AL", "36049"),
    ("CENTRE", "AL", "35960"),
    ("GADSDEN", "AL", "35903"),
    ("JACKSONVILLE", "FL", "32209"),
    ("MIAMI", "FL", "33125"),
    ("TAMPA", "FL", "33606"),
    ("ATLANTA", "GA", "30303"),
    ("SAVANNAH", "GA", "31404"),
    ("MACON", "GA", "31201"),
]

_HOSPITAL_CONDITIONS = [
    ("Heart Attack", "AMI-1", "Aspirin at arrival"),
    ("Heart Attack", "AMI-2", "Aspirin at discharge"),
    ("Heart Failure", "HF-1", "Discharge instructions"),
    ("Heart Failure", "HF-2", "Evaluation of LVS function"),
    ("Pneumonia", "PN-1", "Oxygenation assessment"),
    ("Pneumonia", "PN-2", "Pneumococcal vaccination"),
    ("Surgical Infection Prevention", "SIP-1", "Antibiotic within 1 hour"),
]

_ADULT_OCCUPATIONS = [
    "Tech-support", "Craft-repair", "Sales", "Exec-managerial",
    "Prof-specialty", "Handlers-cleaners", "Clerical", "Farming-fishing",
]
_ADULT_EDUCATION = [
    ("HS-grad", 9), ("Some-college", 10), ("Bachelors", 13),
    ("Masters", 14), ("Doctorate", 16), ("11th", 7),
]


def nasa(n_rows: int = 1503, seed: int = 7) -> DataFrame:
    """Synthetic NASA airfoil self-noise table (regression target last).

    The target ``Sound Pressure`` [dB] is a smooth nonlinear function of the
    five aerodynamic features plus Gaussian noise (sigma = 2.5 dB), which
    puts a well-tuned decision tree at an MSE near 10 on clean data —
    matching the ground-truth baseline magnitude in Figure 5a.
    """
    rng = np.random.default_rng(seed)
    frequency = np.exp(rng.uniform(np.log(200.0), np.log(20000.0), n_rows))
    frequency = np.round(frequency, 0)
    angle = np.round(rng.uniform(0.0, 22.2, n_rows), 1)
    chord = rng.choice(
        [0.0254, 0.0508, 0.1016, 0.1524, 0.2286, 0.3048], size=n_rows
    )
    velocity = rng.choice([31.7, 39.6, 55.5, 71.3], size=n_rows)
    thickness = np.round(
        0.0004 + 0.05 * rng.beta(1.4, 5.0, n_rows) * (1.0 + angle / 30.0), 6
    )
    noise = rng.normal(0.0, 2.5, n_rows)
    pressure = (
        155.0
        - 9.0 * np.log10(frequency)
        - 0.45 * angle
        - 28.0 * chord
        + 0.12 * velocity
        - 160.0 * thickness
        + noise
    )
    return DataFrame.from_dict(
        {
            "Frequency": [float(v) for v in frequency],
            "Angle": [float(v) for v in angle],
            "Chord Length": [float(v) for v in chord],
            "Velocity": [float(v) for v in velocity],
            "Thickness": [float(v) for v in thickness],
            "Sound Pressure": [float(np.round(v, 3)) for v in pressure],
        }
    )


def beers(n_rows: int = 2410, seed: int = 11) -> DataFrame:
    """Synthetic Beers table (multi-class ``style`` target).

    ``style`` is generated from ABV/IBU class prototypes with overlap, so a
    downstream classifier lands in the 0.7-0.8 macro-F1 band of Figure 5b.
    """
    rng = np.random.default_rng(seed)
    prototypes = {
        "American IPA": (6.8, 65.0),
        "American Pale Ale": (5.4, 38.0),
        "Stout": (7.5, 45.0),
        "Porter": (6.0, 30.0),
        "Lager": (4.7, 18.0),
        "Hefeweizen": (5.1, 14.0),
    }
    styles = rng.choice(BEER_STYLES, size=n_rows, p=[0.3, 0.2, 0.12, 0.1, 0.16, 0.12])
    abv, ibu = [], []
    for style in styles:
        base_abv, base_ibu = prototypes[str(style)]
        abv.append(float(np.round(max(0.5, rng.normal(base_abv, 0.42)), 3)))
        ibu.append(float(np.round(max(4.0, rng.normal(base_ibu, 5.0)), 1)))
    first = rng.choice(_BEER_NAME_PARTS[0], size=n_rows)
    second = rng.choice(_BEER_NAME_PARTS[1], size=n_rows)
    names = [f"{a} {b}" for a, b in zip(first, second)]
    return DataFrame.from_dict(
        {
            "id": list(range(1, n_rows + 1)),
            "name": names,
            "abv": abv,
            "ibu": ibu,
            "ounces": [float(v) for v in rng.choice([12.0, 16.0, 19.2, 24.0], n_rows)],
            "style": [str(v) for v in styles],
            "brewery_id": [int(v) for v in rng.integers(1, 120, n_rows)],
        }
    )


def hospital(n_rows: int = 1000, seed: int = 13) -> DataFrame:
    """Synthetic Hospital table — the classic FD-rich cleaning benchmark.

    Holds exact functional dependencies ``ZipCode -> City, State`` and
    ``ProviderNumber -> HospitalName, City`` used by the FD-discovery and
    NADEEF tests.
    """
    rng = np.random.default_rng(seed)
    n_providers = 40
    providers = []
    for i in range(n_providers):
        city, state, zipcode = _HOSPITAL_CITIES[i % len(_HOSPITAL_CITIES)]
        providers.append(
            {
                "ProviderNumber": 10001 + i,
                "HospitalName": f"{city.title()} Medical Center {i:02d}",
                "City": city,
                "State": state,
                "ZipCode": zipcode,
            }
        )
    rows = []
    for i in range(n_rows):
        provider = providers[int(rng.integers(n_providers))]
        condition, code, measure = _HOSPITAL_CONDITIONS[
            int(rng.integers(len(_HOSPITAL_CONDITIONS)))
        ]
        rows.append(
            {
                **provider,
                "Condition": condition,
                "MeasureCode": code,
                "MeasureName": measure,
                "Score": int(rng.integers(20, 100)),
            }
        )
    return DataFrame.from_records(rows)


def adult(n_rows: int = 1200, seed: int = 17) -> DataFrame:
    """Synthetic Adult-census-style table (binary ``income`` target)."""
    rng = np.random.default_rng(seed)
    ages = rng.integers(18, 75, n_rows)
    education = [
        _ADULT_EDUCATION[int(i)] for i in rng.integers(len(_ADULT_EDUCATION), size=n_rows)
    ]
    hours = rng.integers(15, 70, n_rows)
    occupations = rng.choice(_ADULT_OCCUPATIONS, size=n_rows)
    incomes = []
    for age, (_, edu_num), hour in zip(ages, education, hours):
        score = 0.05 * (age - 40) + 0.45 * (edu_num - 9) + 0.06 * (hour - 40)
        probability = 1.0 / (1.0 + np.exp(-(score - 0.8)))
        incomes.append(">50K" if rng.random() < probability else "<=50K")
    return DataFrame.from_dict(
        {
            "age": [int(v) for v in ages],
            "education": [name for name, _ in education],
            "education_num": [num for _, num in education],
            "occupation": [str(v) for v in occupations],
            "hours_per_week": [int(v) for v in hours],
            "income": incomes,
        }
    )


_AIRLINES = ["AA", "UA", "DL", "WN", "B6", "AS"]
_AIRPORTS = ["ATL", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "MIA"]


def flights(n_rows: int = 800, seed: int = 19) -> DataFrame:
    """Synthetic Flights table — the classic conflicting-sources benchmark.

    Holds the FD ``flight -> scheduled_dep, origin, destination`` (one
    schedule per flight number) while actual departure/arrival vary per
    row; delay minutes form a skewed numeric target.
    """
    rng = np.random.default_rng(seed)
    n_flights = 60
    schedule = []
    for i in range(n_flights):
        airline = _AIRLINES[int(rng.integers(len(_AIRLINES)))]
        origin, destination = rng.choice(_AIRPORTS, size=2, replace=False)
        hour = int(rng.integers(5, 23))
        minute = int(rng.choice([0, 15, 30, 45]))
        schedule.append(
            {
                "flight": f"{airline}-{1000 + i}",
                "airline": airline,
                "origin": str(origin),
                "destination": str(destination),
                "scheduled_dep": f"{hour:02d}:{minute:02d}",
            }
        )
    rows = []
    for _ in range(n_rows):
        plan = schedule[int(rng.integers(n_flights))]
        delay = max(0.0, rng.gamma(1.3, 14.0) - 6.0)
        hour, minute = map(int, plan["scheduled_dep"].split(":"))
        total = hour * 60 + minute + int(delay)
        rows.append(
            {
                **plan,
                "actual_dep": f"{(total // 60) % 24:02d}:{total % 60:02d}",
                "delay_minutes": float(np.round(delay, 1)),
            }
        )
    return DataFrame.from_records(rows)


#: Registry of preloaded datasets: name -> (generator, task, target column).
PRELOADED: dict[str, tuple[Callable[[], DataFrame], str, str]] = {
    "nasa": (nasa, "regression", "Sound Pressure"),
    "beers": (beers, "classification", "style"),
    "hospital": (hospital, "classification", "Condition"),
    "adult": (adult, "classification", "income"),
    "flights": (flights, "regression", "delay_minutes"),
}


def load_clean(name: str) -> DataFrame:
    """Instantiate one preloaded dataset by registry name."""
    if name not in PRELOADED:
        raise KeyError(f"unknown dataset {name!r}; have {sorted(PRELOADED)}")
    generator, _, _ = PRELOADED[name]
    return generator()


def dataset_task(name: str) -> tuple[str, str]:
    """Return (task, target column) for a preloaded dataset."""
    if name not in PRELOADED:
        raise KeyError(f"unknown dataset {name!r}; have {sorted(PRELOADED)}")
    _, task, target = PRELOADED[name]
    return task, target

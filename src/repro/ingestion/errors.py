"""Error injection with ground-truth masks.

The paper's measurements (Figures 3-5) need datasets whose true error cells
are known: detection F1 requires a ground-truth mask, and the iterative
cleaner's "Ground Truth" baseline requires the clean table. This module
corrupts a clean frame with the error families real cleaning benchmarks use
(REIN §1 of the paper) and records exactly which cells were touched.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from ..dataframe import Cell, DataFrame

# Error families. DISGUISED cells hold plausible-looking sentinel values
# (-1 / 0 / 99999 / "N/A") — the FAHES target and what users tag by hand.
# SUBTLE cells hold small in-range numeric shifts that no statistical
# detector can reliably separate — they cap achievable recall the way the
# hard errors of real benchmark datasets do (keeps Figure 3's F1 band low).
MISSING = "missing"
OUTLIER = "outlier"
DISGUISED = "disguised_missing"
TYPO = "typo"
SWAP = "category_swap"
SUBTLE = "subtle"
FD_VIOLATION = "fd_violation"

ERROR_TYPES = (MISSING, OUTLIER, DISGUISED, TYPO, SWAP, SUBTLE, FD_VIOLATION)

#: Sentinels used for disguised-missing injection.
NUMERIC_SENTINELS = (-1.0, 0.0, 99999.0)
STRING_SENTINELS = ("N/A", "unknown", "99999")


@dataclass
class DirtyDataset:
    """A corrupted dataset bundled with its clean version and error mask."""

    name: str
    task: str
    target: str
    clean: DataFrame
    dirty: DataFrame
    cells_by_type: dict[str, set[Cell]] = field(default_factory=dict)

    @property
    def mask(self) -> set[Cell]:
        """Every injected error cell."""
        cells: set[Cell] = set()
        for group in self.cells_by_type.values():
            cells |= group
        return cells

    @property
    def error_rate(self) -> float:
        total = self.dirty.num_rows * self.dirty.num_columns
        return len(self.mask) / total if total else 0.0

    def error_type_of(self, cell: Cell) -> str | None:
        for error_type, cells in self.cells_by_type.items():
            if cell in cells:
                return error_type
        return None

    def dirty_rows(self) -> set[int]:
        return {row for row, _ in self.mask}

    def column_error_rates(self) -> dict[str, float]:
        """Fraction of corrupted cells per column (Figure 4's y-axis)."""
        rates = {}
        mask = self.mask
        for name in self.dirty.column_names:
            hits = sum(1 for row, col in mask if col == name)
            rates[name] = hits / self.dirty.num_rows if self.dirty.num_rows else 0.0
        return rates


class ErrorInjector:
    """Deterministically corrupt a frame with configurable per-type rates.

    Rates are fractions of all cells in eligible columns. A per-column
    jitter multiplier (0.5-1.5) makes error density vary across columns the
    way Figure 4 shows for the NASA attributes.
    """

    def __init__(
        self,
        missing_rate: float = 0.0,
        outlier_rate: float = 0.0,
        disguised_rate: float = 0.0,
        typo_rate: float = 0.0,
        swap_rate: float = 0.0,
        subtle_rate: float = 0.0,
        columns: Iterable[str] | None = None,
        column_jitter: bool = True,
        seed: int = 0,
    ) -> None:
        rates = (
            missing_rate, outlier_rate, disguised_rate,
            typo_rate, swap_rate, subtle_rate,
        )
        for rate in rates:
            if not 0.0 <= rate < 1.0:
                raise ValueError("rates must be in [0, 1)")
        self.missing_rate = missing_rate
        self.outlier_rate = outlier_rate
        self.disguised_rate = disguised_rate
        self.typo_rate = typo_rate
        self.swap_rate = swap_rate
        self.subtle_rate = subtle_rate
        self.columns = set(columns) if columns is not None else None
        self.column_jitter = column_jitter
        self.seed = seed

    # ------------------------------------------------------------------
    def inject(self, clean: DataFrame) -> tuple[DataFrame, dict[str, set[Cell]]]:
        """Return (dirty copy, cells-by-error-type)."""
        rng = np.random.default_rng(self.seed)
        dirty = clean.copy()
        cells_by_type: dict[str, set[Cell]] = {t: set() for t in ERROR_TYPES}
        used: set[Cell] = set()
        for column_name in clean.column_names:
            if self.columns is not None and column_name not in self.columns:
                continue
            column = clean.column(column_name)
            jitter = rng.uniform(0.5, 1.5) if self.column_jitter else 1.0
            if column.is_numeric():
                plan = [
                    (MISSING, self.missing_rate),
                    (OUTLIER, self.outlier_rate),
                    (DISGUISED, self.disguised_rate),
                    (SUBTLE, self.subtle_rate),
                ]
            else:
                plan = [
                    (MISSING, self.missing_rate),
                    (TYPO, self.typo_rate),
                    (SWAP, self.swap_rate),
                    (DISGUISED, self.disguised_rate),
                    (SUBTLE, self.subtle_rate),
                ]
            for error_type, rate in plan:
                count = int(round(rate * jitter * clean.num_rows))
                if count == 0:
                    continue
                rows = self._pick_rows(rng, clean.num_rows, column_name, used, count)
                for row in rows:
                    self._corrupt(dirty, rng, row, column_name, error_type)
                    cells_by_type[error_type].add((row, column_name))
                    used.add((row, column_name))
        return dirty, {t: c for t, c in cells_by_type.items() if c}

    def _pick_rows(
        self,
        rng: np.random.Generator,
        n_rows: int,
        column_name: str,
        used: set[Cell],
        count: int,
    ) -> list[int]:
        available = [r for r in range(n_rows) if (r, column_name) not in used]
        count = min(count, len(available))
        if count == 0:
            return []
        picks = rng.choice(len(available), size=count, replace=False)
        return [available[int(i)] for i in picks]

    def _corrupt(
        self,
        dirty: DataFrame,
        rng: np.random.Generator,
        row: int,
        column_name: str,
        error_type: str,
    ) -> None:
        column = dirty.column(column_name)
        if error_type == MISSING:
            dirty.set_at(row, column_name, None)
            return
        if error_type == OUTLIER:
            values = np.array(
                [float(v) for v in column.non_missing() if not isinstance(v, str)]
            )
            center = float(np.mean(values)) if len(values) else 0.0
            spread = float(np.std(values)) if len(values) else 1.0
            spread = spread if spread > 0 else max(abs(center), 1.0)
            sign = -1.0 if rng.random() < 0.5 else 1.0
            magnitude = rng.uniform(5.0, 10.0)
            dirty.set_at(row, column_name, center + sign * magnitude * spread)
            return
        if error_type == DISGUISED:
            digest = zlib.crc32(column_name.encode("utf-8"))
            if column.is_numeric():
                sentinel: Any = NUMERIC_SENTINELS[digest % len(NUMERIC_SENTINELS)]
            else:
                sentinel = STRING_SENTINELS[digest % len(STRING_SENTINELS)]
            dirty.set_at(row, column_name, sentinel)
            return
        if error_type == SUBTLE:
            if column.is_numeric():
                # Replace with another legitimate value observed in the same
                # column: format- and domain-preserving, so no univariate
                # signal (frequency, pattern, z-score) can expose it.
                current = dirty.at(row, column_name)
                pool = [v for v in column.non_missing() if v != current]
                if pool:
                    dirty.set_at(
                        row, column_name, pool[int(rng.integers(len(pool)))]
                    )
            else:
                original = dirty.at(row, column_name)
                text = str(original) if original is not None else "x"
                dirty.set_at(row, column_name, _make_typo(text, rng))
            return
        if error_type == TYPO:
            original = dirty.at(row, column_name)
            text = str(original) if original is not None else "x"
            dirty.set_at(row, column_name, _make_typo(text, rng))
            return
        if error_type == SWAP:
            values = column.unique()
            current = dirty.at(row, column_name)
            others = [v for v in values if v != current]
            if others:
                dirty.set_at(row, column_name, others[int(rng.integers(len(others)))])
            return
        raise ValueError(f"unknown error type {error_type!r}")


def _make_typo(text: str, rng: np.random.Generator) -> str:
    """One of: swap adjacent chars, drop a char, duplicate a char, append x."""
    if len(text) < 2:
        return text + "x"
    op = int(rng.integers(3))
    index = int(rng.integers(len(text) - 1))
    if op == 0:
        chars = list(text)
        chars[index], chars[index + 1] = chars[index + 1], chars[index]
        return "".join(chars)
    if op == 1:
        return text[:index] + text[index + 1 :]
    return text[: index + 1] + text[index] + text[index + 1 :]


def inject_fd_violations(
    dirty: DataFrame,
    determinant: str,
    dependent: str,
    rate: float,
    seed: int = 0,
) -> set[Cell]:
    """Break ``determinant -> dependent`` by rewriting dependent cells.

    Mutates ``dirty`` in place and returns the corrupted cells.
    """
    rng = np.random.default_rng(seed)
    values = dirty.column(dependent).unique()
    count = int(round(rate * dirty.num_rows))
    cells: set[Cell] = set()
    if len(values) < 2 or count == 0:
        return cells
    rows = rng.choice(dirty.num_rows, size=min(count, dirty.num_rows), replace=False)
    for row in rows:
        current = dirty.at(int(row), dependent)
        others = [v for v in values if v != current]
        dirty.set_at(int(row), dependent, others[int(rng.integers(len(others)))])
        cells.add((int(row), dependent))
    return cells


#: Default corruption profile per preloaded dataset, tuned so that overall
#: cell error rates sit in the 5-15% band the paper's Figure 4 displays.
DEFAULT_PROFILES: Mapping[str, dict[str, Any]] = {
    "nasa": {
        "missing_rate": 0.035,
        "outlier_rate": 0.04,
        "disguised_rate": 0.025,
    },
    "beers": {
        "missing_rate": 0.04,
        "outlier_rate": 0.03,
        "disguised_rate": 0.02,
        "typo_rate": 0.04,
        "swap_rate": 0.05,
    },
    "hospital": {
        "missing_rate": 0.03,
        "typo_rate": 0.04,
        "swap_rate": 0.02,
        "disguised_rate": 0.02,
    },
    "adult": {
        "missing_rate": 0.04,
        "outlier_rate": 0.03,
        "typo_rate": 0.02,
        "swap_rate": 0.02,
    },
    "flights": {
        "missing_rate": 0.04,
        "outlier_rate": 0.03,
        "typo_rate": 0.03,
        "swap_rate": 0.03,
    },
}


def make_dirty(
    name: str,
    seed: int = 0,
    overrides: Mapping[str, Any] | None = None,
) -> DirtyDataset:
    """Load a preloaded dataset and corrupt it with its default profile."""
    from .datasets import dataset_task, load_clean

    clean = load_clean(name)
    task, target = dataset_task(name)
    profile = dict(DEFAULT_PROFILES.get(name, {"missing_rate": 0.05}))
    if overrides:
        profile.update(overrides)
    injector = ErrorInjector(seed=seed, **profile)
    dirty, cells_by_type = injector.inject(clean)
    return DirtyDataset(
        name=name,
        task=task,
        target=target,
        clean=clean,
        dirty=dirty,
        cells_by_type=cells_by_type,
    )

"""DataLens reproduction — ML-oriented tabular data quality management.

Reproduces "DataLens: ML-Oriented Interactive Tabular Data Quality
Dashboard" (EDBT 2025) as a pure-Python library: profiling, FD discovery,
ten error-detection tools, three repair tools, iterative cleaning via
hyperparameter search, user-in-the-loop labeling/tagging/rules,
DataSheets, experiment tracking, and dataset versioning.

Quickstart::

    from repro import DataLens

    lens = DataLens("workspace")
    session = lens.ingest_preloaded("nasa")
    session.profile()
    session.run_detection(["iqr", "sd", "mv_detector", "fahes"])
    repaired = session.run_repair("ml_imputer")
    session.save_datasheet()
"""

from .core import (
    DataLens,
    DataLensSession,
    DataSheet,
    IterativeCleaner,
    IterativeCleaningResult,
    LabelingSession,
    SimulatedUser,
    TagRegistry,
)
from .dataframe import DataFrame

__version__ = "1.0.0"

__all__ = [
    "DataFrame",
    "DataLens",
    "DataLensSession",
    "DataSheet",
    "IterativeCleaner",
    "IterativeCleaningResult",
    "LabelingSession",
    "SimulatedUser",
    "TagRegistry",
    "__version__",
]

"""DataSheets — JSON records that make cleaning runs reproducible (§5).

A DataSheet compiles the dataset's name and paths, its shape, the
detection tools applied (with configurations), the number of erroneous
cells found, the repair tools executed, the rules in force, quality
metrics, the Delta versions before detection and after repair, and any
iterative-cleaning hyperparameters. ``replay`` rebuilds the exact tools
from the registry and reruns the pipeline on a frame.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..dataframe import DataFrame
from ..detection import DetectionContext, merge_results
from ..fd import FunctionalDependency
from .registry import make_detector, make_repairer

SCHEMA_VERSION = 1


@dataclass
class DataSheet:
    """Serializable record of one detect-and-repair pipeline execution."""

    dataset_name: str
    dirty_path: str = ""
    repaired_path: str = ""
    num_rows: int = 0
    num_columns: int = 0
    detection_tools: list[dict[str, Any]] = field(default_factory=list)
    num_erroneous_cells: int = 0
    repair_tools: list[dict[str, Any]] = field(default_factory=list)
    rules: list[dict[str, Any]] = field(default_factory=list)
    tagged_values: list[str] = field(default_factory=list)
    quality_before: dict[str, float] = field(default_factory=dict)
    quality_after: dict[str, float] = field(default_factory=dict)
    version_before_detection: int | None = None
    version_after_repair: int | None = None
    hyperparameters: dict[str, Any] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "dataset": {
                "name": self.dataset_name,
                "dirty_path": self.dirty_path,
                "repaired_path": self.repaired_path,
                "num_rows": self.num_rows,
                "num_columns": self.num_columns,
            },
            "detection": {
                "tools": self.detection_tools,
                "num_erroneous_cells": self.num_erroneous_cells,
            },
            "repair": {"tools": self.repair_tools},
            "rules": self.rules,
            "tagged_values": self.tagged_values,
            "quality": {
                "before": self.quality_before,
                "after": self.quality_after,
            },
            "versions": {
                "before_detection": self.version_before_detection,
                "after_repair": self.version_after_repair,
            },
            "hyperparameters": self.hyperparameters,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DataSheet":
        dataset = data.get("dataset", {})
        detection = data.get("detection", {})
        quality = data.get("quality", {})
        versions = data.get("versions", {})
        return cls(
            dataset_name=dataset.get("name", "unknown"),
            dirty_path=dataset.get("dirty_path", ""),
            repaired_path=dataset.get("repaired_path", ""),
            num_rows=int(dataset.get("num_rows", 0)),
            num_columns=int(dataset.get("num_columns", 0)),
            detection_tools=list(detection.get("tools", [])),
            num_erroneous_cells=int(detection.get("num_erroneous_cells", 0)),
            repair_tools=list(data.get("repair", {}).get("tools", [])),
            rules=list(data.get("rules", [])),
            tagged_values=list(data.get("tagged_values", [])),
            quality_before=dict(quality.get("before", {})),
            quality_after=dict(quality.get("after", {})),
            version_before_detection=versions.get("before_detection"),
            version_after_repair=versions.get("after_repair"),
            hyperparameters=dict(data.get("hyperparameters", {})),
            created_at=float(data.get("created_at", time.time())),
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "DataSheet":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    # ------------------------------------------------------------------
    def replay(
        self, frame: DataFrame, context: DetectionContext | None = None
    ) -> DataFrame:
        """Re-execute the recorded pipeline on ``frame``.

        Detectors and repairers are rebuilt from their serialized configs;
        rules recorded in the sheet are restored into the context so
        rule-based tools behave identically.
        """
        context = context or DetectionContext()
        if not context.rules and self.rules:
            context.rules = [
                FunctionalDependency.from_dict(rule) for rule in self.rules
            ]
        results = []
        for spec in self.detection_tools:
            detector = make_detector(spec["name"], **spec.get("config", {}))
            results.append(detector.detect(frame, context))
        cells = merge_results(results)
        repaired = frame
        for spec in self.repair_tools:
            repairer = make_repairer(spec["name"], **spec.get("config", {}))
            repaired = repairer.repair(repaired, cells).apply_to(repaired)
        return repaired

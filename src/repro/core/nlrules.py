"""Natural-language rule definition (paper future work 1).

Parses plain-English quality rules into the engine's rule objects, so
domain experts can type constraints instead of composing determinant /
dependent pickers:

    "ZipCode determines City"              -> FunctionalDependency
    "City, State -> ZipCode"               -> FunctionalDependency
    "age between 0 and 120"                -> range ValueRule
    "abv is positive"                      -> sign ValueRule
    "state in {AL, FL, GA}"                -> domain ValueRule
    "ibu is not 99999"                     -> forbidden-value ValueRule

Column names are resolved case-insensitively against the target frame and
may be quoted for names containing spaces ("'Chord Length' is positive").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from ..dataframe import DataFrame
from ..fd import FunctionalDependency, ValueRule


class RuleParseError(ValueError):
    """The sentence could not be interpreted as a rule."""


@dataclass
class ParsedRule:
    """Outcome of parsing one sentence."""

    text: str
    kind: str  # "fd" | "range" | "sign" | "domain" | "forbidden"
    rule: Any  # FunctionalDependency or ValueRule

    def describe(self) -> str:
        return f"{self.kind}: {self.rule}"


_QUOTED = r"'[^']+'|\"[^\"]+\""
_NAME = rf"(?:{_QUOTED}|[A-Za-z_][\w ]*?)"

_FD_PATTERNS = (
    re.compile(
        rf"^(?P<lhs>{_NAME}(?:\s*,\s*{_NAME})*)\s+determines?\s+(?P<rhs>{_NAME})$",
        re.IGNORECASE,
    ),
    re.compile(
        rf"^(?P<lhs>{_NAME}(?:\s*,\s*{_NAME})*)\s*->\s*(?P<rhs>{_NAME})$",
        re.IGNORECASE,
    ),
    re.compile(
        rf"^(?P<rhs>{_NAME})\s+depends\s+on\s+(?P<lhs>{_NAME}(?:\s*,\s*{_NAME})*)$",
        re.IGNORECASE,
    ),
)

_RANGE_PATTERN = re.compile(
    rf"^(?P<col>{_NAME})\s+(?:is\s+)?between\s+(?P<low>-?[\d.]+)\s+and\s+"
    r"(?P<high>-?[\d.]+)$",
    re.IGNORECASE,
)

_SIGN_PATTERN = re.compile(
    rf"^(?P<col>{_NAME})\s+is\s+(?P<sign>positive|negative|non-negative|"
    r"non-positive)$",
    re.IGNORECASE,
)

_DOMAIN_PATTERN = re.compile(
    rf"^(?P<col>{_NAME})\s+(?:is\s+)?in\s+\{{(?P<values>[^}}]+)\}}$",
    re.IGNORECASE,
)

_FORBIDDEN_PATTERN = re.compile(
    rf"^(?P<col>{_NAME})\s+is\s+not\s+(?P<value>.+)$",
    re.IGNORECASE,
)


def _strip_quotes(name: str) -> str:
    name = name.strip()
    if len(name) >= 2 and name[0] == name[-1] and name[0] in "'\"":
        return name[1:-1]
    return name


def _resolve_column(name: str, frame: DataFrame) -> str:
    """Case-insensitive column lookup with a helpful error."""
    wanted = _strip_quotes(name).strip().lower()
    for column in frame.column_names:
        if column.lower() == wanted:
            return column
    raise RuleParseError(
        f"unknown column {name.strip()!r}; available: {frame.column_names}"
    )


def _parse_literal(token: str) -> Any:
    token = _strip_quotes(token.strip())
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def parse_rule(text: str, frame: DataFrame) -> ParsedRule:
    """Parse one sentence into a rule bound to ``frame``'s columns."""
    sentence = text.strip().rstrip(".")
    if not sentence:
        raise RuleParseError("empty rule text")

    for pattern in _FD_PATTERNS:
        match = pattern.match(sentence)
        if match:
            determinants = tuple(
                _resolve_column(part, frame)
                for part in re.split(r"\s*,\s*", match.group("lhs"))
            )
            dependent = _resolve_column(match.group("rhs"), frame)
            return ParsedRule(
                text=text,
                kind="fd",
                rule=FunctionalDependency(determinants, dependent),
            )

    match = _RANGE_PATTERN.match(sentence)
    if match:
        column = _resolve_column(match.group("col"), frame)
        low = float(match.group("low"))
        high = float(match.group("high"))
        if high < low:
            raise RuleParseError("range upper bound below lower bound")
        return ParsedRule(
            text=text,
            kind="range",
            rule=ValueRule(
                name=f"{column}_between_{low}_{high}",
                columns=(column,),
                check=lambda row, c=column, lo=low, hi=high: (
                    row[c] is None or lo <= float(row[c]) <= hi
                ),
                description=f"{column} in [{low}, {high}]",
            ),
        )

    match = _SIGN_PATTERN.match(sentence)
    if match:
        column = _resolve_column(match.group("col"), frame)
        sign = match.group("sign").lower()
        comparators = {
            "positive": lambda v: v > 0,
            "negative": lambda v: v < 0,
            "non-negative": lambda v: v >= 0,
            "non-positive": lambda v: v <= 0,
        }
        compare = comparators[sign]
        return ParsedRule(
            text=text,
            kind="sign",
            rule=ValueRule(
                name=f"{column}_{sign.replace('-', '_')}",
                columns=(column,),
                check=lambda row, c=column, cmp=compare: (
                    row[c] is None or cmp(float(row[c]))
                ),
                description=f"{column} is {sign}",
            ),
        )

    match = _DOMAIN_PATTERN.match(sentence)
    if match:
        column = _resolve_column(match.group("col"), frame)
        values = {
            _parse_literal(part)
            for part in match.group("values").split(",")
            if part.strip()
        }
        if not values:
            raise RuleParseError("empty domain set")
        return ParsedRule(
            text=text,
            kind="domain",
            rule=ValueRule(
                name=f"{column}_domain",
                columns=(column,),
                check=lambda row, c=column, vs=values: (
                    row[c] is None or row[c] in vs
                ),
                description=f"{column} in {sorted(map(str, values))}",
            ),
        )

    match = _FORBIDDEN_PATTERN.match(sentence)
    if match:
        column = _resolve_column(match.group("col"), frame)
        forbidden = _parse_literal(match.group("value"))
        return ParsedRule(
            text=text,
            kind="forbidden",
            rule=ValueRule(
                name=f"{column}_not_{forbidden}",
                columns=(column,),
                check=lambda row, c=column, bad=forbidden: row[c] != bad,
                description=f"{column} must not equal {forbidden!r}",
            ),
        )

    raise RuleParseError(f"could not interpret rule text: {text!r}")


def parse_rules(sentences: list[str], frame: DataFrame) -> list[ParsedRule]:
    """Parse a batch of sentences; raises on the first invalid one."""
    return [parse_rule(sentence, frame) for sentence in sentences]

"""Content-addressed artifact cache for session-wide analysis reuse.

DataLens is an interactive loop: profile → detect → repair → re-profile
→ re-score, and every stage re-derives artifacts (per-column profiles,
histograms, correlation pairs, missing tables, detection masks, stripped
partitions, quality metrics) from the same column data. The
:class:`ArtifactStore` makes that reuse explicit: every artifact is
keyed by the *content fingerprints* of the columns it was computed from
(:meth:`repro.dataframe.Column.fingerprint`), an artifact ``kind``
string, and the kernel parameters.

Artifact / fingerprint contract
-------------------------------
* **Keys are content, not identity.** ``(kind, fingerprints, params)``
  names the value of a pure function of column content. Two frames with
  equal columns — a Delta version re-read from disk, a repaired copy's
  untouched columns, a chunked view of a monolithic frame — share
  artifacts automatically; no consumer tracks which frame object
  computed what.
* **Entries never go stale.** Mutation (``set`` / ``set_many`` /
  ``set_cells`` / ``apply_patches``) changes the touched column's
  fingerprint, so new lookups simply miss and recompute; entries for the
  old content remain valid (revisiting a Delta version re-profiles
  straight from cache) until the LRU bound evicts them. Explicit
  invalidation is therefore a memory decision, not a correctness one.
* **What dirties what.** A patch to column *C* dirties: C's per-column
  artifacts (profile section, histogram, validity, detection mask,
  single-column partition, spearman ranks), every *pairwise* artifact
  with C on either side (correlation/association pairs, multi-column
  partitions and FD errors naming C), and every *frame-level* artifact
  (duplicate rows, missing tables, consistency over rules touching C).
  Artifacts over the other columns and pairs keep hitting — that is the
  incremental re-profile path the dashboard's repair loop rides on.
* **Chunked semantics.** Fingerprints are computed over the dense
  logical content, so chunk layout is invisible: artifacts computed from
  a monolithic frame are served to its chunked twin and vice versa.
  This is sound because the chunked kernels are bit-identical to the
  monolithic ones by construction (see :mod:`repro.dataframe.chunked`).
* **Cached results are bit-identical to cold results.** The store only
  ever returns what a kernel produced for identical input content;
  consumers get deep copies of mutable artifacts (``copy=True`` puts) so
  downstream mutation cannot corrupt the cache.

Artifact kinds are namespaced by producer: ``profile:*`` (per-column
sections, histograms, duplicates, missing tables), ``corr:*`` (pairwise
correlation/association), ``detect:*`` (per-column detection masks),
``quality:*`` / ``fd:*`` (validity, violation sets, partitions), and —
since the vectorized repair-proposal engine — ``repair:tokens``
(per-column integer token codes keyed by one column fingerprint) and
``repair:cooccurrence`` (the fitted co-occurrence model keyed by every
column fingerprint), which let a detect → repair cycle over
content-identical frames tokenize and fit once.

Bounding
--------
The LRU bound is two-dimensional: ``max_entries`` caps the entry count
and ``max_bytes`` (optional; also settable via the
``DATALENS_ARTIFACT_CACHE_BYTES`` environment variable, with ``k`` /
``m`` / ``g`` suffixes) caps the *estimated* resident bytes — entries
are size-weighted via :func:`estimate_artifact_bytes` (numpy ``nbytes``
plus a recursive container estimate), so one row-scaled artifact (rank
vector, stripped partition) counts for what it holds. Eviction pops
least-recently-used entries until both bounds are satisfied; the
newest entry always survives, so a single artifact larger than
``max_bytes`` is cached (one-entry floor) rather than rejected.

Disabling
---------
Setting ``DATALENS_ARTIFACT_CACHE=0`` (or ``false`` / ``off`` / ``no``)
in the environment makes every store constructed without an explicit
``enabled`` flag a no-op: gets always miss, puts are dropped, and every
consumer runs its cold path — CI runs the full suite in both modes.
"""

from __future__ import annotations

import copy as _copy
import errno as _errno
import logging
import os
import sys
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable

import numpy as np

from ..dataframe.spill import parse_byte_size
from . import faults as _faults

_logger = logging.getLogger(__name__)

#: Environment variable gating the cache. Any value other than the
#: falsey tokens below (default: unset = enabled) keeps caching on.
ARTIFACT_CACHE_ENV = "DATALENS_ARTIFACT_CACHE"

#: Environment variable holding the default byte bound for stores
#: constructed without an explicit ``max_bytes``.
ARTIFACT_CACHE_BYTES_ENV = "DATALENS_ARTIFACT_CACHE_BYTES"

_FALSEY = {"0", "false", "off", "no"}

#: Default entry bound: generous for interactive sessions (a 20-column
#: profile run populates well under 300 entries) while keeping pathological
#: loops (iterative cleaning over hundreds of candidate frames) bounded.
DEFAULT_MAX_ENTRIES = 4096


def cache_enabled_by_env() -> bool:
    """Whether the environment allows artifact caching (default: yes)."""
    raw = os.environ.get(ARTIFACT_CACHE_ENV, "").strip().lower()
    return raw not in _FALSEY


def cache_max_bytes_from_env() -> int | None:
    """Byte bound requested via the environment, or None when unset."""
    raw = os.environ.get(ARTIFACT_CACHE_BYTES_ENV, "").strip()
    if not raw:
        return None
    return parse_byte_size(raw, ARTIFACT_CACHE_BYTES_ENV)


def estimate_artifact_bytes(value: Any) -> int:
    """Best-effort recursive byte estimate of one cached artifact.

    Numpy arrays count their buffer (``nbytes``); containers recurse
    over their items; arbitrary objects (stripped partitions, fitted
    co-occurrence models, report sections) recurse over their attribute
    dicts and slots. Shared sub-objects are counted once — this sizes a
    cache *entry*, approximating what evicting it would free.
    """
    return _estimate_bytes(value, set())


def _estimate_bytes(value: Any, seen: set[int]) -> int:
    if value is None or isinstance(value, (bool, int, float, complex)):
        return sys.getsizeof(value)
    if isinstance(value, (str, bytes, bytearray)):
        return sys.getsizeof(value)
    if isinstance(value, np.generic):
        return sys.getsizeof(value)
    marker = id(value)
    if marker in seen:
        return 0
    seen.add(marker)
    if isinstance(value, np.ndarray):
        total = sys.getsizeof(value)
        if not value.flags.owndata:
            total += int(value.nbytes)  # views: count the data they pin
        if value.dtype == object:
            total += sum(
                _estimate_bytes(item, seen) for item in value.flat
            )
        return total
    if isinstance(value, dict):
        return sys.getsizeof(value) + sum(
            _estimate_bytes(key, seen) + _estimate_bytes(item, seen)
            for key, item in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sys.getsizeof(value) + sum(
            _estimate_bytes(item, seen) for item in value
        )
    total = sys.getsizeof(value)
    state = getattr(value, "__dict__", None)
    if state:
        total += sum(
            _estimate_bytes(key, seen) + _estimate_bytes(item, seen)
            for key, item in state.items()
        )
    for klass in type(value).__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for slot in slots or ():
            try:
                total += _estimate_bytes(getattr(value, slot), seen)
            except AttributeError:
                continue
    return total


class ArtifactCapacityError(RuntimeError):
    """The artifact cache's backing storage is out of space.

    Raised by :meth:`ArtifactStore.put` when a (real or injected) ENOSPC
    surfaces while persisting an artifact. :meth:`ArtifactStore.cached`
    absorbs it — the computed value is still returned, the cache just
    could not keep it — so sessions degrade to cold recomputation
    instead of failing requests.
    """


Key = tuple[str, tuple[str, ...], tuple]


class ArtifactStore:
    """Bounded LRU cache of analysis artifacts keyed by column content.

    The store is deliberately duck-typed by its consumers (profiling,
    detection, quality, FD discovery take ``store=None``-defaulted
    parameters and only call :meth:`get` / :meth:`put`), so analysis
    modules carry no import dependency on the core package.

    Thread safety: :meth:`get` / :meth:`put` / :meth:`stats` /
    :meth:`clear` hold an internal lock, so one session store can be
    shared by the threaded REST server and the thread-parallel profile
    path. The lock is never held while an artifact is *computed* —
    concurrent misses on one key may compute twice and last-put wins,
    which is harmless because values are pure functions of the key.

    The bound is entry-count *and* byte aware: ``max_entries`` caps how
    many artifacts stay resident, ``max_bytes`` (default: the
    ``DATALENS_ARTIFACT_CACHE_BYTES`` environment override, else
    unbounded) caps their summed :func:`estimate_artifact_bytes` sizes —
    the size-weighted eviction that keeps long sessions over very large
    frames bounded by memory, not by entry count. The most recent entry
    is never evicted by the byte bound (one-entry floor).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        enabled: bool | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is None:
            max_bytes = cache_max_bytes_from_env()
        elif max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.enabled = cache_enabled_by_env() if enabled is None else bool(enabled)
        #: key -> (value, deepcopy_on_get, estimated_bytes)
        self._entries: OrderedDict[Key, tuple[Any, bool, int]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.total_bytes = 0
        self.evicted_bytes = 0
        self.get_errors = 0
        self.put_errors = 0
        self.capacity_errors = 0
        self.transient_retries = 0
        self._degradation_logged = False
        self._by_kind: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def make_key(
        kind: str, fingerprints: Iterable[str], params: Iterable[Any] = ()
    ) -> Key:
        """Canonical key tuple; ``params`` must be hashable values."""
        return (str(kind), tuple(fingerprints), tuple(params))

    def _kind_stats(self, kind: str) -> dict[str, int]:
        stats = self._by_kind.get(kind)
        if stats is None:
            stats = self._by_kind[kind] = {"hits": 0, "misses": 0, "puts": 0}
        return stats

    def _record_degradation(
        self, counter: str, operation: str, error: BaseException
    ) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)
            first = not self._degradation_logged
            self._degradation_logged = True
        if first:
            _logger.warning(
                "artifact cache %s failed (%s: %s); degrading to cold "
                "recomputation — further failures for this store are "
                "only counted in stats()",
                operation,
                type(error).__name__,
                error,
            )

    # ------------------------------------------------------------------
    def get(
        self,
        kind: str,
        fingerprints: Iterable[str],
        params: Iterable[Any] = (),
    ) -> tuple[bool, Any]:
        """Look up an artifact: ``(True, value)`` on hit, else ``(False, None)``.

        Hits refresh LRU recency. Values stored with ``copy=True`` come
        back as deep copies, so callers may mutate them freely.

        Fault site ``artifact.get``: transient faults are absorbed by
        internal retries (results and counters stay identical to a
        fault-free run); a persistent fault degrades the lookup to a
        miss — counted in ``get_errors``, never surfaced to callers.
        """
        if not self.enabled:
            return False, None
        try:
            retried = _faults.absorb_transient("artifact.get")
        except BaseException as error:  # noqa: BLE001 — degrade, don't fail
            self._record_degradation("get_errors", "lookup", error)
            return False, None
        if retried:
            with self._lock:
                self.transient_retries += retried
        key = self.make_key(kind, fingerprints, params)
        with self._lock:
            entry = self._entries.get(key)
            kind_stats = self._kind_stats(key[0])
            if entry is None:
                self.misses += 1
                kind_stats["misses"] += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            kind_stats["hits"] += 1
            value, deep, _ = entry
        # Deep copies happen outside the lock — only the (immutable-by-
        # convention) stored reference is read under it.
        return True, (_copy.deepcopy(value) if deep else value)

    def put(
        self,
        kind: str,
        fingerprints: Iterable[str],
        params: Iterable[Any],
        value: Any,
        copy: bool = False,
    ) -> None:
        """Publish an artifact; evicts least-recently-used beyond the bound.

        ``copy=True`` snapshots the value on the way in *and* hands deep
        copies back out — use it for mutable artifacts (dicts, lists).
        Immutable artifacts (floats, tuples, read-mostly partitions) skip
        the copies.

        Fault site ``artifact.put``: transient faults are absorbed by
        internal retries; an ENOSPC/EDQUOT raises the typed
        :class:`ArtifactCapacityError` naming the cache; any other
        persistent fault drops the put (counted in ``put_errors``) —
        the cache is best-effort, the computed value is never lost.
        """
        if not self.enabled:
            return
        try:
            retried = _faults.absorb_transient("artifact.put")
        except OSError as error:
            if error.errno in (_errno.ENOSPC, getattr(_errno, "EDQUOT", -1)):
                with self._lock:
                    self.put_errors += 1
                    self.capacity_errors += 1
                raise ArtifactCapacityError(
                    f"artifact cache (max_entries={self.max_entries}, "
                    f"max_bytes={self.max_bytes}) is out of space while "
                    f"storing a {kind!r} artifact: {error}"
                ) from error
            self._record_degradation("put_errors", "publish", error)
            return
        except BaseException as error:  # noqa: BLE001 — degrade, don't fail
            self._record_degradation("put_errors", "publish", error)
            return
        if retried:
            with self._lock:
                self.transient_retries += retried
        key = self.make_key(kind, fingerprints, params)
        snapshot = _copy.deepcopy(value) if copy else value
        # Size (and snapshot) outside the lock — only bookkeeping inside.
        nbytes = estimate_artifact_bytes(snapshot)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.total_bytes -= previous[2]
            self._entries[key] = (snapshot, copy, nbytes)
            self.total_bytes += nbytes
            self.puts += 1
            self._kind_stats(key[0])["puts"] += 1
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and self.total_bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                _, (_, _, evicted_nbytes) = self._entries.popitem(last=False)
                self.total_bytes -= evicted_nbytes
                self.evictions += 1
                self.evicted_bytes += evicted_nbytes

    def cached(
        self,
        kind: str,
        fingerprints: Iterable[str],
        params: Iterable[Any],
        compute: Callable[[], Any],
        copy: bool = False,
    ) -> Any:
        """Get-or-compute convenience wrapper around :meth:`get`/:meth:`put`.

        Thread-safe by composition: it touches shared state only through
        :meth:`get` and :meth:`put` (each locking internally) and never
        holds the lock across ``compute()`` — concurrent misses may
        compute twice and last-put wins, per the class contract.
        """
        fingerprints = tuple(fingerprints)
        params = tuple(params)
        hit, value = self.get(kind, fingerprints, params)
        if hit:
            return value
        value = compute()
        try:
            self.put(kind, fingerprints, params, value, copy=copy)
        except ArtifactCapacityError as error:
            # The artifact was computed; losing the cache entry is a
            # performance problem, not a correctness one. put() already
            # counted the capacity error.
            with self._lock:
                first = not self._degradation_logged
                self._degradation_logged = True
            if first:
                _logger.warning(
                    "artifact cache out of space; serving uncached "
                    "results (%s)",
                    error,
                )
        return value

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        """Disabled stores are falsy: consumers normalize them to None.

        Every consumer entry point runs ``store = store if store else
        None``, so a disabled store takes the *true* cold path — no
        fingerprint hashing, no key construction — exactly as if no
        store were passed.
        """
        return self.enabled

    def __len__(self) -> int:
        # Taken under the lock: len(OrderedDict) is atomic in CPython,
        # but the store promises thread safety, not CPython internals.
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def stats(self) -> dict[str, Any]:
        """Counters for the dashboard / REST cache endpoint."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "total_bytes": self.total_bytes,
                "evicted_bytes": self.evicted_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "get_errors": self.get_errors,
                "put_errors": self.put_errors,
                "capacity_errors": self.capacity_errors,
                "transient_retries": self.transient_retries,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "by_kind": {
                    kind: dict(counts)
                    for kind, counts in sorted(self._by_kind.items())
                },
            }

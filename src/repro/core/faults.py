"""Deterministic fault injection for chaos testing the pipeline.

Production failures — a flaky disk read, a full filesystem, a slow
network peer, an overloaded worker — are inputs the system must handle,
not surprises. This module makes them *first-class test inputs*: named
**injection sites** are wired into the storage and serving layers
(:mod:`repro.dataframe.spill`, :mod:`repro.core.artifacts`,
:mod:`repro.dataframe.io`, :mod:`repro.api.jobs`,
:mod:`repro.api.http`), and a **fault plan** decides, deterministically,
which site invocations raise an error or stall.

Injection sites
---------------
A site is a dotted name fired via :func:`maybe_fire` at the exact point
a real fault would surface:

==================  ====================================================
Site                Fired when
==================  ====================================================
``spill.write``     a shard pair is serialized to the spill directory
``spill.read``      a spilled shard is read back (cache miss)
``spill.evict``     the resident LRU evicts shards to make room
``artifact.get``    an artifact-cache lookup runs
``artifact.put``    an artifact-cache publish runs
``ingest.chunk``    the streaming CSV reader packs one chunk of rows
``job.run``         a queued job attempt starts executing
``http.write``      an HTTP response is about to be written
==================  ====================================================

Spec grammar (``DATALENS_FAULT_INJECT``)
----------------------------------------
A plan is one or more rules separated by ``;``; each rule is
``key=value`` fields separated by ``,``::

    site=<fnmatch pattern>   required — e.g. spill.read or spill.*
    error=<name>             exception to raise: transient | fault |
                             oserror | enospc | timeout | connection
    prob=<float 0..1>        fire probability per match (default 1.0,
                             drawn from a per-rule seeded RNG)
    count=<int>              fire at most N times (default: unlimited)
    after=<int>              skip the first N matching invocations
    latency=<seconds>        sleep instead of / in addition to raising
    seed=<int>               RNG seed for ``prob`` draws (default 0)

Example — 5%% transient faults on every spill read, plus one injected
disk-full on the third artifact publish::

    DATALENS_FAULT_INJECT='site=spill.read,error=transient,prob=0.05,seed=7;site=artifact.put,error=enospc,after=2,count=1'

Activation is either the environment variable (re-read on every fire,
so ``monkeypatch.setenv`` works) or the :func:`inject` context manager,
which composes with — and stacks on top of — the environment plan.

Transient vs. persistent faults
-------------------------------
``error=transient`` raises :class:`TransientFaultError` — the injected
stand-in for faults that succeed on retry (EINTR-ish I/O hiccups,
connection resets, worker blips). :func:`is_transient` classifies them
(plus ``ConnectionError`` / ``TimeoutError`` / anything with a truthy
``transient`` attribute), and the storage layers *absorb* them: spill
and artifact operations retry transient faults internally
(:func:`with_transient_retries`, bounded by ``DATALENS_IO_RETRIES``),
so low-probability transient injection leaves results — and cache
counters — bit-identical to a fault-free run. Persistent faults
(``enospc``, checksum corruption) are never retried; they surface as
typed errors (:class:`~repro.dataframe.spill.SpillCapacityError`,
:class:`~repro.core.artifacts.ArtifactCapacityError`,
:class:`~repro.dataframe.spill.SpillError`).

This module imports nothing from the package (stdlib only), so the
low-level dataframe modules can use it without import cycles.
"""

from __future__ import annotations

import errno as _errno
import fnmatch
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: Environment variable holding the ambient fault plan.
FAULT_INJECT_ENV = "DATALENS_FAULT_INJECT"

#: Environment variable bounding internal transient-fault retries in the
#: storage layers (spill store, artifact cache). Total attempts per
#: operation = 1 + retries.
IO_RETRIES_ENV = "DATALENS_IO_RETRIES"

DEFAULT_IO_RETRIES = 4

#: Base delay for the exponential backoff between internal retries.
DEFAULT_RETRY_BASE_DELAY = 0.002


class FaultError(RuntimeError):
    """An injected fault (base class for everything this module raises)."""

    injected = True


class TransientFaultError(FaultError):
    """An injected fault that would succeed on retry."""

    transient = True


def is_transient(error: BaseException) -> bool:
    """Whether a failure is worth retrying.

    Injected :class:`TransientFaultError`, real ``ConnectionError`` /
    ``TimeoutError``, and any exception carrying a truthy ``transient``
    attribute classify as transient; everything else (including
    ``OSError`` subtypes like ENOSPC, and checksum corruption) does not.
    """
    if isinstance(error, (ConnectionError, TimeoutError)):
        return True
    return bool(getattr(error, "transient", False))


def _make_enospc(message: str) -> OSError:
    return OSError(_errno.ENOSPC, f"No space left on device [{message}]")


#: error= name → factory building the exception to raise at the site.
ERROR_FACTORIES: dict[str, Callable[[str], BaseException]] = {
    "fault": FaultError,
    "transient": TransientFaultError,
    "oserror": lambda message: OSError(_errno.EIO, f"I/O error [{message}]"),
    "enospc": _make_enospc,
    "timeout": TimeoutError,
    "connection": ConnectionResetError,
}


def resolve_io_retries(retries: int | None = None) -> int:
    """Explicit ``retries``, else ``DATALENS_IO_RETRIES``, else 4."""
    if retries is not None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        return retries
    raw = os.environ.get(IO_RETRIES_ENV, "").strip()
    if not raw:
        return DEFAULT_IO_RETRIES
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid integer for {IO_RETRIES_ENV}: {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"{IO_RETRIES_ENV} must be >= 0, got {value}")
    return value


class FaultRule:
    """One parsed rule of a fault plan, with its own seeded RNG."""

    __slots__ = (
        "site",
        "error",
        "probability",
        "count",
        "after",
        "latency",
        "seed",
        "matches",
        "fires",
        "_rng",
    )

    def __init__(
        self,
        site: str,
        error: str | None = None,
        probability: float = 1.0,
        count: int | None = None,
        after: int = 0,
        latency: float = 0.0,
        seed: int = 0,
    ) -> None:
        if error is not None and error not in ERROR_FACTORIES:
            known = ", ".join(sorted(ERROR_FACTORIES))
            raise ValueError(
                f"unknown fault error {error!r} (known: {known})"
            )
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {probability}"
            )
        if error is None and latency <= 0.0:
            raise ValueError(
                f"fault rule for site {site!r} needs error= or latency="
            )
        self.site = site
        self.error = error
        self.probability = probability
        self.count = count
        self.after = after
        self.latency = latency
        self.seed = seed
        self.matches = 0
        self.fires = 0
        self._rng = random.Random(seed)

    def describe(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "error": self.error,
            "probability": self.probability,
            "count": self.count,
            "after": self.after,
            "latency": self.latency,
            "seed": self.seed,
            "matches": self.matches,
            "fires": self.fires,
        }


class FaultPlan:
    """A set of rules evaluated at every fired site, thread-safely."""

    def __init__(self, rules: list[FaultRule]) -> None:
        self.rules = rules
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``DATALENS_FAULT_INJECT`` spec string (see module doc)."""
        rules: list[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields: dict[str, str] = {}
            for part in chunk.split(","):
                key, sep, value = part.strip().partition("=")
                if not sep or not key:
                    raise ValueError(
                        f"malformed fault rule field {part!r} in "
                        f"{FAULT_INJECT_ENV} (expected key=value)"
                    )
                fields[key.strip()] = value.strip()
            site = fields.pop("site", None)
            if not site:
                raise ValueError(
                    f"fault rule {chunk!r} in {FAULT_INJECT_ENV} is "
                    "missing the required site= field"
                )
            kwargs: dict[str, Any] = {"site": site}
            try:
                if "error" in fields:
                    kwargs["error"] = fields.pop("error").lower()
                if "prob" in fields:
                    kwargs["probability"] = float(fields.pop("prob"))
                if "count" in fields:
                    kwargs["count"] = int(fields.pop("count"))
                if "after" in fields:
                    kwargs["after"] = int(fields.pop("after"))
                if "latency" in fields:
                    kwargs["latency"] = float(fields.pop("latency"))
                if "seed" in fields:
                    kwargs["seed"] = int(fields.pop("seed"))
            except ValueError as error:
                raise ValueError(
                    f"malformed fault rule {chunk!r} in "
                    f"{FAULT_INJECT_ENV}: {error}"
                ) from None
            if fields:
                unknown = ", ".join(sorted(fields))
                raise ValueError(
                    f"unknown fault rule field(s) {unknown} in {chunk!r} "
                    f"({FAULT_INJECT_ENV})"
                )
            rules.append(FaultRule(**kwargs))
        return cls(rules)

    # ------------------------------------------------------------------
    def fire(self, site: str) -> None:
        """Evaluate every rule against one site invocation.

        Latency rules sleep (outside the plan lock); error rules raise.
        The first raising rule wins; latency from earlier rules still
        applies before the raise.
        """
        delay = 0.0
        raising: FaultRule | None = None
        with self._lock:
            for rule in self.rules:
                if not fnmatch.fnmatchcase(site, rule.site):
                    continue
                rule.matches += 1
                if rule.matches <= rule.after:
                    continue
                if rule.count is not None and rule.fires >= rule.count:
                    continue
                if rule.probability < 1.0 and (
                    rule._rng.random() >= rule.probability
                ):
                    continue
                rule.fires += 1
                delay += rule.latency
                if rule.error is not None and raising is None:
                    raising = rule
        if delay > 0.0:
            time.sleep(delay)
        if raising is not None:
            raise ERROR_FACTORIES[raising.error](
                f"injected fault at site {site!r}"
            )

    def stats(self) -> list[dict[str, Any]]:
        with self._lock:
            return [rule.describe() for rule in self.rules]


# ----------------------------------------------------------------------
# Activation: environment plan + context-manager stack
# ----------------------------------------------------------------------
_context_plans: list[FaultPlan] = []
_context_lock = threading.Lock()

#: (raw env spec, parsed plan) — reparsed whenever the raw value changes,
#: so monkeypatched environments work without explicit invalidation.
_env_plan: tuple[str, FaultPlan | None] = ("", None)
_env_lock = threading.Lock()


def _plan_from_env() -> FaultPlan | None:
    global _env_plan
    raw = os.environ.get(FAULT_INJECT_ENV, "").strip()
    cached_raw, cached_plan = _env_plan
    if raw == cached_raw:
        return cached_plan
    with _env_lock:
        cached_raw, cached_plan = _env_plan
        if raw == cached_raw:
            return cached_plan
        plan = FaultPlan.parse(raw) if raw else None
        _env_plan = (raw, plan)
        return plan


def maybe_fire(site: str) -> None:
    """Fire one site invocation against every active plan.

    Near-free when nothing is active: one environ lookup plus a list
    check. With active plans, rules are matched in activation order
    (environment plan first, then inner context managers).
    """
    env_plan = _plan_from_env()
    if env_plan is not None:
        env_plan.fire(site)
    if _context_plans:
        for plan in tuple(_context_plans):
            plan.fire(site)


@contextmanager
def inject(spec: str | FaultPlan) -> Iterator[FaultPlan]:
    """Activate a fault plan for the dynamic extent of the block.

    Yields the plan so callers can inspect per-rule fire counters
    afterwards. Nestable; all active plans fire at every site.
    """
    plan = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec)
    with _context_lock:
        _context_plans.append(plan)
    try:
        yield plan
    finally:
        with _context_lock:
            _context_plans.remove(plan)


def active_plans() -> list[FaultPlan]:
    """Currently active plans (environment plan first), for diagnostics."""
    plans = []
    env_plan = _plan_from_env()
    if env_plan is not None:
        plans.append(env_plan)
    plans.extend(_context_plans)
    return plans


def fault_stats() -> list[dict[str, Any]]:
    """Per-rule match/fire counters across every active plan."""
    return [rule for plan in active_plans() for rule in plan.stats()]


# ----------------------------------------------------------------------
# Transient-fault absorption helpers
# ----------------------------------------------------------------------
def with_transient_retries(
    operation: Callable[[], Any],
    retries: int | None = None,
    base_delay: float = DEFAULT_RETRY_BASE_DELAY,
) -> tuple[Any, int]:
    """Run ``operation``, retrying transient failures with backoff.

    Returns ``(result, retries_used)``. Non-transient failures (ENOSPC,
    corruption, programming errors) propagate immediately; transient
    ones (see :func:`is_transient`) are retried up to ``retries`` times
    (default :func:`resolve_io_retries`) with exponential backoff, after
    which the last error propagates. This is how the storage layers
    absorb injected/real transient I/O faults without changing results
    or cache counters.
    """
    limit = resolve_io_retries(retries)
    attempt = 0
    while True:
        try:
            return operation(), attempt
        except BaseException as error:  # noqa: BLE001 — reclassified below
            if not is_transient(error) or attempt >= limit:
                raise
            time.sleep(base_delay * (2**attempt))
            attempt += 1


def absorb_transient(
    site: str,
    retries: int | None = None,
    base_delay: float = DEFAULT_RETRY_BASE_DELAY,
) -> int:
    """Fire ``site``, absorbing transient faults by re-firing.

    For sites guarding pure in-memory operations (artifact cache): a
    transient injection is retried — each attempt re-rolls the rule RNG —
    so the operation proceeds unless the plan persistently fails.
    Returns the number of retries absorbed; persistent errors propagate.
    """
    _, used = with_transient_retries(
        lambda: maybe_fire(site), retries=retries, base_delay=base_delay
    )
    return used

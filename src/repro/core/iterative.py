"""Iterative cleaning — tool selection as hyperparameter optimization (§4).

The search space covers every combination of detection and repair tool
(plus their own hyperparameters); the scoring function trains the user's
downstream ML model on the repaired data and measures MSE (regression) or
F1 (classification); a Bayesian (TPE) study navigates the space. Unlike
ActiveClean/BoostClean/CPClean, nothing here is restricted to binary
classification — the model zoo covers regression and multi-class tasks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..dataframe import DataFrame
from ..detection import DetectionContext
from ..ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    FrameEncoder,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    KNeighborsClassifier,
    KNeighborsRegressor,
    LinearRegression,
    LogisticRegression,
    RandomForestClassifier,
    RandomForestRegressor,
    macro_f1_score,
    mean_squared_error,
    train_test_split_indices,
)
from ..optimize import (
    BanditSampler,
    GridSampler,
    MAXIMIZE,
    MINIMIZE,
    RandomSampler,
    Study,
    TPESampler,
    Trial,
)
from .registry import make_detector, make_repairer

REGRESSION = "regression"
CLASSIFICATION = "classification"

#: Detector choices offered to the optimizer, with their tunable knobs.
DEFAULT_DETECTOR_CHOICES = [
    "sd",
    "iqr",
    "isolation_forest",
    "mv_detector",
    "fahes",
    "holoclean",
    "union_statistical",
    "union_broad",
    "min_k2",
    "raha",
]

DEFAULT_REPAIRER_CHOICES = ["standard_imputer", "ml_imputer", "holoclean_repair"]

MODEL_FACTORIES: dict[tuple[str, str], Callable[[int], Any]] = {
    (REGRESSION, "decision_tree"): lambda seed: DecisionTreeRegressor(
        max_depth=12, min_samples_leaf=3, seed=seed
    ),
    (REGRESSION, "random_forest"): lambda seed: RandomForestRegressor(
        n_estimators=10, max_depth=10, seed=seed
    ),
    (REGRESSION, "knn"): lambda seed: KNeighborsRegressor(n_neighbors=7),
    (REGRESSION, "linear"): lambda seed: LinearRegression(),
    (REGRESSION, "gradient_boosting"): lambda seed: GradientBoostingRegressor(
        n_estimators=30, max_depth=3, seed=seed
    ),
    (CLASSIFICATION, "decision_tree"): lambda seed: DecisionTreeClassifier(
        max_depth=12, min_samples_leaf=3, seed=seed
    ),
    (CLASSIFICATION, "random_forest"): lambda seed: RandomForestClassifier(
        n_estimators=10, max_depth=10, seed=seed
    ),
    (CLASSIFICATION, "knn"): lambda seed: KNeighborsClassifier(n_neighbors=7),
    (CLASSIFICATION, "logistic"): lambda seed: LogisticRegression(seed=seed),
    (CLASSIFICATION, "gradient_boosting"): (
        lambda seed: GradientBoostingClassifier(
            n_estimators=30, max_depth=3, seed=seed
        )
    ),
}


@dataclass
class TrialOutcome:
    """One evaluated tool combination."""

    number: int
    params: dict[str, Any]
    score: float
    runtime_seconds: float


@dataclass
class IterativeCleaningResult:
    """Everything the dashboard reports after a search (Figure 5)."""

    task: str
    best_params: dict[str, Any]
    best_score: float
    best_score_history: list[float]
    trials: list[TrialOutcome]
    search_runtime_seconds: float
    repaired_frame: DataFrame
    baseline_dirty: float
    baseline_clean: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def n_iterations(self) -> int:
        return len(self.trials)


class DownstreamScorer:
    """Train the downstream model on (repaired) data and score it.

    The train/test split is fixed once per scorer so every tool combination
    is judged on identical rows. When a clean reference frame is supplied
    (benchmarks), the test portion comes from the reference — the model is
    graded on ground truth, like the paper's baseline curves; otherwise the
    repaired test rows themselves are used.
    """

    def __init__(
        self,
        task: str,
        target: str,
        model: str = "decision_tree",
        test_size: float = 0.25,
        seed: int = 0,
        reference: DataFrame | None = None,
    ) -> None:
        if task not in (REGRESSION, CLASSIFICATION):
            raise ValueError("task must be 'regression' or 'classification'")
        if (task, model) not in MODEL_FACTORIES:
            raise KeyError(f"unknown model {model!r} for task {task!r}")
        self.task = task
        self.target = target
        self.model = model
        self.test_size = test_size
        self.seed = seed
        self.reference = reference
        self._split: tuple[list[int], list[int]] | None = None

    # ------------------------------------------------------------------
    @property
    def direction(self) -> str:
        return MINIMIZE if self.task == REGRESSION else MAXIMIZE

    def worst_score(self) -> float:
        return float("inf") if self.task == REGRESSION else 0.0

    def split_for(self, frame: DataFrame) -> tuple[list[int], list[int]]:
        if self._split is None:
            self._split = train_test_split_indices(
                frame.num_rows, self.test_size, seed=self.seed
            )
        return self._split

    # ------------------------------------------------------------------
    def score(self, frame: DataFrame) -> float:
        """Fit on the train split of ``frame``; evaluate on the test split.

        Feature assembly is fully array-native: the encoder gathers
        codes-based lookup tables and the train/test row selection runs
        on the columns' null masks instead of per-row ``values()`` scans.
        """
        train_idx, test_idx = self.split_for(frame)
        eval_frame = self.reference if self.reference is not None else frame
        feature_names = [n for n in frame.column_names if n != self.target]

        encoder = FrameEncoder(feature_names)
        matrix = encoder.fit_transform(frame)
        eval_matrix = encoder.transform(eval_frame)

        target_column = frame.column(self.target)
        train_candidates = np.asarray(train_idx, dtype=np.intp)
        train_rows = train_candidates[~target_column.mask()[train_candidates]]
        if len(train_rows) < 10:
            return self.worst_score()
        eval_column = eval_frame.column(self.target)
        test_candidates = np.asarray(test_idx, dtype=np.intp)
        test_rows = test_candidates[~eval_column.mask()[test_candidates]]
        if not len(test_rows):
            return self.worst_score()

        model = MODEL_FACTORIES[(self.task, self.model)](self.seed)
        if self.task == REGRESSION:
            y_train = target_column.to_numpy()[train_rows].astype(float).tolist()
            model.fit(matrix[train_rows], y_train)
            predictions = model.predict(eval_matrix[test_rows])
            y_test = eval_column.to_numpy()[test_rows].astype(float).tolist()
            return mean_squared_error(y_test, predictions)
        target_values = target_column.values()
        y_train = [str(target_values[i]) for i in train_rows.tolist()]
        if len(set(y_train)) < 2:
            return self.worst_score()
        model.fit(matrix[train_rows], y_train)
        predictions = model.predict(eval_matrix[test_rows])
        eval_target = eval_column.values()
        y_test = [str(eval_target[i]) for i in test_rows.tolist()]
        return macro_f1_score(y_test, predictions)


class IterativeCleaner:
    """Optimize (detector, repairer) pairs for downstream performance."""

    def __init__(
        self,
        task: str,
        target: str,
        model: str = "decision_tree",
        sampler: str = "tpe",
        detector_choices: list[str] | None = None,
        repairer_choices: list[str] | None = None,
        test_size: float = 0.25,
        seed: int = 0,
    ) -> None:
        self.task = task
        self.target = target
        self.model = model
        self.sampler_name = sampler
        self.detector_choices = list(detector_choices or DEFAULT_DETECTOR_CHOICES)
        self.repairer_choices = list(repairer_choices or DEFAULT_REPAIRER_CHOICES)
        self.test_size = test_size
        self.seed = seed

    # ------------------------------------------------------------------
    def _make_sampler(self):
        if self.sampler_name == "tpe":
            return TPESampler(n_startup_trials=4)
        if self.sampler_name == "random":
            return RandomSampler()
        if self.sampler_name == "grid":
            return GridSampler()
        if self.sampler_name == "bandit":
            return BanditSampler()
        raise ValueError(f"unknown sampler {self.sampler_name!r}")

    def _suggest_detector(self, trial: Trial) -> tuple[str, dict[str, Any]]:
        name = trial.suggest_categorical("detector", self.detector_choices)
        params: dict[str, Any] = {}
        if name == "sd":
            params["k"] = trial.suggest_float("sd_k", 2.0, 4.0)
        elif name == "iqr":
            params["factor"] = trial.suggest_float("iqr_factor", 1.0, 3.0)
        elif name == "isolation_forest":
            params["contamination"] = trial.suggest_float(
                "if_contamination", 0.02, 0.15
            )
            params["n_estimators"] = 25
            params["seed"] = self.seed
        elif name == "holoclean":
            params["posterior_margin"] = trial.suggest_float(
                "hc_margin", 1.5, 6.0, log=True
            )
        elif name == "raha":
            params["labeling_budget"] = trial.suggest_int("raha_budget", 5, 20, 5)
            params["seed"] = self.seed
        return name, params

    def _suggest_repairer(self, trial: Trial) -> tuple[str, dict[str, Any]]:
        name = trial.suggest_categorical("repairer", self.repairer_choices)
        params: dict[str, Any] = {}
        if name == "ml_imputer":
            params["tree_depth"] = trial.suggest_int("imputer_tree_depth", 4, 12, 2)
            params["n_neighbors"] = trial.suggest_int("imputer_neighbors", 3, 9, 2)
            params["seed"] = self.seed
        elif name == "standard_imputer":
            params["numeric_strategy"] = trial.suggest_categorical(
                "numeric_strategy", ["mean", "median"]
            )
        return name, params

    # ------------------------------------------------------------------
    def clean(
        self,
        dirty: DataFrame,
        n_iterations: int = 20,
        reference: DataFrame | None = None,
        context: DetectionContext | None = None,
        score_threshold: float | None = None,
    ) -> IterativeCleaningResult:
        """Run the search and return the best-repaired frame + telemetry.

        ``reference`` (the clean table) is optional and only used to score
        on ground truth and compute the Figure-5 baselines. The search can
        stop early once ``score_threshold`` is reached (the paper's
        "desired threshold" stopping rule).
        """
        scorer = DownstreamScorer(
            task=self.task,
            target=self.target,
            model=self.model,
            test_size=self.test_size,
            seed=self.seed,
            reference=reference,
        )
        context = context or DetectionContext(seed=self.seed)
        study = Study(
            direction=scorer.direction,
            sampler=self._make_sampler(),
            seed=self.seed,
        )
        outcomes: list[TrialOutcome] = []
        repaired_cache: dict[int, DataFrame] = {}

        def objective(trial: Trial) -> float:
            start = time.perf_counter()
            detector_name, detector_params = self._suggest_detector(trial)
            repairer_name, repairer_params = self._suggest_repairer(trial)
            detector = make_detector(detector_name, **detector_params)
            repairer = make_repairer(repairer_name, **repairer_params)
            detection = detector.detect(dirty, context)
            # Share the session artifact store across trials: unchanged
            # columns re-tokenize from cache even as repair configs vary.
            repaired = repairer.repair(
                dirty, detection.cells, store=context.artifact_store
            ).apply_to(dirty)
            score = scorer.score(repaired)
            repaired_cache[trial.number] = repaired
            outcomes.append(
                TrialOutcome(
                    number=trial.number,
                    params=dict(trial.params),
                    score=score,
                    runtime_seconds=time.perf_counter() - start,
                )
            )
            trial.set_user_attr("detected_cells", len(detection.cells))
            return score

        start = time.perf_counter()
        remaining = n_iterations
        while remaining > 0:
            study.optimize(objective, n_trials=1, catch_exceptions=True)
            remaining -= 1
            if score_threshold is not None and study.completed_trials():
                best = study.best_value
                reached = (
                    best <= score_threshold
                    if scorer.direction == MINIMIZE
                    else best >= score_threshold
                )
                if reached:
                    break
        runtime = time.perf_counter() - start

        best_trial = study.best_trial
        repaired_frame = repaired_cache.get(best_trial.number, dirty)
        baseline_dirty = scorer.score(dirty)
        baseline_clean = (
            scorer.score(reference) if reference is not None else None
        )
        return IterativeCleaningResult(
            task=self.task,
            best_params=dict(best_trial.params),
            best_score=float(best_trial.value),
            best_score_history=study.best_value_history(),
            trials=outcomes,
            search_runtime_seconds=runtime,
            repaired_frame=repaired_frame,
            baseline_dirty=baseline_dirty,
            baseline_clean=baseline_clean,
            metadata={
                "model": self.model,
                "sampler": self.sampler_name,
                "detector_choices": self.detector_choices,
                "repairer_choices": self.repairer_choices,
            },
        )

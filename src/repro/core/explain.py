"""Explainability for detections and repairs (paper future work 2).

Answers "why was this cell flagged?" and "how was this correction made?"
from the evidence the tools already produce (per-cell scores, configs,
metadata) plus cheap recomputation of the statistical context (column
mean/std/quartiles, violated rules, matched tags).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..dataframe import Cell, DataFrame
from ..detection import DetectionResult
from ..fd import FunctionalDependency


@dataclass
class Evidence:
    """One tool's reason for flagging a cell."""

    tool: str
    reason: str
    score: float | None = None
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class CellExplanation:
    """Everything known about one detected (and possibly repaired) cell."""

    cell: Cell
    value: Any
    evidence: list[Evidence] = field(default_factory=list)
    repair: dict[str, Any] | None = None

    def summary(self) -> str:
        row, column = self.cell
        lines = [f"cell ({row}, {column}) = {self.value!r}"]
        for item in self.evidence:
            score = f" (score {item.score:.2f})" if item.score is not None else ""
            lines.append(f"  [{item.tool}] {item.reason}{score}")
        if self.repair is not None:
            lines.append(
                f"  repaired by {self.repair['tool']} -> "
                f"{self.repair['new_value']!r} ({self.repair['method']})"
            )
        return "\n".join(lines)


def _column_context(frame: DataFrame, column: str) -> dict[str, float]:
    values = frame.column(column).to_numpy()
    if not frame.column(column).is_numeric():
        return {}
    finite = values[~np.isnan(values)]
    if len(finite) < 2:
        return {}
    q1, q3 = np.quantile(finite, [0.25, 0.75])
    return {
        "mean": float(np.mean(finite)),
        "std": float(np.std(finite)),
        "q1": float(q1),
        "q3": float(q3),
        "iqr": float(q3 - q1),
    }


def _statistical_reason(
    tool: str, value: Any, context: dict[str, float], config: dict[str, Any]
) -> str:
    if not context or value is None or isinstance(value, str):
        return "flagged by statistical screening"
    value = float(value)
    if tool == "sd":
        std = context["std"] or 1.0
        z = abs(value - context["mean"]) / std
        return (
            f"value deviates {z:.1f} standard deviations from the column "
            f"mean {context['mean']:.3g} (threshold k={config.get('k', 3.0)})"
        )
    if tool == "iqr":
        factor = config.get("factor", 1.5)
        low = context["q1"] - factor * context["iqr"]
        high = context["q3"] + factor * context["iqr"]
        return (
            f"value lies outside the robust band [{low:.3g}, {high:.3g}] "
            f"(IQR factor {factor})"
        )
    if tool == "isolation_forest":
        return "value isolates in very few random splits (anomaly score high)"
    return "flagged by statistical screening"


_TOOL_REASONS = {
    "mv_detector": "cell is missing or spells a null token",
    "fahes": "value matches a disguised-missing pattern "
             "(sentinel / detached repeated value / null-like spelling)",
    "katara": "value disagrees with the aligned knowledge-base type or relation",
    "holoclean": "observed value is far less probable than the best candidate "
                 "under attribute co-occurrence",
    "raha": "the per-column classifier trained on propagated user labels "
            "predicts this cell dirty",
    "user_tags": "value was tagged as dirty by the user",
    "min_k": "flagged by at least k member tools",
    "union": "flagged by at least one member tool",
}


def explain_cell(
    frame: DataFrame,
    cell: Cell,
    detection_results: dict[str, DetectionResult],
    rules: list[FunctionalDependency] | None = None,
    repair_result: Any = None,
) -> CellExplanation:
    """Build the explanation for one cell from session artifacts."""
    row, column = cell
    value = frame.at(row, column) if column in frame else None
    explanation = CellExplanation(cell=cell, value=value)
    context = _column_context(frame, column) if column in frame else {}

    for tool, result in detection_results.items():
        if cell not in result.cells:
            continue
        score = result.scores.get(cell)
        if tool in ("sd", "iqr", "isolation_forest"):
            reason = _statistical_reason(tool, value, context, result.config)
        elif tool == "nadeef":
            reason = _rule_reason(frame, cell, rules or [], result)
        else:
            reason = _TOOL_REASONS.get(tool, "flagged by this tool")
        explanation.evidence.append(
            Evidence(tool=tool, reason=reason, score=score,
                     details={"config": result.config})
        )

    if repair_result is not None and cell in repair_result.repairs:
        method = repair_result.metadata.get("models", {}).get(column)
        if method is None:
            fills = repair_result.metadata.get("fill_values", {})
            method = (
                f"column fill value {fills[column]}"
                if column in fills
                else repair_result.tool
            )
        explanation.repair = {
            "tool": repair_result.tool,
            "new_value": repair_result.repairs[cell],
            "old_value": value,
            "method": method,
        }
    return explanation


def _rule_reason(
    frame: DataFrame,
    cell: Cell,
    rules: list[FunctionalDependency],
    result: DetectionResult,
) -> str:
    violated = []
    for rule in rules:
        if cell in rule.violations(frame):
            violated.append(str(rule))
    if violated:
        return f"violates rule(s): {', '.join(violated)}"
    per_rule = result.metadata.get("violations_per_rule", {})
    active = [name for name, count in per_rule.items() if count]
    if active:
        return f"violates one of the discovered rules ({', '.join(active[:3])})"
    return "violates a quality rule"


def explain_session(session: Any, limit: int = 20) -> list[CellExplanation]:
    """Explanations for the first ``limit`` detected cells of a session."""
    cells = sorted(session.detected_cells)[:limit]
    return [
        explain_cell(
            session.frame,
            cell,
            session.detection_results,
            rules=session.rule_set.active_rules(),
            repair_result=session.repair_result,
        )
        for cell in cells
    ]

"""Ongoing quality monitoring across dataset versions.

"Maintaining data quality is not a one-time task" (paper §1): this module
walks a Delta table's history, computes the quality panel for every
version, and reports regressions and drift between consecutive versions —
turning the reproducibility substrate into a monitoring loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..fd import FunctionalDependency
from ..profiling.compare import DriftFinding, compare_frames
from ..versioning import DeltaTable
from .quality import quality_summary


@dataclass
class VersionQuality:
    """Quality panel of one committed version."""

    version: int
    operation: str
    metrics: dict[str, float]
    num_rows: int
    num_columns: int


@dataclass
class QualityRegression:
    """A quality dimension that worsened between two versions."""

    metric: str
    from_version: int
    to_version: int
    before: float
    after: float

    @property
    def drop(self) -> float:
        return self.before - self.after


@dataclass
class MonitoringReport:
    """History-wide quality trajectory plus findings."""

    timeline: list[VersionQuality] = field(default_factory=list)
    regressions: list[QualityRegression] = field(default_factory=list)
    drift: dict[tuple[int, int], list[DriftFinding]] = field(
        default_factory=dict
    )

    def latest(self) -> VersionQuality | None:
        return self.timeline[-1] if self.timeline else None

    def metric_series(self, metric: str) -> list[tuple[int, float]]:
        return [
            (entry.version, entry.metrics[metric])
            for entry in self.timeline
            if metric in entry.metrics
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "timeline": [
                {
                    "version": entry.version,
                    "operation": entry.operation,
                    "metrics": entry.metrics,
                    "shape": [entry.num_rows, entry.num_columns],
                }
                for entry in self.timeline
            ],
            "regressions": [
                {
                    "metric": regression.metric,
                    "from_version": regression.from_version,
                    "to_version": regression.to_version,
                    "drop": round(regression.drop, 4),
                }
                for regression in self.regressions
            ],
            "drift_findings": {
                f"{a}->{b}": [finding.message for finding in findings]
                for (a, b), findings in self.drift.items()
            },
        }


class QualityMonitor:
    """Compute quality/drift across every version of a Delta table."""

    def __init__(
        self,
        rules: list[FunctionalDependency] | None = None,
        regression_threshold: float = 0.01,
    ) -> None:
        self.rules = list(rules or [])
        self.regression_threshold = regression_threshold

    def run(self, table: DeltaTable) -> MonitoringReport:
        """Profile every version and diff consecutive pairs."""
        report = MonitoringReport()
        previous_frame = None
        previous_entry: VersionQuality | None = None
        for commit in table.history():
            frame = table.read(commit.version)
            metrics = quality_summary(frame, rules=self.rules)
            entry = VersionQuality(
                version=commit.version,
                operation=commit.operation,
                metrics=metrics,
                num_rows=frame.num_rows,
                num_columns=frame.num_columns,
            )
            report.timeline.append(entry)
            if previous_entry is not None and previous_frame is not None:
                for metric, after in metrics.items():
                    before = previous_entry.metrics.get(metric)
                    if (
                        before is not None
                        and before - after > self.regression_threshold
                    ):
                        report.regressions.append(
                            QualityRegression(
                                metric=metric,
                                from_version=previous_entry.version,
                                to_version=entry.version,
                                before=before,
                                after=after,
                            )
                        )
                if frame.column_names == previous_frame.column_names:
                    findings = compare_frames(previous_frame, frame)
                    if findings:
                        report.drift[
                            (previous_entry.version, entry.version)
                        ] = findings
            previous_frame = frame
            previous_entry = entry
        return report

"""Data quality metrics — the dashboard's right-hand "Data Quality" panel.

All metrics run as columnar array operations: masks for completeness,
combined row codes (:meth:`~repro.dataframe.DataFrame.column_codes`) for
uniqueness, and per-column value codes + bincounts for validity — the
dashboard's quality tab costs O(columns) array kernels, not O(cells)
Python loops.

With a ``store`` (:class:`~repro.core.artifacts.ArtifactStore`) the
metrics become incremental: per-column validity counts, the duplicate-
row artifact (shared with profiling under the same ``frame:duplicates``
key), and per-rule FD violation sets are cached by content fingerprint,
so re-scoring after a repair recomputes only what the patch dirtied.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Column, DataFrame
from ..dataframe import types as _dtypes
from ..dataframe.chunked import compressed_chunks, gather_compressed
from ..fd import FunctionalDependency
from ..profiling.report import duplicate_row_artifact


def completeness(frame: DataFrame) -> float:
    """Fraction of cells that are not missing."""
    total = frame.num_rows * frame.num_columns
    if total == 0:
        return 1.0
    return 1.0 - frame.missing_count() / total


def uniqueness(frame: DataFrame, store=None) -> float:
    """Fraction of rows that are not exact duplicates of earlier rows."""
    if frame.num_rows == 0:
        return 1.0
    if not store:  # falsy when disabled: cold path, no hashing
        n_duplicates = len(frame.duplicate_row_indices())
    else:
        n_duplicates = len(duplicate_row_artifact(frame, store))
    return 1.0 - n_duplicates / frame.num_rows


def _column_validity(column: Column) -> tuple[int, int]:
    """``(valid, total)`` non-missing cell counts for one column.

    Spill-aware: the numeric branch streams the non-missing payload
    through :func:`~repro.dataframe.chunked.compressed_chunks` (per-shard
    gathers, bit-identical to the monolithic compression), so quality
    scoring never densifies — and never un-spills — an out-of-core
    column. The categorical branch already goes through ``codes()``,
    which is chunk-native.
    """
    mask = column.mask()
    n_valid = len(column) - int(mask.sum())
    if column.is_numeric():
        finite = gather_compressed(compressed_chunks(column))
        if len(finite) < 4:
            return len(finite), n_valid
        q1, q3 = np.quantile(finite, [0.25, 0.75])
        iqr = float(q3 - q1)
        if iqr == 0.0:
            return len(finite), n_valid
        low = q1 - 3.0 * iqr
        high = q3 + 3.0 * iqr
        return int(np.sum((finite >= low) & (finite <= high))), n_valid
    if n_valid == 0:
        return 0, 0
    codes, n_groups = column.codes()
    counts = np.bincount(codes[~mask], minlength=n_groups)
    distinct = int(np.sum(counts > 0))
    if distinct > max(20, 0.5 * n_valid):
        return n_valid, n_valid  # free-text column: no domain check
    return int(counts[counts > 1].sum()), n_valid


def validity(frame: DataFrame, store=None) -> float:
    """Fraction of cells passing per-column domain checks.

    Numeric cells must fall inside the robust band
    ``[q1 - 3*IQR, q3 + 3*IQR]``; categorical cells must not be one-off
    levels in an otherwise low-cardinality column. Per-column counts are
    cached by content fingerprint when a store is given.
    """
    total = 0
    valid = 0
    for name in frame.column_names:
        column = frame.column(name)
        if not store:
            counts = _column_validity(column)
        else:
            counts = store.cached(
                "quality:validity", (column.fingerprint(),), (),
                lambda column=column: _column_validity(column),
            )
        valid += counts[0]
        total += counts[1]
    return valid / total if total else 1.0


def consistency(
    frame: DataFrame, rules: list[FunctionalDependency], store=None
) -> float:
    """Fraction of cells not violating any active FD rule.

    Per-rule violation sets are cached by the fingerprints of the
    columns the rule names, so after a repair only rules touching a
    patched column re-evaluate.
    """
    total = frame.num_rows * frame.num_columns
    if total == 0 or not rules:
        return 1.0
    violating: set = set()
    for rule in rules:
        # Duck-typed rules (anything with violations()) stay supported:
        # only rules that expose determinants/dependent name their input
        # columns precisely enough to be content-addressed.
        determinants = getattr(rule, "determinants", None)
        dependent = getattr(rule, "dependent", None)
        if (
            not store
            or determinants is None
            or dependent is None
            or any(name not in frame for name in (*determinants, dependent))
        ):
            violating |= rule.violations(frame)
            continue
        involved = (*determinants, dependent)
        cells = store.cached(
            "quality:fd_violations",
            tuple(frame.column(name).fingerprint() for name in involved),
            (tuple(determinants), dependent),
            lambda rule=rule: tuple(sorted(rule.violations(frame))),
        )
        violating.update(cells)
    return 1.0 - len(violating) / total


def accuracy_against(frame: DataFrame, reference: DataFrame) -> float:
    """Fraction of cells equal to a ground-truth reference frame."""
    if frame.shape != reference.shape or frame.column_names != reference.column_names:
        raise ValueError("frames must share shape and columns")
    total = frame.num_rows * frame.num_columns
    if total == 0:
        return 1.0
    equal = 0
    for name in frame.column_names:
        mine = frame.column(name)
        theirs = reference.column(name)
        my_mask = np.asarray(mine.mask())
        their_mask = np.asarray(theirs.mask())
        both_present = ~my_mask & ~their_mask
        numeric_pair = mine.dtype == _dtypes.FLOAT and theirs.dtype in (
            _dtypes.INT,
            _dtypes.FLOAT,
            _dtypes.BOOL,
        )
        if numeric_pair:
            left = mine.values_array().astype(float)
            right = theirs.values_array().astype(float)
            tolerance = 1e-9 * np.maximum(1.0, np.abs(left))
            matches = np.abs(left - right) <= tolerance
        else:
            matches = mine.values_array() == theirs.values_array()
        equal += int(np.sum(my_mask & their_mask))
        equal += int(np.sum(both_present & matches))
    return equal / total


def quality_summary(
    frame: DataFrame,
    rules: list[FunctionalDependency] | None = None,
    reference: DataFrame | None = None,
    store=None,
) -> dict[str, Any]:
    """All quality dimensions plus their mean as an overall score."""
    metrics = {
        "completeness": completeness(frame),
        "uniqueness": uniqueness(frame, store=store),
        "validity": validity(frame, store=store),
        "consistency": consistency(frame, rules or [], store=store),
    }
    if reference is not None:
        metrics["accuracy"] = accuracy_against(frame, reference)
    metrics["overall"] = float(np.mean(list(metrics.values())))
    return metrics

"""Data quality metrics — the dashboard's right-hand "Data Quality" panel.

All metrics run as columnar array operations: masks for completeness,
combined row codes (:meth:`~repro.dataframe.DataFrame.column_codes`) for
uniqueness, and per-column value codes + bincounts for validity — the
dashboard's quality tab costs O(columns) array kernels, not O(cells)
Python loops.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import DataFrame
from ..dataframe import types as _dtypes
from ..fd import FunctionalDependency


def completeness(frame: DataFrame) -> float:
    """Fraction of cells that are not missing."""
    total = frame.num_rows * frame.num_columns
    if total == 0:
        return 1.0
    return 1.0 - frame.missing_count() / total


def uniqueness(frame: DataFrame) -> float:
    """Fraction of rows that are not exact duplicates of earlier rows."""
    if frame.num_rows == 0:
        return 1.0
    return 1.0 - len(frame.duplicate_row_indices()) / frame.num_rows


def validity(frame: DataFrame) -> float:
    """Fraction of cells passing per-column domain checks.

    Numeric cells must fall inside the robust band
    ``[q1 - 3*IQR, q3 + 3*IQR]``; categorical cells must not be one-off
    levels in an otherwise low-cardinality column.
    """
    total = 0
    valid = 0
    for name in frame.column_names:
        column = frame.column(name)
        mask = column.mask()
        n_valid = len(column) - int(mask.sum())
        total += n_valid
        if column.is_numeric():
            finite = column.values_array()[~mask].astype(float)
            if len(finite) < 4:
                valid += len(finite)
                continue
            q1, q3 = np.quantile(finite, [0.25, 0.75])
            iqr = float(q3 - q1)
            if iqr == 0.0:
                valid += len(finite)
                continue
            low = q1 - 3.0 * iqr
            high = q3 + 3.0 * iqr
            valid += int(np.sum((finite >= low) & (finite <= high)))
        else:
            if n_valid == 0:
                continue
            codes, n_groups = column.codes()
            counts = np.bincount(codes[~mask], minlength=n_groups)
            distinct = int(np.sum(counts > 0))
            if distinct > max(20, 0.5 * n_valid):
                valid += n_valid  # free-text column: no domain check
                continue
            valid += int(counts[counts > 1].sum())
    return valid / total if total else 1.0


def consistency(frame: DataFrame, rules: list[FunctionalDependency]) -> float:
    """Fraction of cells not violating any active FD rule."""
    total = frame.num_rows * frame.num_columns
    if total == 0 or not rules:
        return 1.0
    violating: set = set()
    for rule in rules:
        violating |= rule.violations(frame)
    return 1.0 - len(violating) / total


def accuracy_against(frame: DataFrame, reference: DataFrame) -> float:
    """Fraction of cells equal to a ground-truth reference frame."""
    if frame.shape != reference.shape or frame.column_names != reference.column_names:
        raise ValueError("frames must share shape and columns")
    total = frame.num_rows * frame.num_columns
    if total == 0:
        return 1.0
    equal = 0
    for name in frame.column_names:
        mine = frame.column(name)
        theirs = reference.column(name)
        my_mask = np.asarray(mine.mask())
        their_mask = np.asarray(theirs.mask())
        both_present = ~my_mask & ~their_mask
        numeric_pair = mine.dtype == _dtypes.FLOAT and theirs.dtype in (
            _dtypes.INT,
            _dtypes.FLOAT,
            _dtypes.BOOL,
        )
        if numeric_pair:
            left = mine.values_array().astype(float)
            right = theirs.values_array().astype(float)
            tolerance = 1e-9 * np.maximum(1.0, np.abs(left))
            matches = np.abs(left - right) <= tolerance
        else:
            matches = mine.values_array() == theirs.values_array()
        equal += int(np.sum(my_mask & their_mask))
        equal += int(np.sum(both_present & matches))
    return equal / total


def quality_summary(
    frame: DataFrame,
    rules: list[FunctionalDependency] | None = None,
    reference: DataFrame | None = None,
) -> dict[str, Any]:
    """All quality dimensions plus their mean as an overall score."""
    metrics = {
        "completeness": completeness(frame),
        "uniqueness": uniqueness(frame),
        "validity": validity(frame),
        "consistency": consistency(frame, rules or []),
    }
    if reference is not None:
        metrics["accuracy"] = accuracy_against(frame, reference)
    metrics["overall"] = float(np.mean(list(metrics.values())))
    return metrics

"""Data quality metrics — the dashboard's right-hand "Data Quality" panel."""

from __future__ import annotations

from collections import Counter
from typing import Any

import numpy as np

from ..dataframe import DataFrame
from ..fd import FunctionalDependency


def completeness(frame: DataFrame) -> float:
    """Fraction of cells that are not missing."""
    total = frame.num_rows * frame.num_columns
    if total == 0:
        return 1.0
    return 1.0 - frame.missing_count() / total


def uniqueness(frame: DataFrame) -> float:
    """Fraction of rows that are not exact duplicates of earlier rows."""
    if frame.num_rows == 0:
        return 1.0
    return 1.0 - len(frame.duplicate_row_indices()) / frame.num_rows


def validity(frame: DataFrame) -> float:
    """Fraction of cells passing per-column domain checks.

    Numeric cells must fall inside the robust band
    ``[q1 - 3*IQR, q3 + 3*IQR]``; categorical cells must not be one-off
    levels in an otherwise low-cardinality column.
    """
    total = 0
    valid = 0
    for name in frame.column_names:
        column = frame.column(name)
        if column.is_numeric():
            values = column.to_numpy()
            finite = values[~np.isnan(values)]
            total += len(finite)
            if len(finite) < 4:
                valid += len(finite)
                continue
            q1, q3 = np.quantile(finite, [0.25, 0.75])
            iqr = float(q3 - q1)
            if iqr == 0.0:
                valid += len(finite)
                continue
            low = q1 - 3.0 * iqr
            high = q3 + 3.0 * iqr
            valid += int(np.sum((finite >= low) & (finite <= high)))
        else:
            values = column.non_missing()
            total += len(values)
            if not values:
                continue
            counts = Counter(values)
            if len(counts) > max(20, 0.5 * len(values)):
                valid += len(values)  # free-text column: no domain check
                continue
            valid += sum(count for count in counts.values() if count > 1)
    return valid / total if total else 1.0


def consistency(frame: DataFrame, rules: list[FunctionalDependency]) -> float:
    """Fraction of cells not violating any active FD rule."""
    total = frame.num_rows * frame.num_columns
    if total == 0 or not rules:
        return 1.0
    violating: set = set()
    for rule in rules:
        violating |= rule.violations(frame)
    return 1.0 - len(violating) / total


def accuracy_against(frame: DataFrame, reference: DataFrame) -> float:
    """Fraction of cells equal to a ground-truth reference frame."""
    if frame.shape != reference.shape or frame.column_names != reference.column_names:
        raise ValueError("frames must share shape and columns")
    total = frame.num_rows * frame.num_columns
    if total == 0:
        return 1.0
    equal = 0
    for name in frame.column_names:
        mine = frame.column(name).values()
        theirs = reference.column(name).values()
        for left, right in zip(mine, theirs):
            if left is None and right is None:
                equal += 1
            elif (
                isinstance(left, float)
                and isinstance(right, (int, float))
                and left is not None
                and right is not None
            ):
                equal += int(abs(left - float(right)) <= 1e-9 * max(1.0, abs(left)))
            elif left == right:
                equal += 1
    return equal / total


def quality_summary(
    frame: DataFrame,
    rules: list[FunctionalDependency] | None = None,
    reference: DataFrame | None = None,
) -> dict[str, Any]:
    """All quality dimensions plus their mean as an overall score."""
    metrics = {
        "completeness": completeness(frame),
        "uniqueness": uniqueness(frame),
        "validity": validity(frame),
        "consistency": consistency(frame, rules or []),
    }
    if reference is not None:
        metrics["accuracy"] = accuracy_against(frame, reference)
    metrics["overall"] = float(np.mean(list(metrics.values())))
    return metrics

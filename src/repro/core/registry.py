"""Tool registry: construct detectors/repairers from (name, params) specs.

The registry is the backbone of three features: the dashboard's tool
selection checklist, the iterative cleaner's search space (tools as
hyperparameters, §4), and DataSheet replay (§5), which must rebuild the
exact tools from their serialized configuration.
"""

from __future__ import annotations

from typing import Any, Callable

from ..detection import (
    Detector,
    FAHESDetector,
    HoloCleanDetector,
    IQRDetector,
    IsolationForestDetector,
    KATARADetector,
    MinKEnsemble,
    MVDetector,
    NADEEFDetector,
    RAHADetector,
    ReferentialIntegrityDetector,
    SDDetector,
    UnionEnsemble,
)
from ..repair import HoloCleanRepairer, MLImputer, Repairer, StandardImputer

_DETECTORS: dict[str, Callable[..., Detector]] = {
    "sd": SDDetector,
    "iqr": IQRDetector,
    "isolation_forest": IsolationForestDetector,
    "mv_detector": MVDetector,
    "fahes": FAHESDetector,
    "nadeef": NADEEFDetector,
    "katara": KATARADetector,
    "holoclean": HoloCleanDetector,
    "raha": RAHADetector,
    "referential_integrity": ReferentialIntegrityDetector,
}

_REPAIRERS: dict[str, Callable[..., Repairer]] = {
    "standard_imputer": StandardImputer,
    "ml_imputer": MLImputer,
    "holoclean_repair": HoloCleanRepairer,
}

#: Composite detector presets available to the dashboard and the search
#: space. Members are (name, params) pairs resolved recursively.
COMPOSITE_PRESETS: dict[str, dict[str, Any]] = {
    "union_statistical": {
        "kind": "union",
        "members": [("sd", {}), ("iqr", {}), ("mv_detector", {})],
    },
    "union_broad": {
        "kind": "union",
        "members": [
            ("iqr", {}),
            ("sd", {}),
            ("mv_detector", {}),
            ("fahes", {}),
        ],
    },
    "min_k2": {
        "kind": "min_k",
        "k": 2,
        "members": [
            ("sd", {"k": 2.5}),
            ("iqr", {}),
            ("mv_detector", {}),
            ("fahes", {}),
        ],
    },
}


def detector_names(include_composites: bool = True) -> list[str]:
    names = sorted(_DETECTORS)
    if include_composites:
        names += sorted(COMPOSITE_PRESETS)
    return names


def repairer_names() -> list[str]:
    return sorted(_REPAIRERS)


def make_detector(name: str, **params: Any) -> Detector:
    """Instantiate a detector by registry name (composites included)."""
    if name in _DETECTORS:
        return _DETECTORS[name](**params)
    if name in COMPOSITE_PRESETS:
        preset = COMPOSITE_PRESETS[name]
        members = [
            make_detector(member_name, **member_params)
            for member_name, member_params in preset["members"]
        ]
        if preset["kind"] == "union":
            return UnionEnsemble(members)
        return MinKEnsemble(members, k=int(preset["k"]))
    raise KeyError(f"unknown detector {name!r}; have {detector_names()}")


def make_repairer(name: str, **params: Any) -> Repairer:
    """Instantiate a repair tool by registry name."""
    if name not in _REPAIRERS:
        raise KeyError(f"unknown repairer {name!r}; have {repairer_names()}")
    return _REPAIRERS[name](**params)


def register_detector(name: str, factory: Callable[..., Detector]) -> None:
    """Extension hook: plug an external tool into the dashboard."""
    if name in _DETECTORS or name in COMPOSITE_PRESETS:
        raise ValueError(f"detector {name!r} already registered")
    _DETECTORS[name] = factory


def register_repairer(name: str, factory: Callable[..., Repairer]) -> None:
    """Extension hook: plug an external repair tool into the dashboard."""
    if name in _REPAIRERS:
        raise ValueError(f"repairer {name!r} already registered")
    _REPAIRERS[name] = factory

"""User data tagging — flagging known-bad values (§3, user-in-the-loop).

Users tag values they know encode errors (e.g. ``-1``, ``0``, ``99999``);
DataLens searches the whole dataset for those values, appends the matching
cell indices to the detection list, and feeds the tags to ML-based tools
as supplementary labels.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from ..dataframe import Cell, DataFrame
from ..detection import DetectionResult

TOOL_NAME = "user_tags"


class TagRegistry:
    """The set of user-tagged dirty values, with dataset search."""

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._values: set[Any] = set()
        for value in values:
            self.tag(value)

    # ------------------------------------------------------------------
    def tag(self, value: Any) -> None:
        """Register one known-dirty value (numbers also match their float)."""
        self._values.add(value)

    def untag(self, value: Any) -> None:
        self._values.discard(value)

    def values(self) -> list[Any]:
        return sorted(self._values, key=str)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Any) -> bool:
        return self._matches(value)

    def _matches(self, value: Any) -> bool:
        if value is None:
            return False
        if value in self._values:
            return True
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return any(
                isinstance(tagged, (int, float))
                and not isinstance(tagged, bool)
                and float(tagged) == float(value)
                for tagged in self._values
            )
        if isinstance(value, str):
            lowered = value.strip().lower()
            return any(
                isinstance(tagged, str) and tagged.strip().lower() == lowered
                for tagged in self._values
            )
        return False

    # ------------------------------------------------------------------
    def search(self, frame: DataFrame) -> DetectionResult:
        """Comprehensive search for tagged values across the dataset."""
        start = time.perf_counter()
        cells: set[Cell] = set()
        for name in frame.column_names:
            for row, value in enumerate(frame.column(name)):
                if self._matches(value):
                    cells.add((row, name))
        return DetectionResult(
            tool=TOOL_NAME,
            cells=cells,
            config={"tagged_values": [str(v) for v in self.values()]},
            scores={cell: 1.0 for cell in cells},
            runtime_seconds=time.perf_counter() - start,
            metadata={"num_tagged_values": len(self._values)},
        )

    def as_labels(self, frame: DataFrame) -> dict[Cell, bool]:
        """Tagged cells as positive labels for ML-based detectors."""
        return {cell: True for cell in self.search(frame).cells}

"""DataLens core: controller, iterative cleaning, user-in-the-loop, DataSheets."""

from .artifacts import (
    ARTIFACT_CACHE_BYTES_ENV,
    ARTIFACT_CACHE_ENV,
    ArtifactStore,
    cache_enabled_by_env,
    cache_max_bytes_from_env,
    estimate_artifact_bytes,
)
from .controller import DataLens, DataLensSession, DatasetNotFoundError
from .datasheet import DataSheet
from .explain import CellExplanation, Evidence, explain_cell, explain_session
from .iterative import (
    CLASSIFICATION,
    DEFAULT_DETECTOR_CHOICES,
    DEFAULT_REPAIRER_CHOICES,
    DownstreamScorer,
    IterativeCleaner,
    IterativeCleaningResult,
    REGRESSION,
    TrialOutcome,
)
from .labeling import LabelingOutcome, LabelingSession, SimulatedUser
from .monitoring import (
    MonitoringReport,
    QualityMonitor,
    QualityRegression,
    VersionQuality,
)
from .nlrules import ParsedRule, RuleParseError, parse_rule, parse_rules
from .quality import (
    accuracy_against,
    completeness,
    consistency,
    quality_summary,
    uniqueness,
    validity,
)
from .registry import (
    COMPOSITE_PRESETS,
    detector_names,
    make_detector,
    make_repairer,
    register_detector,
    register_repairer,
    repairer_names,
)
from .tagging import TagRegistry

__all__ = [
    "ARTIFACT_CACHE_BYTES_ENV",
    "ARTIFACT_CACHE_ENV",
    "ArtifactStore",
    "CLASSIFICATION",
    "COMPOSITE_PRESETS",
    "cache_enabled_by_env",
    "cache_max_bytes_from_env",
    "estimate_artifact_bytes",
    "CellExplanation",
    "Evidence",
    "ParsedRule",
    "RuleParseError",
    "explain_cell",
    "explain_session",
    "parse_rule",
    "parse_rules",
    "DEFAULT_DETECTOR_CHOICES",
    "DEFAULT_REPAIRER_CHOICES",
    "DataLens",
    "DataLensSession",
    "DataSheet",
    "DatasetNotFoundError",
    "DownstreamScorer",
    "IterativeCleaner",
    "IterativeCleaningResult",
    "LabelingOutcome",
    "LabelingSession",
    "MonitoringReport",
    "QualityMonitor",
    "QualityRegression",
    "REGRESSION",
    "VersionQuality",
    "SimulatedUser",
    "TagRegistry",
    "TrialOutcome",
    "accuracy_against",
    "completeness",
    "consistency",
    "detector_names",
    "make_detector",
    "make_repairer",
    "quality_summary",
    "register_detector",
    "register_repairer",
    "repairer_names",
    "uniqueness",
    "validity",
]

"""The DataLens dashboard controller (Figure 1).

``DataLens`` owns the workspace (datasets on disk, Delta tables, tracking
store) and hands out per-dataset :class:`DataLensSession` objects that walk
through the paper's pipeline: ingest → profile → extract rules → detect
(multi-tool, consolidated) → user-in-the-loop → repair → version → emit
DataSheets, with every detection/repair run logged to the "Detection" /
"Repair" tracking experiments (§5).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..dataframe import Cell, DataFrame, sweep_orphaned_spill_dirs
from ..detection import (
    DetectionContext,
    DetectionResult,
    Detector,
    merge_results,
)
from ..fd import (
    FunctionalDependency,
    RuleSet,
    approximate_fds,
    discover_fds,
    discover_fds_hyfd,
)
from ..ingestion import DataLoader
from ..profiling import ProfileReport, profile
from ..repair import RepairResult
from ..tracking import DETECTION_EXPERIMENT, REPAIR_EXPERIMENT, TrackingClient
from ..versioning import DeltaTable
from .artifacts import ArtifactStore
from .datasheet import DataSheet
from .iterative import IterativeCleaner, IterativeCleaningResult
from .labeling import LabelingOutcome, LabelingSession
from .quality import quality_summary
from .registry import make_detector, make_repairer
from .tagging import TagRegistry


class DatasetNotFoundError(KeyError):
    """Unknown dataset name (the REST layer maps this to HTTP 404).

    Subclasses ``KeyError`` so historical ``except KeyError`` callers
    keep working, while letting the HTTP dispatcher distinguish "no such
    dataset" from a genuine handler bug raising ``KeyError``.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"no dataset named {name!r}")
        self.dataset = name

    def __str__(self) -> str:  # KeyError.__str__ would repr-quote the message
        return self.args[0]


class DataLensSession:
    """All state the dashboard holds for one ingested dataset.

    The session owns a content-addressed :class:`ArtifactStore`
    (``self.artifacts``): profiling, detection, quality scoring, and FD
    discovery all publish/reuse per-column and per-pair artifacts keyed
    by column fingerprints, so the paper's interactive loop (profile →
    detect → repair → re-profile → re-score) recomputes only what the
    last action actually changed. Because keys are content fingerprints,
    mutation and time travel never serve stale artifacts — a patched
    column simply misses and recomputes, while revisiting an old Delta
    version hits the entries computed for it earlier.
    """

    def __init__(
        self,
        controller: "DataLens",
        name: str,
        frame: DataFrame | None = None,
    ) -> None:
        self.controller = controller
        self.name = name
        self.workspace = controller.loader.workspace_for(name)
        # ``frame`` short-circuits the disk load for streaming ingestion:
        # the uploaded CSV was already parsed (and possibly spilled) on
        # its way into the workspace, so re-reading it would double the
        # ingest cost.
        self.frame: DataFrame = (
            frame if frame is not None else controller.loader.load(name)
        )
        self.delta = DeltaTable(self.workspace.delta_path)
        if self.delta.latest_version() is None:
            self.delta.write(self.frame, operation="upload")
        self.rule_set = RuleSet()
        self.tags = TagRegistry()
        self.labels: dict[Cell, bool] = {}
        # The controller may inject a store shared across sessions (and,
        # in the REST layer, across tenants): artifact keys are content
        # fingerprints, so identical columns uploaded by different users
        # deduplicate into the same cache entries.
        self.artifacts = (
            controller.artifact_store
            if controller.artifact_store is not None
            else ArtifactStore()
        )
        self.profile_report: ProfileReport | None = None
        self.detection_results: dict[str, DetectionResult] = {}
        self.detected_cells: set[Cell] = set()
        self.repair_result: RepairResult | None = None
        self.repaired_frame: DataFrame | None = None
        self.version_before_detection: int | None = None
        self.version_after_repair: int | None = None
        self.iterative_result: IterativeCleaningResult | None = None

    # ------------------------------------------------------------------
    # Versioning (§5, Delta Lake)
    # ------------------------------------------------------------------
    def load_version(self, version: int) -> DataFrame:
        """Time travel: make an earlier Delta version the working frame.

        Frame-derived state (profile report, detection results and
        consolidated cells, repair proposal) describes the *previous*
        working frame and is reset so no stale results leak into the new
        one. The artifact store survives: its keys are content
        fingerprints, so the loaded version re-profiles from the cache
        entries computed when its content was last seen.
        """
        self.frame = self.delta.read(version)
        self.invalidate_derived_state()
        return self.frame

    def invalidate_derived_state(self) -> None:
        """Drop analysis results tied to the previous working frame."""
        self.profile_report = None
        self.detection_results = {}
        self.detected_cells = set()
        self.repair_result = None

    def cache_stats(self) -> dict[str, Any]:
        """Hit/miss/eviction counters of the session's artifact store."""
        return self.artifacts.stats()

    def spill_stats(self) -> dict[str, Any]:
        """Residency counters of the working frame's spill store.

        ``{"enabled": False}`` when the frame is not spilled — never
        loaded with a spill configuration, or already materialized by a
        dense access.
        """
        from ..dataframe import spill_store_of

        store = spill_store_of(self.frame)
        if store is None:
            return {"enabled": False}
        return {"enabled": True, **store.stats()}

    def version_history(self) -> list[dict[str, Any]]:
        return [commit.to_dict() for commit in self.delta.history()]

    # ------------------------------------------------------------------
    # Profiling and rule extraction (§3)
    # ------------------------------------------------------------------
    def profile(self, n_jobs: int | None = None) -> ProfileReport:
        """Profile the working frame (chunk-aware, optionally parallel).

        ``n_jobs`` defaults to the controller-level ``profile_jobs``
        setting; frames ingested through a chunked loader profile via
        per-chunk partial aggregates either way. Runs through the
        session artifact store, so after a repair only artifacts
        touching patched columns recompute (bit-identically).
        """
        if n_jobs is None:
            n_jobs = self.controller.profile_jobs
        self.profile_report = profile(
            self.frame, n_jobs=n_jobs, store=self.artifacts
        )
        return self.profile_report

    def discover_rules(
        self,
        algorithm: str = "tane",
        max_lhs_size: int = 2,
        tolerance: float = 0.15,
    ) -> list[FunctionalDependency]:
        """Automated rule extraction; results await user validation."""
        if algorithm == "tane":
            rules = discover_fds(
                self.frame, max_lhs_size=max_lhs_size, store=self.artifacts
            )
        elif algorithm == "hyfd":
            rules = discover_fds_hyfd(
                self.frame, max_lhs_size=max_lhs_size, store=self.artifacts
            )
        elif algorithm == "approximate":
            rules = approximate_fds(
                self.frame, tolerance=tolerance, max_lhs_size=max_lhs_size
            )
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.rule_set.add_discovered(rules)
        return rules

    def confirm_rule(self, rule: FunctionalDependency) -> None:
        self.rule_set.set_status(rule, "confirmed")

    def reject_rule(self, rule: FunctionalDependency) -> None:
        self.rule_set.set_status(rule, "rejected")

    def add_custom_rule(
        self, determinants: Iterable[str], dependent: str, note: str = ""
    ) -> FunctionalDependency:
        """User-defined rule: at least one determinant plus one dependent."""
        determinants = tuple(determinants)
        if not determinants:
            raise ValueError("a custom rule needs at least one determinant")
        for column in (*determinants, dependent):
            if column not in self.frame:
                raise KeyError(f"unknown column {column!r}")
        rule = FunctionalDependency(determinants, dependent)
        self.rule_set.add_custom(rule, note=note)
        return rule

    def add_rule_from_text(self, text: str):
        """Natural-language rule definition (future work 1).

        FD sentences become confirmed custom rules; constraint sentences
        become value rules evaluated by NADEEF-style detection.
        """
        from .nlrules import parse_rule

        parsed = parse_rule(text, self.frame)
        if parsed.kind == "fd":
            self.rule_set.add_custom(parsed.rule, note=f"parsed from: {text}")
        else:
            self.rule_set.value_rules.append(parsed.rule)
        return parsed

    def explain_detections(self, limit: int = 20):
        """Explainability (future work 2): why cells were flagged/repaired."""
        from .explain import explain_session

        return explain_session(self, limit=limit)

    # ------------------------------------------------------------------
    # User-in-the-loop (§3)
    # ------------------------------------------------------------------
    def tag_value(self, value: Any) -> None:
        self.tags.tag(value)

    def label_cell(self, row: int, column: str, is_dirty: bool) -> None:
        if column not in self.frame or not 0 <= row < self.frame.num_rows:
            raise KeyError(f"cell ({row}, {column}) out of range")
        self.labels[(row, column)] = bool(is_dirty)

    def run_labeling_session(
        self,
        labeler: Callable[[int, DataFrame], dict[Cell, bool]],
        budget: int = 20,
        clusters_per_column: int | None = None,
    ) -> LabelingOutcome:
        """Interactive RAHA labeling; detections land in the result set."""
        session = LabelingSession(
            budget=budget,
            clusters_per_column=clusters_per_column,
            seed=self.controller.seed,
            initial_labels=self.labels,
        )
        outcome = session.run(self.frame, labeler)
        self.labels.update(outcome.labels)
        self._record_detection("raha", outcome.detection)
        return outcome

    # ------------------------------------------------------------------
    # Detection (§3)
    # ------------------------------------------------------------------
    def detection_context(self) -> DetectionContext:
        return DetectionContext(
            rules=self.rule_set.active_rules(),
            value_rules=list(self.rule_set.value_rules),
            labels=dict(self.labels),
            tagged_values=set(self.tags.values()),
            seed=self.controller.seed,
            artifact_store=self.artifacts,
        )

    def run_detection(
        self,
        tools: Iterable[str | Detector],
        include_tags: bool = True,
    ) -> set[Cell]:
        """Execute the selected tools sequentially and consolidate.

        Detections are merged into a single deduplicated set; tagged values
        contribute their own ``user_tags`` result. Mirrors the sequential
        backend execution described in §3.
        """
        if self.version_before_detection is None:
            self.version_before_detection = self.delta.latest_version()
        context = self.detection_context()
        for tool in tools:
            detector = tool if isinstance(tool, Detector) else make_detector(tool)
            result = detector.detect(self.frame, context)
            self._record_detection(detector.name, result)
        if include_tags and len(self.tags):
            self._record_detection("user_tags", self.tags.search(self.frame))
        self.detected_cells = merge_results(list(self.detection_results.values()))
        return set(self.detected_cells)

    def check_referential_integrity(
        self,
        parent: DataFrame,
        on: Sequence[str],
        parent_on: Sequence[str] | None = None,
        strategy: str | None = None,
    ) -> DetectionResult:
        """Cross-table check: child keys must exist in ``parent``.

        Runs the ``referential_integrity`` detector (a chunk-native semi
        join, spill-aware on out-of-core frames) against this session's
        frame and folds the violations into the consolidated detection
        set like any other tool.
        """
        from ..detection import ReferentialIntegrityDetector

        if self.version_before_detection is None:
            self.version_before_detection = self.delta.latest_version()
        detector = ReferentialIntegrityDetector(
            on=on, parent=parent, parent_on=parent_on, strategy=strategy
        )
        result = detector.detect(self.frame, self.detection_context())
        self._record_detection(detector.name, result)
        return result

    def _record_detection(self, name: str, result: DetectionResult) -> None:
        self.detection_results[name] = result
        self.detected_cells |= result.cells
        tracker = self.controller.tracking
        with tracker.start_run(DETECTION_EXPERIMENT, f"{self.name}:{name}"):
            tracker.log_params({"dataset": self.name, "tool": name, **result.config})
            tracker.log_metric("num_cells", float(len(result.cells)))
            tracker.log_metric("runtime_seconds", result.runtime_seconds)

    def detection_summary(self) -> dict[str, dict[str, float]]:
        """Per-tool, per-column detection rates (Figure 4's series)."""
        summary: dict[str, dict[str, float]] = {}
        for name, result in self.detection_results.items():
            rates = {}
            for column in self.frame.column_names:
                hits = len(result.cells_in_column(column))
                rates[column] = (
                    hits / self.frame.num_rows if self.frame.num_rows else 0.0
                )
            summary[name] = rates
        return summary

    # ------------------------------------------------------------------
    # Repair (§3)
    # ------------------------------------------------------------------
    def run_repair(self, tool: str = "ml_imputer", **params: Any) -> DataFrame:
        """Repair the consolidated detections; store and version the output.

        The session artifact store rides along: HoloClean repair reuses
        the ``repair:tokens`` / ``repair:cooccurrence`` artifacts the
        detector published for the same column content, so a detect →
        repair cycle whose detected cells are already null fits the
        co-occurrence model exactly once.
        """
        if not self.detected_cells:
            raise RuntimeError("run detection before repair")
        repairer = make_repairer(tool, **params)
        result = repairer.repair(
            self.frame, self.detected_cells, store=self.artifacts
        )
        repaired = result.apply_to(self.frame)
        self.repair_result = result
        self.repaired_frame = repaired
        path = self.controller.loader.save_repaired(self.name, repaired)
        self.version_after_repair = self.delta.write(
            repaired, operation="repair", metadata={"tool": tool}
        )
        tracker = self.controller.tracking
        with tracker.start_run(REPAIR_EXPERIMENT, f"{self.name}:{tool}"):
            tracker.log_params({"dataset": self.name, "tool": tool, **result.config})
            tracker.log_metric("num_repairs", float(len(result.repairs)))
            tracker.log_metric("runtime_seconds", result.runtime_seconds)
            tracker.log_text_artifact("repaired_path.txt", str(path))
        return repaired

    # ------------------------------------------------------------------
    # Quality, iterative cleaning, DataSheets
    # ------------------------------------------------------------------
    def quality_metrics(self, frame: DataFrame | None = None) -> dict[str, float]:
        target = frame if frame is not None else self.frame
        return quality_summary(
            target,
            rules=self.rule_set.confirmed_rules(),
            store=self.artifacts,
        )

    def iterative_clean(
        self,
        task: str,
        target: str,
        n_iterations: int = 20,
        model: str = "decision_tree",
        sampler: str = "tpe",
        reference: DataFrame | None = None,
        **kwargs: Any,
    ) -> IterativeCleaningResult:
        """Delegate to the iterative cleaning module (§4)."""
        cleaner = IterativeCleaner(
            task=task,
            target=target,
            model=model,
            sampler=sampler,
            seed=self.controller.seed,
            **kwargs,
        )
        result = cleaner.clean(
            self.frame,
            n_iterations=n_iterations,
            reference=reference,
            context=self.detection_context(),
        )
        self.iterative_result = result
        return result

    def generate_datasheet(self) -> DataSheet:
        """Compile the §5 DataSheet for the session's current pipeline."""
        sheet = DataSheet(
            dataset_name=self.name,
            dirty_path=str(self.workspace.dirty_path),
            repaired_path=str(self.workspace.repaired_path()),
            num_rows=self.frame.num_rows,
            num_columns=self.frame.num_columns,
            detection_tools=[
                {"name": name, "config": result.config}
                for name, result in self.detection_results.items()
                if name != "user_tags"
            ],
            num_erroneous_cells=len(self.detected_cells),
            repair_tools=(
                [
                    {
                        "name": self.repair_result.tool,
                        "config": self.repair_result.config,
                    }
                ]
                if self.repair_result is not None
                else []
            ),
            rules=[rule.to_dict() for rule in self.rule_set.confirmed_rules()],
            tagged_values=[str(v) for v in self.tags.values()],
            quality_before=self.quality_metrics(self.frame),
            quality_after=(
                self.quality_metrics(self.repaired_frame)
                if self.repaired_frame is not None
                else {}
            ),
            version_before_detection=self.version_before_detection,
            version_after_repair=self.version_after_repair,
            hyperparameters=(
                dict(self.iterative_result.best_params)
                if self.iterative_result is not None
                else {}
            ),
        )
        return sheet

    def save_datasheet(self, file_name: str = "datasheet.json") -> Path:
        sheet = self.generate_datasheet()
        return sheet.save(self.workspace.root / file_name)


class DataLens:
    """Workspace-level entry point: ingestion plus shared services.

    ``chunk_size`` makes every session load its dataset as a streamed
    :class:`~repro.dataframe.ChunkedFrame` (sharded storage, per-chunk
    profiling partials); ``spill_budget`` / ``spill_dir`` additionally
    spill the shards to disk behind a byte-bounded resident cache (see
    :mod:`repro.dataframe.spill`), which is how a dataset larger than
    RAM is served; ``profile_jobs`` sets the default thread count for
    :meth:`DataLensSession.profile` (None/1 = serial, -1 = all cores).
    All default to off, and results are bit-identical either way.
    """

    def __init__(
        self,
        workspace_dir: str | Path,
        seed: int = 0,
        chunk_size: int | None = None,
        profile_jobs: int | None = None,
        spill_budget: int | None = None,
        spill_dir: str | Path | None = None,
        artifact_store: ArtifactStore | None = None,
    ) -> None:
        self.workspace_dir = Path(workspace_dir)
        self.loader = DataLoader(
            self.workspace_dir / "datasets",
            chunk_size=chunk_size,
            spill_budget=spill_budget,
            spill_dir=spill_dir,
        )
        self.tracking = TrackingClient(self.workspace_dir / "mlruns")
        self.seed = seed
        self.profile_jobs = profile_jobs
        #: When set, every session shares this store instead of owning
        #: one — the multi-tenant REST layer passes the same store to
        #: every tenant's controller so identical column content
        #: deduplicates across users (keys are content fingerprints).
        self.artifact_store = artifact_store
        self._sessions: dict[str, DataLensSession] = {}
        # Guards lazy session opening: two concurrent requests touching
        # a dataset for the first time must share one session object,
        # not race ``_open`` into two divergent copies of its state.
        self._session_lock = threading.RLock()
        # Startup hygiene: reclaim spill directories abandoned by
        # crashed sessions (best-effort; never blocks startup).
        try:
            sweep_orphaned_spill_dirs()
        except Exception:  # noqa: BLE001 — sweeping is opportunistic
            pass

    # ------------------------------------------------------------------
    def ingest_frame(self, name: str, frame: DataFrame) -> DataLensSession:
        self.loader.ingest_frame(name, frame)
        return self._open(name)

    def ingest_csv(self, path: str | Path) -> DataLensSession:
        workspace = self.loader.ingest_csv(path)
        return self._open(workspace.name)

    def ingest_preloaded(self, name: str) -> DataLensSession:
        self.loader.ingest_preloaded(name)
        return self._open(name)

    def ingest_sql(self, database: str | Path, table: str) -> DataLensSession:
        workspace = self.loader.ingest_sql(database, table)
        return self._open(workspace.name)

    def ingest_csv_stream(
        self, name: str, lines: Iterator[str] | Iterable[str]
    ) -> DataLensSession:
        """Stream CSV lines into a dataset in one pass (REST upload path).

        The lines are tee'd to the workspace's ``dirty.csv`` while being
        parsed by the chunked reader under the controller's chunk/spill
        configuration, so an upload larger than RAM is persisted and
        packed (spilled shard by shard) without ever materializing — the
        session then starts from the already-parsed frame.
        """
        workspace, frame = self.loader.ingest_csv_stream(name, lines)
        return self._open(workspace.name, frame=frame)

    def _open(self, name: str, frame: DataFrame | None = None) -> DataLensSession:
        with self._session_lock:
            session = DataLensSession(self, name, frame=frame)
            self._sessions[name] = session
            return session

    def session(self, name: str) -> DataLensSession:
        with self._session_lock:
            if name not in self._sessions:
                if name in self.loader.list_datasets():
                    return self._open(name)
                raise DatasetNotFoundError(name)
            return self._sessions[name]

    def list_datasets(self) -> list[str]:
        return self.loader.list_datasets()

"""Tuple labeling sessions — the user-in-the-loop workflow of Figure 3.

The dashboard asks the user for a labeling budget ``N``, then presents
tuples sequentially; the user marks dirty cells or skips clean tuples.
This module provides the session bookkeeping plus a :class:`SimulatedUser`
that answers from a ground-truth error mask (optionally with noise), which
is what lets the repository *measure* labeling effort the way the paper
does ("DataLens allows us to quantify the actual labeling effort").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..dataframe import Cell, DataFrame
from ..detection import DetectionContext, DetectionResult, RAHADetector


class SimulatedUser:
    """Answers labeling requests from a ground-truth error mask."""

    def __init__(
        self,
        mask: set[Cell],
        noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= noise < 1.0:
            raise ValueError("noise must be in [0, 1)")
        self.mask = set(mask)
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def __call__(self, row: int, frame: DataFrame) -> dict[Cell, bool]:
        """Label every cell of the presented tuple."""
        labels: dict[Cell, bool] = {}
        for column in frame.column_names:
            truth = (row, column) in self.mask
            if self.noise > 0.0 and self._rng.random() < self.noise:
                truth = not truth
            labels[(row, column)] = truth
        return labels


@dataclass
class LabelingOutcome:
    """Result of one labeling session driving RAHA."""

    budget: int
    reviewed_tuples: int
    labeled_tuples: int
    labels: dict[Cell, bool]
    detection: DetectionResult
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def review_overhead(self) -> float:
        """Reviewed-to-labeled ratio (>= 1; the Figure 3 discrepancy)."""
        if self.labeled_tuples == 0:
            return float(self.reviewed_tuples) if self.reviewed_tuples else 1.0
        return self.reviewed_tuples / self.labeled_tuples


class LabelingSession:
    """Run RAHA's label-and-propagate loop under a tuple budget."""

    def __init__(
        self,
        budget: int = 20,
        clusters_per_column: int | None = None,
        seed: int = 0,
        initial_labels: dict[Cell, bool] | None = None,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self.clusters_per_column = clusters_per_column
        self.seed = seed
        self.initial_labels = dict(initial_labels or {})

    def run(
        self,
        frame: DataFrame,
        labeler: Callable[[int, DataFrame], dict[Cell, bool]],
    ) -> LabelingOutcome:
        """Execute the session and return labels plus RAHA's detections."""
        context = DetectionContext(
            labels=dict(self.initial_labels),
            labeler=labeler,
            labeling_budget=self.budget,
            seed=self.seed,
        )
        detector = RAHADetector(
            labeling_budget=self.budget,
            clusters_per_column=self.clusters_per_column,
            seed=self.seed,
        )
        detection = detector.detect(frame, context)
        return LabelingOutcome(
            budget=self.budget,
            reviewed_tuples=int(detection.metadata.get("reviewed_tuples", 0)),
            labeled_tuples=int(detection.metadata.get("labeled_tuples", 0)),
            labels=dict(context.labels),
            detection=detection,
            metadata=dict(detection.metadata),
        )

"""Statistical outlier detectors: standard deviation (SD) and IQR."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Cell, DataFrame
from .base import DetectionContext, Detector


class SDDetector(Detector):
    """Flag numeric cells more than ``k`` standard deviations from the mean."""

    name = "sd"

    def __init__(self, k: float = 3.0, columns: list[str] | None = None) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        super().__init__(k=k, columns=columns)
        self.k = k
        self.columns = columns

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        names = self.columns or frame.numeric_column_names()
        for name in names:
            column = frame.column(name)
            if not column.is_numeric():
                continue
            mask = column.mask()
            finite = column.values_array()[~mask].astype(float)
            if len(finite) < 3:
                continue
            mean = float(np.mean(finite))
            std = float(np.std(finite))
            if std == 0.0:
                continue
            z = np.abs(column.values_array().astype(float) - mean) / std
            flagged = (z > self.k) & ~mask
            for row in np.flatnonzero(flagged).tolist():
                cell = (row, name)
                cells.add(cell)
                scores[cell] = float(z[row])
        return cells, scores, {"columns_checked": list(names)}


class IQRDetector(Detector):
    """Flag numeric cells outside ``[q1 - f*IQR, q3 + f*IQR]``."""

    name = "iqr"

    def __init__(self, factor: float = 1.5, columns: list[str] | None = None) -> None:
        if factor <= 0:
            raise ValueError("factor must be positive")
        super().__init__(factor=factor, columns=columns)
        self.factor = factor
        self.columns = columns

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        names = self.columns or frame.numeric_column_names()
        for name in names:
            column = frame.column(name)
            if not column.is_numeric():
                continue
            mask = column.mask()
            values = column.values_array().astype(float)
            finite = values[~mask]
            if len(finite) < 4:
                continue
            q1, q3 = np.quantile(finite, [0.25, 0.75])
            iqr = float(q3 - q1)
            if iqr == 0.0:
                continue
            low = q1 - self.factor * iqr
            high = q3 + self.factor * iqr
            outside = ((values < low) | (values > high)) & ~mask
            distances = np.maximum(low - values, values - high) / iqr
            for row in np.flatnonzero(outside).tolist():
                cell = (row, name)
                cells.add(cell)
                scores[cell] = float(distances[row])
        return cells, scores, {"columns_checked": list(names)}

"""Statistical outlier detectors: standard deviation (SD) and IQR.

Both detectors are chunk-aware: the distribution statistics come from
the gathered non-missing payload (element-identical to the monolithic
compression, so mean/std/quantiles are bit-identical), and the flagging
pass then walks the column's shards with a running row offset — the
z-score / fence comparisons are elementwise, so chunk boundaries cannot
change which cells are flagged or their scores.

Both publish per-column detection masks into the context's artifact
store (when one is attached): the flagged ``(row, score)`` pairs are a
pure function of column content, so a re-run after a repair recomputes
only the repaired columns' masks.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from ..dataframe import Cell, Column, DataFrame
from ..dataframe.chunked import compressed_chunks, gather_compressed
from .base import DetectionContext, Detector


def _shard_arrays(column: Column) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Yield ``(row_offset, float values, mask)`` per shard, in row order."""
    offset = 0
    for chunk in column.iter_chunks():
        mask = np.asarray(chunk.mask())
        yield offset, chunk.values_array().astype(float), mask
        offset += len(chunk)


def _gather_finite(column: Column) -> np.ndarray:
    """All non-missing values as one float array (chunk order = row order)."""
    return gather_compressed(compressed_chunks(column))


def _column_mask_cached(store, kind: str, column: Column, params, compute):
    """Per-column detection mask via the artifact store (duck-typed).

    ``compute`` returns ``((row, score), ...)`` pairs for one column —
    pure content functions, cached under the column's fingerprint.
    """
    if not store:  # None or disabled: true cold path, no hashing
        return compute()
    return store.cached(kind, (column.fingerprint(),), params, compute)


class SDDetector(Detector):
    """Flag numeric cells more than ``k`` standard deviations from the mean."""

    name = "sd"

    def __init__(self, k: float = 3.0, columns: list[str] | None = None) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        super().__init__(k=k, columns=columns)
        self.k = k
        self.columns = columns

    def _column_pairs(self, column: Column) -> tuple[tuple[int, float], ...]:
        """Flagged ``(row, z-score)`` pairs for one column, in row order."""
        finite = _gather_finite(column)
        if len(finite) < 3:
            return ()
        mean = float(np.mean(finite))
        std = float(np.std(finite))
        if std == 0.0:
            return ()
        pairs: list[tuple[int, float]] = []
        for offset, values, mask in _shard_arrays(column):
            z = np.abs(values - mean) / std
            flagged = (z > self.k) & ~mask
            for local in np.flatnonzero(flagged).tolist():
                pairs.append((offset + local, float(z[local])))
        return tuple(pairs)

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        names = self.columns or frame.numeric_column_names()
        store = getattr(context, "artifact_store", None)
        for name in names:
            column = frame.column(name)
            if not column.is_numeric():
                continue
            pairs = _column_mask_cached(
                store, "detect:sd", column, (self.k,),
                lambda column=column: self._column_pairs(column),
            )
            for row, score in pairs:
                cell = (row, name)
                cells.add(cell)
                scores[cell] = score
        return cells, scores, {"columns_checked": list(names)}


class IQRDetector(Detector):
    """Flag numeric cells outside ``[q1 - f*IQR, q3 + f*IQR]``."""

    name = "iqr"

    def __init__(self, factor: float = 1.5, columns: list[str] | None = None) -> None:
        if factor <= 0:
            raise ValueError("factor must be positive")
        super().__init__(factor=factor, columns=columns)
        self.factor = factor
        self.columns = columns

    def _column_pairs(self, column: Column) -> tuple[tuple[int, float], ...]:
        """Flagged ``(row, fence distance)`` pairs for one column."""
        finite = _gather_finite(column)
        if len(finite) < 4:
            return ()
        q1, q3 = np.quantile(finite, [0.25, 0.75])
        iqr = float(q3 - q1)
        if iqr == 0.0:
            return ()
        low = q1 - self.factor * iqr
        high = q3 + self.factor * iqr
        pairs: list[tuple[int, float]] = []
        for offset, values, mask in _shard_arrays(column):
            outside = ((values < low) | (values > high)) & ~mask
            distances = np.maximum(low - values, values - high) / iqr
            for local in np.flatnonzero(outside).tolist():
                pairs.append((offset + local, float(distances[local])))
        return tuple(pairs)

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        names = self.columns or frame.numeric_column_names()
        store = getattr(context, "artifact_store", None)
        for name in names:
            column = frame.column(name)
            if not column.is_numeric():
                continue
            pairs = _column_mask_cached(
                store, "detect:iqr", column, (self.factor,),
                lambda column=column: self._column_pairs(column),
            )
            for row, score in pairs:
                cell = (row, name)
                cells.add(cell)
                scores[cell] = score
        return cells, scores, {"columns_checked": list(names)}

"""MV Detector — explicit missing-value detection."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Cell, DataFrame
from ..dataframe.types import NULL_TOKENS
from .base import DetectionContext, Detector


def _unique_with_codes(column, codes: np.ndarray):
    """Yield one (value, code) representative per distinct value code.

    Streams the column's shards (a monolithic column is one shard) so a
    spilled column is not densified just to read one cell per code; the
    consumer indexes verdicts by code, so yield order does not matter.
    """
    _, first_indices = np.unique(codes, return_index=True)
    targets = np.sort(first_indices).tolist()
    position = 0
    offset = 0
    for chunk in column.iter_chunks():
        end = offset + len(chunk)
        data = None
        while position < len(targets) and targets[position] < end:
            index = targets[position]
            if data is None:
                data = chunk.values_array()
            yield data[index - offset], int(codes[index])
            position += 1
        if position == len(targets):
            return
        offset = end


class MVDetector(Detector):
    """Flag truly-missing cells and string cells spelling a null token.

    CSV ingestion already parses tokens like ``"NA"`` into missing cells,
    but frames built in memory (or loaded from SQL) can still carry textual
    nulls, so both representations are covered.

    Chunk-aware: the null-token verdict is decided once per distinct
    value on the column's cross-chunk ``codes()`` (equal strings in
    different chunks share one code), then the flagging pass walks the
    shards with a running row offset. Per-column flagged rows are
    published to the context's artifact store (keyed by column
    fingerprint and the token set), so re-runs recompute only columns a
    repair actually changed.
    """

    name = "mv_detector"

    def __init__(self, extra_null_tokens: set[str] | None = None) -> None:
        super().__init__(
            extra_null_tokens=sorted(extra_null_tokens) if extra_null_tokens else []
        )
        self.null_tokens = set(NULL_TOKENS)
        if extra_null_tokens:
            self.null_tokens |= {token.lower() for token in extra_null_tokens}

    def _column_rows(self, column) -> tuple[int, ...]:
        """Flagged row indices for one column (truly missing + null tokens)."""
        bad_by_code: np.ndarray | None = None
        codes: np.ndarray | None = None
        if column.dtype == "string" and len(column):
            # Test each *distinct* value once against the null tokens
            # and broadcast the verdict back through the value codes.
            codes, n_groups = column.codes()
            bad_by_code = np.zeros(n_groups, dtype=bool)
            for value, code in _unique_with_codes(column, codes):
                bad_by_code[code] = (
                    isinstance(value, str)
                    and value.strip().lower() in self.null_tokens
                )
        rows: list[int] = []
        offset = 0
        for chunk in column.iter_chunks():
            flagged = np.asarray(chunk.mask()).copy()
            if bad_by_code is not None:
                flagged |= bad_by_code[codes[offset : offset + len(chunk)]]
            for local in np.flatnonzero(flagged).tolist():
                rows.append(offset + local)
            offset += len(chunk)
        return tuple(rows)

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        cells: set[Cell] = set()
        store = getattr(context, "artifact_store", None)
        params = tuple(sorted(self.null_tokens))
        for name in frame.column_names:
            column = frame.column(name)
            if not store:  # falsy when disabled: cold path, no hashing
                rows = self._column_rows(column)
            else:
                rows = store.cached(
                    "detect:mv", (column.fingerprint(),), params,
                    lambda column=column: self._column_rows(column),
                )
            cells.update((row, name) for row in rows)
        scores = {cell: 1.0 for cell in cells}
        return cells, scores, {}

"""FAHES-style disguised-missing-value detection.

Disguised missing values (DMVs) are legal-looking placeholders — ``-1``,
``0``, ``99999``, ``"N/A"`` — that encode "unknown" without being null.
Following the FAHES system, three evidence channels are combined:

1. *Syntactic outliers*: string values whose character-class pattern is
   rare within the column yet repeats across rows (e.g. ``99999`` inside a
   name column).
2. *Null-like strings*: tokens from a dictionary of missing-data spellings.
3. *Numeric DMV candidates*: repeated values sitting at the domain boundary
   and detached from the bulk of the distribution (the "RAND" check), plus
   well-known sentinel constants when over-represented.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

import numpy as np

from ..dataframe import Cell, Column, DataFrame
from .base import DetectionContext, Detector

NULL_LIKE_STRINGS = {
    "n/a", "na", "none", "null", "missing", "unknown", "undefined", "?",
    "-", "--", "998", "999", "9999", "99999", "xx", "xxx",
}

SENTINEL_NUMBERS = (-99.0, -9.0, -1.0, 0.0, 999.0, 9999.0, 99999.0)


def pattern_signature(text: str) -> str:
    """Collapse characters into classes: letters->a, digits->9, other kept."""
    out = []
    for char in text:
        if char.isalpha():
            out.append("a")
        elif char.isdigit():
            out.append("9")
        else:
            out.append(char)
    # Run-length collapse so 'abc' and 'abcd' share the signature 'a+'.
    collapsed = []
    for char in out:
        if not collapsed or collapsed[-1] != char:
            collapsed.append(char)
    return "".join(collapsed)


class FAHESDetector(Detector):
    """Detect disguised missing values in numeric and string columns."""

    name = "fahes"

    def __init__(
        self,
        min_repeats: int = 3,
        rare_pattern_fraction: float = 0.05,
        boundary_gap_factor: float = 1.5,
    ) -> None:
        super().__init__(
            min_repeats=min_repeats,
            rare_pattern_fraction=rare_pattern_fraction,
            boundary_gap_factor=boundary_gap_factor,
        )
        self.min_repeats = min_repeats
        self.rare_pattern_fraction = rare_pattern_fraction
        self.boundary_gap_factor = boundary_gap_factor

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        cells: set[Cell] = set()
        dmvs: dict[str, list[Any]] = {}
        for name in frame.column_names:
            column = frame.column(name)
            if column.is_numeric():
                suspicious = self._numeric_dmvs(column)
            else:
                suspicious = self._string_dmvs(column)
            if not suspicious:
                continue
            dmvs[name] = sorted(suspicious, key=str)
            for row, value in enumerate(column):
                if value in suspicious:
                    cells.add((row, name))
        scores = {cell: 1.0 for cell in cells}
        return cells, scores, {"dmvs_per_column": dmvs}

    # ------------------------------------------------------------------
    def _numeric_dmvs(self, column: Column) -> set[Any]:
        values = [float(v) for v in column.non_missing()]
        if len(values) < 8:
            return set()
        counts = Counter(values)
        array = np.array(values)
        suspicious: set[Any] = set()
        for value, count in counts.items():
            if count < self.min_repeats:
                continue
            others = array[array != value]
            if len(others) < 4:
                continue
            q1, q3 = np.quantile(others, [0.25, 0.75])
            iqr = float(q3 - q1)
            spread = iqr if iqr > 0 else float(np.std(others)) or 1.0
            at_boundary = value <= float(others.min()) or value >= float(others.max())
            detached = (
                value < q1 - self.boundary_gap_factor * spread
                or value > q3 + self.boundary_gap_factor * spread
            )
            is_sentinel = any(np.isclose(value, s) for s in SENTINEL_NUMBERS)
            if detached and (at_boundary or is_sentinel):
                suspicious.add(self._native(column, value))
            elif is_sentinel and detached:
                suspicious.add(self._native(column, value))
        return suspicious

    @staticmethod
    def _native(column: Column, value: float) -> Any:
        if column.dtype == "int" and float(value).is_integer():
            return int(value)
        return value

    # ------------------------------------------------------------------
    def _string_dmvs(self, column: Column) -> set[Any]:
        values = [str(v) for v in column.non_missing()]
        if not values:
            return set()
        counts = Counter(values)
        suspicious: set[Any] = set()
        # Channel 2: dictionary of null spellings.
        for value in counts:
            if value.strip().lower() in NULL_LIKE_STRINGS:
                suspicious.add(value)
        # Channel 1: repeated syntactic outliers.
        patterns = Counter(pattern_signature(v) for v in values)
        total = len(values)
        for value, count in counts.items():
            if value in suspicious or count < self.min_repeats:
                continue
            share = patterns[pattern_signature(value)] / total
            if share <= self.rare_pattern_fraction:
                suspicious.add(value)
        return suspicious

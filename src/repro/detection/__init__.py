"""Automated error detection tools (§3 of the paper)."""

from .base import (
    DetectionContext,
    DetectionResult,
    Detector,
    merge_results,
    run_tools,
    summarize_by_column,
)
from .ensemble import IntersectionEnsemble, MinKEnsemble, UnionEnsemble
from .fahes import FAHESDetector, pattern_signature
from .holoclean import CooccurrenceModel, HoloCleanDetector
from .isolation import IsolationForestDetector
from .katara import KATARADetector, KnowledgeBase, default_knowledge_base
from .mvdetector import MVDetector
from .nadeef import NADEEFDetector
from .outliers import IQRDetector, SDDetector
from .raha import RAHADetector, featurize_column
from .referential import ReferentialIntegrityDetector

__all__ = [
    "CooccurrenceModel",
    "DetectionContext",
    "DetectionResult",
    "Detector",
    "FAHESDetector",
    "HoloCleanDetector",
    "IQRDetector",
    "IntersectionEnsemble",
    "IsolationForestDetector",
    "KATARADetector",
    "KnowledgeBase",
    "MVDetector",
    "MinKEnsemble",
    "NADEEFDetector",
    "RAHADetector",
    "ReferentialIntegrityDetector",
    "SDDetector",
    "UnionEnsemble",
    "default_knowledge_base",
    "featurize_column",
    "merge_results",
    "pattern_signature",
    "run_tools",
    "summarize_by_column",
]

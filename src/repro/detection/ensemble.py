"""Ensemble detectors: Min-K voting and union/intersection combinations.

The paper's Min-K "combines the detections of multiple methods" (§3): a
cell counts as an error when at least ``k`` member tools flag it. ``k=1``
is the plain deduplicated union DataLens computes when several tools are
selected; ``k = len(members)`` is the intersection.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ..dataframe import Cell, DataFrame
from .base import DetectionContext, DetectionResult, Detector


class MinKEnsemble(Detector):
    """Vote across member detectors; keep cells with >= k votes."""

    name = "min_k"

    def __init__(self, members: list[Detector], k: int = 2) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        if not 1 <= k <= len(members):
            raise ValueError("k must be between 1 and the number of members")
        super().__init__(
            k=k, members=[member.describe() for member in members]
        )
        self.members = members
        self.k = k

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        votes: Counter = Counter()
        member_results: list[DetectionResult] = []
        for member in self.members:
            result = member.detect(frame, context)
            member_results.append(result)
            votes.update(result.cells)
        cells = {cell for cell, count in votes.items() if count >= self.k}
        scores = {
            cell: count / len(self.members)
            for cell, count in votes.items()
            if count >= self.k
        }
        metadata = {
            "member_cells": {
                result.tool: len(result.cells) for result in member_results
            },
            "votes": {str(cell): count for cell, count in votes.most_common(20)},
        }
        return cells, scores, metadata


class UnionEnsemble(MinKEnsemble):
    """Deduplicated union of member detections (Min-K with k=1)."""

    name = "union"

    def __init__(self, members: list[Detector]) -> None:
        super().__init__(members, k=1)
        self.name = "union"


class IntersectionEnsemble(MinKEnsemble):
    """Cells every member agrees on (Min-K with k = #members)."""

    name = "intersection"

    def __init__(self, members: list[Detector]) -> None:
        super().__init__(members, k=len(members))
        self.name = "intersection"

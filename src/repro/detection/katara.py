"""KATARA-style knowledge-based error detection.

KATARA aligns table columns with a curated knowledge base (KB): columns are
matched to semantic types by value coverage, and column pairs are matched to
KB relations; cells that disagree with the aligned knowledge are flagged.
The KB here is a small networkx-backed store with typed value nodes and
binary relations — enough to exercise the same alignment/flagging pipeline
the real system runs against web-scale KBs.
"""

from __future__ import annotations

from typing import Any, Iterable

import networkx as nx

from ..dataframe import Cell, DataFrame
from .base import DetectionContext, Detector


class KnowledgeBase:
    """Typed value dictionaries plus binary relations between them."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._types: dict[str, set[str]] = {}
        self._relations: dict[tuple[str, str], dict[str, set[str]]] = {}

    # ------------------------------------------------------------------
    def add_type(self, type_name: str, values: Iterable[Any]) -> None:
        """Register a semantic type and its valid surface forms."""
        normalized = {self._norm(v) for v in values}
        self._types.setdefault(type_name, set()).update(normalized)
        for value in normalized:
            self.graph.add_node((type_name, value), kind="value")

    def add_relation(
        self, left_type: str, right_type: str, pairs: Iterable[tuple[Any, Any]]
    ) -> None:
        """Register valid (left, right) pairs, e.g. city -> state."""
        key = (left_type, right_type)
        table = self._relations.setdefault(key, {})
        for left, right in pairs:
            left_n, right_n = self._norm(left), self._norm(right)
            table.setdefault(left_n, set()).add(right_n)
            self._types.setdefault(left_type, set()).add(left_n)
            self._types.setdefault(right_type, set()).add(right_n)
            self.graph.add_edge(
                (left_type, left_n), (right_type, right_n), relation=key
            )

    @staticmethod
    def _norm(value: Any) -> str:
        return str(value).strip().lower()

    # ------------------------------------------------------------------
    def type_names(self) -> list[str]:
        return sorted(self._types)

    def values_of(self, type_name: str) -> set[str]:
        return self._types.get(type_name, set())

    def match_column(
        self, values: list[Any], min_coverage: float = 0.6
    ) -> tuple[str | None, float]:
        """Best-covering semantic type for a column.

        Coverage is row-weighted (fraction of non-missing cells whose value
        appears in the type's vocabulary), so a handful of typo variants
        cannot mask an otherwise well-aligned column.
        """
        normalized = [self._norm(v) for v in values if v is not None]
        if not normalized:
            return None, 0.0
        best_type, best_coverage = None, 0.0
        for type_name, vocabulary in sorted(self._types.items()):
            hits = sum(1 for value in normalized if value in vocabulary)
            coverage = hits / len(normalized)
            if coverage > best_coverage:
                best_type, best_coverage = type_name, coverage
        if best_coverage >= min_coverage:
            return best_type, best_coverage
        return None, best_coverage

    def relation_for(
        self, left_type: str, right_type: str
    ) -> dict[str, set[str]] | None:
        return self._relations.get((left_type, right_type))


def default_knowledge_base() -> KnowledgeBase:
    """KB covering the bundled datasets (US geography + beer styles)."""
    kb = KnowledgeBase()
    city_state = [
        ("BIRMINGHAM", "AL"), ("DOTHAN", "AL"), ("BOAZ", "AL"),
        ("FLORENCE", "AL"), ("SHEFFIELD", "AL"), ("OPP", "AL"),
        ("LUVERNE", "AL"), ("CENTRE", "AL"), ("GADSDEN", "AL"),
        ("JACKSONVILLE", "FL"), ("MIAMI", "FL"), ("TAMPA", "FL"),
        ("ATLANTA", "GA"), ("SAVANNAH", "GA"), ("MACON", "GA"),
    ]
    kb.add_type("us_state", [state for _, state in city_state])
    kb.add_type("us_city", [city for city, _ in city_state])
    kb.add_relation("us_city", "us_state", city_state)
    kb.add_type(
        "beer_style",
        [
            "American IPA", "American Pale Ale", "Stout", "Porter",
            "Lager", "Hefeweizen", "Pilsner", "Saison",
        ],
    )
    kb.add_type(
        "medical_condition",
        [
            "Heart Attack", "Heart Failure", "Pneumonia",
            "Surgical Infection Prevention",
        ],
    )
    return kb


class KATARADetector(Detector):
    """Flag cells that disagree with the aligned knowledge base."""

    name = "katara"

    def __init__(self, min_coverage: float = 0.6) -> None:
        super().__init__(min_coverage=min_coverage)
        self.min_coverage = min_coverage

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        kb: KnowledgeBase = context.knowledge_base or default_knowledge_base()
        cells: set[Cell] = set()
        alignments: dict[str, str] = {}
        for name in frame.categorical_column_names():
            column_values = frame.column(name).values()
            type_name, coverage = kb.match_column(
                column_values, min_coverage=self.min_coverage
            )
            if type_name is None:
                continue
            alignments[name] = type_name
            vocabulary = kb.values_of(type_name)
            for row, value in enumerate(column_values):
                if value is None:
                    continue
                if KnowledgeBase._norm(value) not in vocabulary:
                    cells.add((row, name))
        cells |= self._relation_violations(frame, kb, alignments)
        scores = {cell: 1.0 for cell in cells}
        return cells, scores, {"alignments": alignments}

    def _relation_violations(
        self, frame: DataFrame, kb: KnowledgeBase, alignments: dict[str, str]
    ) -> set[Cell]:
        cells: set[Cell] = set()
        columns = list(alignments)
        for left_col in columns:
            for right_col in columns:
                if left_col == right_col:
                    continue
                table = kb.relation_for(alignments[left_col], alignments[right_col])
                if table is None:
                    continue
                for row in range(frame.num_rows):
                    left = frame.at(row, left_col)
                    right = frame.at(row, right_col)
                    if left is None or right is None:
                        continue
                    allowed = table.get(KnowledgeBase._norm(left))
                    if allowed is not None and KnowledgeBase._norm(right) not in allowed:
                        cells.add((row, right_col))
        return cells

"""Isolation-forest outlier detection (the paper's "IF" tool)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Cell, DataFrame
from ..ml import IsolationForest
from .base import DetectionContext, Detector


class IsolationForestDetector(Detector):
    """Per-column univariate isolation forests for cell-level outliers.

    In ``multivariate`` mode a single forest runs over all numeric columns
    jointly and every numeric cell of an anomalous row is flagged.
    """

    name = "isolation_forest"

    def __init__(
        self,
        contamination: float = 0.05,
        n_estimators: int = 50,
        multivariate: bool = False,
        columns: list[str] | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            contamination=contamination,
            n_estimators=n_estimators,
            multivariate=multivariate,
            columns=columns,
            seed=seed,
        )
        self.contamination = contamination
        self.n_estimators = n_estimators
        self.multivariate = multivariate
        self.columns = columns
        self.seed = seed

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        names = [
            name
            for name in (self.columns or frame.numeric_column_names())
            if name in frame and frame.column(name).is_numeric()
        ]
        if not names or frame.num_rows < 8:
            return set(), {}, {"columns_checked": names}
        if self.multivariate:
            return self._detect_multivariate(frame, names)
        return self._detect_univariate(frame, names)

    def _detect_univariate(
        self, frame: DataFrame, names: list[str]
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        for name in names:
            values = frame.column(name).to_numpy()
            present = ~np.isnan(values)
            data = values[present].reshape(-1, 1)
            if len(data) < 8 or float(np.std(data)) == 0.0:
                continue
            forest = IsolationForest(
                n_estimators=self.n_estimators,
                contamination=self.contamination,
                seed=self.seed,
            ).fit(data)
            flags = forest.predict(data)
            sample_scores = forest.score_samples(data)
            rows = np.flatnonzero(present)
            for local, row in enumerate(rows):
                if flags[local]:
                    cell = (int(row), name)
                    cells.add(cell)
                    scores[cell] = float(sample_scores[local])
        return cells, scores, {"columns_checked": names, "mode": "univariate"}

    def _detect_multivariate(
        self, frame: DataFrame, names: list[str]
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        matrix = frame.to_numpy(names)
        means = np.nanmean(matrix, axis=0)
        filled = np.where(np.isnan(matrix), means, matrix)
        forest = IsolationForest(
            n_estimators=self.n_estimators,
            contamination=self.contamination,
            seed=self.seed,
        ).fit(filled)
        flags = forest.predict(filled)
        sample_scores = forest.score_samples(filled)
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        for row in np.flatnonzero(flags):
            for name in names:
                cell = (int(row), name)
                cells.add(cell)
                scores[cell] = float(sample_scores[row])
        return cells, scores, {"columns_checked": names, "mode": "multivariate"}

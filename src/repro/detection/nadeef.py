"""NADEEF-style rule-based error detection.

NADEEF evaluates declarative quality rules. Here the rules are the FDs and
value rules carried in the :class:`DetectionContext` — typically the output
of automated rule extraction after user validation (§3). When no rules are
supplied, the detector falls back to discovering FDs itself so it remains
usable inside the fully-automated iterative cleaner.
"""

from __future__ import annotations

from typing import Any

from ..dataframe import Cell, DataFrame
from ..fd import approximate_fds
from .base import DetectionContext, Detector


class NADEEFDetector(Detector):
    """Union of violations across the active rule set."""

    name = "nadeef"

    def __init__(
        self,
        auto_discover: bool = True,
        max_lhs_size: int = 1,
        tolerance: float = 0.15,
        min_confidence_rows: int = 20,
    ) -> None:
        super().__init__(
            auto_discover=auto_discover,
            max_lhs_size=max_lhs_size,
            tolerance=tolerance,
            min_confidence_rows=min_confidence_rows,
        )
        self.auto_discover = auto_discover
        self.max_lhs_size = max_lhs_size
        self.tolerance = tolerance
        self.min_confidence_rows = min_confidence_rows

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        rules = list(context.rules)
        discovered = 0
        if not rules and self.auto_discover and frame.num_rows >= self.min_confidence_rows:
            # Discover approximate FDs on a categorical projection: exact
            # FDs never survive dirty data, and FDs over floats are noise.
            candidates = [
                name
                for name in frame.column_names
                if not frame.column(name).is_numeric()
                or frame.column(name).dtype == "int"
            ]
            if len(candidates) >= 2:
                rules = approximate_fds(
                    frame,
                    tolerance=self.tolerance,
                    max_lhs_size=self.max_lhs_size,
                    columns=candidates,
                )
                discovered = len(rules)
        cells: set[Cell] = set()
        per_rule: dict[str, int] = {}
        for rule in rules:
            violations = rule.violations(frame)
            per_rule[str(rule)] = len(violations)
            cells |= violations
        for value_rule in context.value_rules:
            violations = value_rule.violations(frame)
            per_rule[f"value:{value_rule.name}"] = len(violations)
            cells |= violations
        scores = {cell: 1.0 for cell in cells}
        metadata = {
            "rules_evaluated": len(rules) + len(context.value_rules),
            "rules_discovered": discovered,
            "violations_per_rule": per_rule,
        }
        return cells, scores, metadata

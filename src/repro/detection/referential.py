"""Cross-table referential-integrity detection.

First consumer of the chunk-native join operators
(:mod:`repro.dataframe.joins`): every child row whose foreign key has no
match in the parent table is flagged. The membership test is a semi join,
so it runs partitioned (spilling key buckets through the session
:class:`~repro.dataframe.spill.SpillStore`) when either table is spilled
and never densifies non-key columns — referential checks scale past RAM
along with the frames themselves.

Null semantics follow SQL foreign keys: a child row with a missing value
in any key column is *not* a violation (it simply asserts no reference),
mirroring how missing-key rows never match in the join operators.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..dataframe import Cell, DataFrame
from ..dataframe.joins import semi_join_mask
from .base import DetectionContext, Detector


class ReferentialIntegrityDetector(Detector):
    """Flag child rows whose key combination is absent from a parent table.

    ``on`` names the child key columns; ``parent_on`` optionally renames
    them on the parent side (positional pairing). Cells are reported for
    every key column of each violating row so consolidation and repair
    see the full foreign key, not a single column.
    """

    name = "referential_integrity"

    def __init__(
        self,
        on: Sequence[str] = (),
        parent: DataFrame | None = None,
        parent_on: Sequence[str] | None = None,
        strategy: str | None = None,
    ) -> None:
        super().__init__(
            on=list(on),
            parent_on=list(parent_on) if parent_on is not None else None,
            strategy=strategy,
        )
        self.on = list(on)
        self.parent = parent
        self.parent_on = list(parent_on) if parent_on is not None else None
        self.strategy = strategy

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        parent = self.parent
        if parent is None:
            raise ValueError(
                "referential_integrity requires a parent table "
                "(pass parent= at construction)"
            )
        if not self.on:
            raise ValueError("referential_integrity requires key columns (on=)")
        matched = semi_join_mask(
            frame,
            parent,
            self.on,
            right_on=self.parent_on,
            strategy=self.strategy,
        )
        # Rows with a missing key cell assert no reference — skip them.
        checkable = np.ones(frame.num_rows, dtype=bool)
        for name in self.on:
            checkable &= ~frame.column(name).mask()
        violating = np.flatnonzero(checkable & ~matched)
        cells = {
            (int(row), name) for row in violating for name in self.on
        }
        scores = {cell: 1.0 for cell in cells}
        metadata = {
            "keys": list(self.on),
            "parent_keys": list(self.parent_on or self.on),
            "parent_rows": parent.num_rows,
            "checked_rows": int(checkable.sum()),
            "violating_rows": int(len(violating)),
        }
        return cells, scores, metadata

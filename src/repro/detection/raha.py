"""RAHA-style ML error detection with user labeling.

RAHA (Mahdavi et al. 2019) turns error detection into per-column supervised
learning without requiring configured detectors:

1. *Featurization* — a battery of cheap detection strategies runs over each
   column; each strategy contributes one binary feature per cell.
2. *Clustering* — cells of a column are clustered by feature vector.
3. *Tuple sampling* — tuples covering many unlabeled clusters are shown to
   the user, who marks the dirty cells (the paper's labeling budget ``N``
   counts tuples the user labels as containing dirty cells; clean tuples
   are skipped but still "reviewed", which is why Figure 3 shows reviewed
   tuples exceeding the budget).
4. *Propagation* — user labels extend to every cell in the same cluster.
5. *Classification* — a per-column classifier trained on the propagated
   labels predicts dirty cells for the whole column.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

import numpy as np

from ..dataframe import Cell, Column, DataFrame
from ..ml import DecisionTreeClassifier, cluster_by_vector
from .base import DetectionContext, Detector
from .fahes import NULL_LIKE_STRINGS, pattern_signature


# ----------------------------------------------------------------------
# Featurization
# ----------------------------------------------------------------------
def featurize_column(column: Column) -> tuple[np.ndarray, list[str]]:
    """Binary feature matrix (n_rows x n_strategies) for one column."""
    n = len(column)
    features: list[np.ndarray] = []
    names: list[str] = []

    missing = np.array(column.is_missing(), dtype=float)
    features.append(missing)
    names.append("is_missing")

    counts = column.value_counts()
    frequency = np.array(
        [0 if v is None else counts[v] for v in column], dtype=float
    )
    features.append((frequency == 1).astype(float))
    names.append("freq_unique")
    features.append(((frequency > 0) & (frequency <= 3)).astype(float))
    names.append("freq_rare")

    if column.is_numeric():
        values = column.to_numpy()
        finite = values[~np.isnan(values)]
        if len(finite) >= 4:
            mean = float(np.mean(finite))
            std = float(np.std(finite)) or 1.0
            z = np.abs(np.where(np.isnan(values), mean, values) - mean) / std
            for threshold in (1.5, 2.0, 2.5, 3.0):
                features.append((z > threshold).astype(float))
                names.append(f"z_gt_{threshold}")
            q1, q3 = np.quantile(finite, [0.25, 0.75])
            iqr = float(q3 - q1) or 1.0
            for factor in (1.5, 3.0):
                low = q1 - factor * iqr
                high = q3 + factor * iqr
                outside = (values < low) | (values > high)
                features.append(
                    np.where(np.isnan(values), 0.0, outside.astype(float))
                )
                names.append(f"iqr_gt_{factor}")
            sentinel = np.isin(values, (-99.0, -1.0, 0.0, 999.0, 9999.0, 99999.0))
            features.append(sentinel.astype(float))
            names.append("is_sentinel")
    else:
        texts = ["" if v is None else str(v) for v in column]
        patterns = Counter(pattern_signature(t) for t in texts if t)
        total = max(1, sum(patterns.values()))
        rare_pattern = np.array(
            [
                0.0
                if not t
                else float(patterns[pattern_signature(t)] / total <= 0.05)
                for t in texts
            ]
        )
        features.append(rare_pattern)
        names.append("rare_pattern")
        null_like = np.array(
            [float(t.strip().lower() in NULL_LIKE_STRINGS) for t in texts]
        )
        features.append(null_like)
        names.append("null_like")
        lengths = np.array([len(t) for t in texts], dtype=float)
        if lengths.std() > 0:
            z_len = np.abs(lengths - lengths.mean()) / lengths.std()
            features.append((z_len > 2.0).astype(float))
            names.append("length_outlier")
        has_digit = np.array(
            [float(any(c.isdigit() for c in t)) for t in texts]
        )
        digit_share = has_digit.mean() if n else 0.0
        if 0.0 < digit_share < 0.5:
            features.append(has_digit)
            names.append("unexpected_digit")
    return np.column_stack(features), names


class RAHADetector(Detector):
    """Per-column semi-supervised error detection with label propagation."""

    name = "raha"

    def __init__(
        self,
        labeling_budget: int | None = None,
        clusters_per_column: int | None = None,
        max_reviewed_tuples: int | None = None,
        classifier_depth: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(
            labeling_budget=labeling_budget,
            clusters_per_column=clusters_per_column,
            max_reviewed_tuples=max_reviewed_tuples,
            classifier_depth=classifier_depth,
            seed=seed,
        )
        self.labeling_budget = labeling_budget
        self.clusters_per_column = clusters_per_column
        self.max_reviewed_tuples = max_reviewed_tuples
        self.classifier_depth = classifier_depth
        self.seed = seed

    # ------------------------------------------------------------------
    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        budget = (
            self.labeling_budget
            if self.labeling_budget is not None
            else context.labeling_budget
        )
        features: dict[str, np.ndarray] = {}
        clusters: dict[str, np.ndarray] = {}
        n_clusters = self.clusters_per_column or max(2, min(12, 2 + budget // 2))
        for name in frame.column_names:
            matrix, _ = featurize_column(frame.column(name))
            features[name] = matrix
            clusters[name] = cluster_by_vector(matrix, n_clusters)

        labels: dict[Cell, bool] = dict(context.labels)
        sampling_stats = {"reviewed_tuples": 0, "labeled_tuples": 0}
        if context.labeler is not None and budget > 0:
            sampled = self._sampling_loop(frame, clusters, labels, context, budget)
            sampling_stats.update(sampled)
            # Collected labels are session state the user-in-the-loop module
            # owns; expose them back through the shared context.
            context.labels.update(labels)

        propagated = self._propagate(frame, clusters, labels)
        cells, scores = self._classify(frame, features, propagated)
        metadata = {
            "n_clusters": n_clusters,
            "user_labels": len(labels),
            "propagated_labels": len(propagated),
            **sampling_stats,
        }
        return cells, scores, metadata

    # ------------------------------------------------------------------
    def _sampling_loop(
        self,
        frame: DataFrame,
        clusters: dict[str, np.ndarray],
        labels: dict[Cell, bool],
        context: DetectionContext,
        budget: int,
    ) -> dict[str, int]:
        """Present tuples until ``budget`` dirty tuples have been labeled.

        Tuple choice maximizes coverage of clusters without any label yet;
        the user skips clean tuples, so reviewed >= labeled (Figure 3a/3b).
        """
        rng = np.random.default_rng(self.seed)
        max_reviewed = self.max_reviewed_tuples or max(4 * budget, budget + 20)
        reviewed = 0
        labeled = 0
        visited: set[int] = set()
        while labeled < budget and reviewed < max_reviewed:
            row = self._pick_tuple(frame, clusters, labels, visited, rng)
            if row is None:
                break
            visited.add(row)
            reviewed += 1
            row_labels = context.labeler(row, frame)
            labels.update(row_labels)
            if any(row_labels.values()):
                labeled += 1
        return {"reviewed_tuples": reviewed, "labeled_tuples": labeled}

    def _pick_tuple(
        self,
        frame: DataFrame,
        clusters: dict[str, np.ndarray],
        labels: dict[Cell, bool],
        visited: set[int],
        rng: np.random.Generator,
    ) -> int | None:
        """Sample a tuple with probability proportional to cluster coverage.

        Coverage counts the row's cells lying in clusters without any label
        yet. Sampling (rather than argmax) matches RAHA's behaviour the
        paper calls out: the strategy "often selects clean tuples", which
        is what drives reviewed tuples above the labeling budget (Fig. 3).
        """
        labeled_clusters: set[tuple[str, int]] = set()
        for (row, column), _ in labels.items():
            labeled_clusters.add((column, int(clusters[column][row])))
        rows: list[int] = []
        weights: list[float] = []
        for row in range(frame.num_rows):
            if row in visited:
                continue
            coverage = sum(
                1
                for column in frame.column_names
                if (column, int(clusters[column][row])) not in labeled_clusters
            )
            rows.append(row)
            weights.append(float(coverage) + 0.25)
        if not rows:
            return None
        total = sum(weights)
        probabilities = np.array(weights) / total
        return int(rng.choice(rows, p=probabilities))

    # ------------------------------------------------------------------
    def _propagate(
        self,
        frame: DataFrame,
        clusters: dict[str, np.ndarray],
        labels: dict[Cell, bool],
    ) -> dict[Cell, bool]:
        """Extend each labeled cell's label to its whole cluster (majority)."""
        votes: dict[tuple[str, int], list[bool]] = {}
        for (row, column), label in labels.items():
            if column not in clusters or row >= frame.num_rows:
                continue
            key = (column, int(clusters[column][row]))
            votes.setdefault(key, []).append(label)
        propagated: dict[Cell, bool] = {}
        for (column, cluster_id), cluster_votes in votes.items():
            majority = sum(cluster_votes) * 2 >= len(cluster_votes)
            members = np.flatnonzero(clusters[column] == cluster_id)
            for row in members:
                propagated[(int(row), column)] = majority
        propagated.update(labels)
        return propagated

    def _classify(
        self,
        frame: DataFrame,
        features: dict[str, np.ndarray],
        propagated: dict[Cell, bool],
    ) -> tuple[set[Cell], dict[Cell, float]]:
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        for column in frame.column_names:
            matrix = features[column]
            train_rows = [
                row
                for row in range(frame.num_rows)
                if (row, column) in propagated
            ]
            if not train_rows:
                continue
            train_labels = [propagated[(row, column)] for row in train_rows]
            if all(train_labels) or not any(train_labels):
                # Single-class training data: predict that class everywhere.
                if all(train_labels):
                    for row in range(frame.num_rows):
                        cells.add((row, column))
                        scores[(row, column)] = 0.5
                continue
            model = DecisionTreeClassifier(
                max_depth=self.classifier_depth, seed=self.seed
            )
            model.fit(matrix[train_rows], train_labels)
            predictions = model.predict(matrix)
            for row, prediction in enumerate(predictions):
                if prediction:
                    cells.add((row, column))
                    scores[(row, column)] = 1.0
        return cells, scores

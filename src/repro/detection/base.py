"""Detector interfaces shared by every error-detection tool.

All tools consume a DataFrame plus a :class:`DetectionContext` (rules,
user labels, tagged values, knowledge base) and emit a
:class:`DetectionResult` — a set of ``(row, column)`` cells with optional
per-cell scores. The uniform interface is what lets the dashboard run any
subset of tools and consolidate their output (§3), and what lets the
iterative cleaner treat tools as hyperparameters (§4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..dataframe import Cell, DataFrame
from ..fd import FunctionalDependency, ValueRule


@dataclass
class DetectionContext:
    """Shared inputs the user-in-the-loop module can supply to detectors."""

    rules: list[FunctionalDependency] = field(default_factory=list)
    value_rules: list[ValueRule] = field(default_factory=list)
    labels: dict[Cell, bool] = field(default_factory=dict)
    tagged_values: set[Any] = field(default_factory=set)
    knowledge_base: Any = None
    labeler: Callable[[int, DataFrame], dict[Cell, bool]] | None = None
    labeling_budget: int = 20
    seed: int = 0
    #: Optional :class:`~repro.core.artifacts.ArtifactStore` (duck-typed):
    #: per-column detectors publish/reuse detection masks keyed by column
    #: content fingerprint, making repeated runs over unchanged columns
    #: cache hits.
    artifact_store: Any = None


@dataclass
class DetectionResult:
    """Output of one detection tool."""

    tool: str
    cells: set[Cell]
    config: dict[str, Any] = field(default_factory=dict)
    scores: dict[Cell, float] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cells = set(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def rows(self) -> set[int]:
        return {row for row, _ in self.cells}

    def columns(self) -> set[str]:
        return {column for _, column in self.cells}

    def cells_in_column(self, column: str) -> set[Cell]:
        return {cell for cell in self.cells if cell[1] == column}

    def restricted_to(self, frame: DataFrame) -> "DetectionResult":
        """Drop cells that fall outside the frame (defensive consolidation)."""
        valid = {
            (row, column)
            for row, column in self.cells
            if 0 <= row < frame.num_rows and column in frame
        }
        return DetectionResult(
            tool=self.tool,
            cells=valid,
            config=dict(self.config),
            scores={c: s for c, s in self.scores.items() if c in valid},
            runtime_seconds=self.runtime_seconds,
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "tool": self.tool,
            "config": self.config,
            "num_cells": len(self.cells),
            "cells": sorted(self.cells),
            "runtime_seconds": self.runtime_seconds,
            "metadata": self.metadata,
        }


class Detector:
    """Base class: subclasses implement ``_detect`` and set ``name``."""

    name = "detector"

    def __init__(self, **config: Any) -> None:
        self.config: dict[str, Any] = dict(config)

    def detect(
        self, frame: DataFrame, context: DetectionContext | None = None
    ) -> DetectionResult:
        """Run the tool and wrap its cells with timing metadata."""
        context = context or DetectionContext()
        start = time.perf_counter()
        cells, scores, metadata = self._detect(frame, context)
        elapsed = time.perf_counter() - start
        result = DetectionResult(
            tool=self.name,
            cells=cells,
            config=dict(self.config),
            scores=scores,
            runtime_seconds=elapsed,
            metadata=metadata,
        )
        return result.restricted_to(frame)

    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "config": dict(self.config)}


def merge_results(results: list[DetectionResult]) -> set[Cell]:
    """Union of all result cells — DataLens's automatic deduplication.

    The dashboard executes selected tools sequentially and "consolidates
    their detections into a single array, filtering out duplicates" (§3);
    set union is exactly that.
    """
    merged: set[Cell] = set()
    for result in results:
        merged |= result.cells
    return merged


DetectorFactory = Callable[[], Detector]


def run_tools(
    frame: DataFrame,
    detectors: list[Detector],
    context: DetectionContext | None = None,
) -> tuple[list[DetectionResult], set[Cell]]:
    """Execute tools sequentially and return (results, deduplicated union)."""
    results = [detector.detect(frame, context) for detector in detectors]
    return results, merge_results(results)


def summarize_by_column(
    results: Mapping[str, DetectionResult], frame: DataFrame
) -> dict[str, dict[str, float]]:
    """Per-column detection rate per tool — the Figure 4 data series."""
    summary: dict[str, dict[str, float]] = {}
    for label, result in results.items():
        rates = {}
        for column in frame.column_names:
            hits = len(result.cells_in_column(column))
            rates[column] = hits / frame.num_rows if frame.num_rows else 0.0
        summary[label] = rates
    return summary

"""HoloClean-style probabilistic error detection.

A laptop-scale rendition of HoloClean's pipeline:

1. *Signal compilation* marks noisy candidate cells (rule violations,
   mild statistical outliers, nulls).
2. *Domain generation* collects candidate values for each noisy cell from
   co-occurrence with the row's other attribute values.
3. *Inference* scores every candidate with a smoothed naive-Bayes model
   over attribute co-occurrence statistics; a cell whose observed value is
   much less probable than the best candidate is declared erroneous.

Numeric columns are discretized into quantile bins for the co-occurrence
statistics, mirroring HoloClean's treatment of continuous attributes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Hashable

import numpy as np

from ..dataframe import Cell, DataFrame
from .base import DetectionContext, Detector
from .outliers import IQRDetector

_MISSING = "__missing__"


class CooccurrenceModel:
    """Smoothed P(value | other attribute's value) statistics."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        # counts[(target_col, other_col)][other_value][target_value] -> int
        self._counts: dict[
            tuple[str, str], dict[Hashable, Counter]
        ] = defaultdict(lambda: defaultdict(Counter))
        self._domains: dict[str, set[Hashable]] = defaultdict(set)

    def fit(self, tokens: dict[str, list[Hashable]]) -> "CooccurrenceModel":
        columns = list(tokens)
        n_rows = len(tokens[columns[0]]) if columns else 0
        for target in columns:
            for value in tokens[target]:
                if value != _MISSING:
                    self._domains[target].add(value)
        for target in columns:
            for other in columns:
                if target == other:
                    continue
                pair = self._counts[(target, other)]
                for row in range(n_rows):
                    target_value = tokens[target][row]
                    other_value = tokens[other][row]
                    if target_value == _MISSING or other_value == _MISSING:
                        continue
                    pair[other_value][target_value] += 1
        return self

    def domain(self, column: str) -> set[Hashable]:
        return self._domains[column]

    def log_score(
        self,
        column: str,
        candidate: Hashable,
        row_tokens: dict[str, Hashable],
    ) -> float:
        """Sum of smoothed log P(candidate | other=value) over attributes."""
        total = 0.0
        domain_size = max(1, len(self._domains[column]))
        for other, other_value in row_tokens.items():
            if other == column or other_value == _MISSING:
                continue
            counter = self._counts[(column, other)].get(other_value)
            count = counter[candidate] if counter else 0
            seen = sum(counter.values()) if counter else 0
            total += float(
                np.log((count + self.alpha) / (seen + self.alpha * domain_size))
            )
        return total


class HoloCleanDetector(Detector):
    """Probabilistic detector over compiled noisy-cell candidates."""

    name = "holoclean"

    def __init__(
        self,
        n_bins: int = 12,
        alpha: float = 1.0,
        posterior_margin: float = 2.0,
        max_domain: int = 24,
    ) -> None:
        super().__init__(
            n_bins=n_bins,
            alpha=alpha,
            posterior_margin=posterior_margin,
            max_domain=max_domain,
        )
        self.n_bins = n_bins
        self.alpha = alpha
        self.posterior_margin = posterior_margin
        self.max_domain = max_domain

    # ------------------------------------------------------------------
    def tokenize(self, frame: DataFrame) -> dict[str, list[Hashable]]:
        """Discretize the frame: quantile bins for numerics, raw otherwise."""
        tokens: dict[str, list[Hashable]] = {}
        for name in frame.column_names:
            column = frame.column(name)
            if column.is_numeric():
                values = column.to_numpy()
                finite = values[~np.isnan(values)]
                if len(finite) == 0:
                    tokens[name] = [_MISSING] * frame.num_rows
                    continue
                quantiles = np.unique(
                    np.quantile(finite, np.linspace(0, 1, self.n_bins + 1))
                )
                edges = quantiles[1:-1]
                binned: list[Hashable] = []
                for value in values:
                    if np.isnan(value):
                        binned.append(_MISSING)
                    else:
                        binned.append(f"bin{int(np.searchsorted(edges, value))}")
                tokens[name] = binned
            else:
                tokens[name] = [
                    _MISSING if v is None else v for v in column.values()
                ]
        return tokens

    def compile_signals(
        self, frame: DataFrame, context: DetectionContext
    ) -> set[Cell]:
        """Candidate noisy cells from rules, outliers, and nulls."""
        noisy: set[Cell] = set()
        for rule in context.rules:
            noisy |= rule.violations(frame)
        outliers = IQRDetector(factor=1.5).detect(frame, context)
        noisy |= outliers.cells
        noisy |= frame.missing_cells()
        return noisy

    # ------------------------------------------------------------------
    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        tokens = self.tokenize(frame)
        model = CooccurrenceModel(alpha=self.alpha).fit(tokens)
        noisy = self.compile_signals(frame, context)
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        for row, column in noisy:
            observed = tokens[column][row]
            row_tokens = {name: tokens[name][row] for name in frame.column_names}
            if observed == _MISSING:
                cells.add((row, column))
                scores[(row, column)] = 1.0
                continue
            domain = model.domain(column)
            if len(domain) < 2:
                continue
            candidates = self._prune_domain(domain, observed)
            observed_score = model.log_score(column, observed, row_tokens)
            best_score = max(
                model.log_score(column, candidate, row_tokens)
                for candidate in candidates
            )
            if best_score - observed_score >= np.log(self.posterior_margin):
                cells.add((row, column))
                scores[(row, column)] = float(best_score - observed_score)
        metadata = {"noisy_candidates": len(noisy)}
        return cells, scores, metadata

    def _prune_domain(
        self, domain: set[Hashable], observed: Hashable
    ) -> list[Hashable]:
        candidates = sorted(domain, key=str)
        if len(candidates) > self.max_domain:
            candidates = candidates[: self.max_domain]
        if observed not in candidates:
            candidates.append(observed)
        return candidates

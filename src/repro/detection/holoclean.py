"""HoloClean-style probabilistic error detection.

A laptop-scale rendition of HoloClean's pipeline:

1. *Signal compilation* marks noisy candidate cells (rule violations,
   mild statistical outliers, nulls).
2. *Domain generation* collects candidate values for each noisy cell from
   co-occurrence with the row's other attribute values.
3. *Inference* scores every candidate with a smoothed naive-Bayes model
   over attribute co-occurrence statistics; a cell whose observed value is
   much less probable than the best candidate is declared erroneous.

Numeric columns are discretized into quantile bins for the co-occurrence
statistics, mirroring HoloClean's treatment of continuous attributes.

Codes / token contract (the vectorized proposal engine)
-------------------------------------------------------
Tokenization emits one :class:`TokenColumn` per column — an integer
*code* array plus the distinct observed token values — instead of a
per-value Python list:

* ``tokens`` lists the distinct observed token values in code order
  (``"bin{i}"`` strings for numeric columns, raw cell values otherwise).
  It never contains the missing sentinel.
* ``codes`` is an int64 array with one entry per row; code ``c <
  len(tokens)`` means the row holds ``tokens[c]``, and the single
  reserved code ``len(tokens)`` marks a *missing* token. Missing covers
  null cells **and** cells whose literal value equals the historical
  ``"__missing__"`` sentinel — preserving the legacy collision semantics
  where such values are skipped by the statistics and auto-flagged by
  detection.
* Numeric columns are binned with edges from ``np.quantile`` over the
  observed values and ``np.searchsorted`` per shard (chunk-aware: shards
  are gathered through ``iter_chunks`` so chunked and monolithic frames
  tokenize bit-identically); only bins that actually occur get codes, so
  the domain — and therefore the Laplace smoothing denominator — matches
  the historical per-value tokenizer exactly.
* :class:`TokenColumn` still behaves as a read-only sequence of legacy
  token values (``tc[i]`` / ``iter``), so downstream code that thinks in
  values keeps working.

:class:`CooccurrenceModel` is an array program over those codes: ``fit``
builds one sparse contingency table per ordered column pair — sorted
joint codes ``other_code * n_target + target_code`` with row counts via
``np.unique``, plus a per-other-value row-count vector — with no
per-row Python loop. :meth:`CooccurrenceModel.score_matrix` returns the
``(n_cells, n_candidates)`` log-posterior matrix in one shot, and
:meth:`CooccurrenceModel.score_cells` the per-cell observed scores; both
accumulate per-pair ``np.log`` terms in column order, which makes them
bit-identical to the scalar :meth:`CooccurrenceModel.log_score` (and to
the retained pure-Python reference in ``benchmarks/repair_reference.py``).

Artifact caching: when a content-addressed store is supplied (duck-typed
:class:`~repro.core.artifacts.ArtifactStore`), tokenization publishes
per-column ``repair:tokens`` artifacts keyed by column fingerprint and
the fitted model a ``repair:cooccurrence`` artifact keyed by all column
fingerprints — so a detect → repair cycle over content-identical frames
(repair masks cells that are already null) fits the model once, and
re-tokenizes only columns whose content actually changed. When *some*
columns changed, the refit is still mostly warm: each unordered pair's
contingency table is a ``repair:cooccurrence:pair`` artifact keyed on
the two columns' fingerprints, so only the pairs touching a changed
column recount.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from ..dataframe import Cell, DataFrame
from .base import DetectionContext, Detector
from .outliers import IQRDetector

_MISSING = "__missing__"


class TokenColumn:
    """Integer-coded tokens for one column (see the module docstring).

    ``tokens`` holds the distinct observed token values in code order;
    ``codes`` maps every row to a token (``len(tokens)`` = missing).
    Instances are treated as immutable once built — cached token
    artifacts are shared across consumers without copying.
    """

    __slots__ = ("tokens", "codes")

    def __init__(self, tokens: Sequence[Hashable], codes: np.ndarray) -> None:
        self.tokens: list[Hashable] = list(tokens)
        self.codes = np.asarray(codes, dtype=np.int64)

    @property
    def missing_code(self) -> int:
        return len(self.tokens)

    # -- legacy sequence view (token values, _MISSING at missing rows) --
    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, index: int) -> Hashable:
        code = int(self.codes[index])
        return _MISSING if code == len(self.tokens) else self.tokens[code]

    def __iter__(self) -> Iterator[Hashable]:
        lookup = self.tokens + [_MISSING]
        return (lookup[code] for code in self.codes.tolist())

    def to_list(self) -> list[Hashable]:
        """Materialize the historical per-value token list."""
        return list(self)

    @classmethod
    def from_values(cls, values: Sequence[Hashable]) -> "TokenColumn":
        """Factorize a legacy token list (first-seen code order)."""
        index: dict[Hashable, int] = {}
        codes = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            if value == _MISSING:
                codes[i] = -1
            else:
                codes[i] = index.setdefault(value, len(index))
        codes[codes == -1] = len(index)
        return cls(list(index), codes)


def _tokenize_numeric(column: Any, n_bins: int) -> TokenColumn:
    """Quantile-bin a numeric column into compact bin codes (chunk-aware)."""
    values_parts: list[np.ndarray] = []
    mask_parts: list[np.ndarray] = []
    for shard in column.iter_chunks():
        values_parts.append(np.asarray(shard.values_array()))
        mask_parts.append(np.asarray(shard.mask()))
    data = values_parts[0] if len(values_parts) == 1 else np.concatenate(values_parts)
    mask = mask_parts[0] if len(mask_parts) == 1 else np.concatenate(mask_parts)
    n = len(data)
    valid = ~mask
    finite = data[valid].astype(float)
    if finite.size == 0:
        return TokenColumn([], np.zeros(n, dtype=np.int64))
    quantiles = np.unique(np.quantile(finite, np.linspace(0, 1, n_bins + 1)))
    edges = quantiles[1:-1]
    bins = np.searchsorted(edges, finite)
    observed = np.unique(bins)
    codes = np.empty(n, dtype=np.int64)
    codes[valid] = np.searchsorted(observed, bins)
    codes[mask] = len(observed)
    return TokenColumn([f"bin{int(b)}" for b in observed], codes)


def _tokenize_categorical(column: Any) -> TokenColumn:
    """Raw-value tokens through ``Column.codes()`` (cross-chunk factorize)."""
    raw_codes, n_groups = column.codes()
    mask = np.asarray(column.mask())
    any_missing = bool(mask.any())
    n_valid_groups = n_groups - 1 if any_missing else n_groups
    if n_valid_groups == 0:
        return TokenColumn([], np.zeros(len(raw_codes), dtype=np.int64))
    valid = ~mask
    payload = np.asarray(column.values_array())[valid]
    valid_codes = raw_codes[valid]
    _, first_index = np.unique(valid_codes, return_index=True)
    tokens: list[Hashable] = payload[first_index].tolist()
    # Legacy collision semantics: a literal "__missing__" cell is
    # indistinguishable from a null in the token stream — fold its code
    # into the missing code and compact the rest.
    if any(token == _MISSING for token in tokens):
        keep = [c for c, token in enumerate(tokens) if token != _MISSING]
        remap = np.full(n_groups, len(keep), dtype=np.int64)
        for new_code, old_code in enumerate(keep):
            remap[old_code] = new_code
        return TokenColumn([tokens[c] for c in keep], remap[raw_codes])
    return TokenColumn(tokens, raw_codes)


def _lookup_counts(
    keys: np.ndarray, counts: np.ndarray, joint: np.ndarray
) -> np.ndarray:
    """Counts for joint codes via searchsorted into the sparse table."""
    if keys.size == 0:
        return np.zeros(joint.shape, dtype=np.int64)
    idx = np.searchsorted(keys, joint)
    idx_c = np.minimum(idx, keys.size - 1)
    found = keys[idx_c] == joint
    return np.where(found, counts[idx_c], 0)


class CooccurrenceModel:
    """Smoothed P(value | other attribute's value) statistics over codes.

    ``pair_cache`` is an optional ``(target, other, compute) -> table``
    hook: when set, each unordered pair's contingency table is routed
    through it, so a content-addressed store can replay tables for
    column pairs whose content did not change (see
    :meth:`HoloCleanDetector.fitted_model`). ``alpha`` only smooths
    scoring, so cached tables are valid across alpha values.
    """

    def __init__(self, alpha: float = 1.0, pair_cache: Any = None) -> None:
        self.alpha = alpha
        self._pair_cache = pair_cache
        self._order: list[str] = []
        self._columns: dict[str, TokenColumn] = {}
        self._index: dict[str, dict[Hashable, int]] = {}
        #: (target, other) -> (sorted joint codes, counts, seen-per-other)
        self._pairs: dict[
            tuple[str, str], tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    def fit(self, tokens: dict[str, Any]) -> "CooccurrenceModel":
        """Build per-pair contingency tables with array programs only.

        ``tokens`` maps column name to a :class:`TokenColumn` (fast path)
        or a legacy per-value list (factorized first). Each unordered
        column pair is joint-coded once (``other * n_target + target``
        over rows where both are observed) and counted with
        ``np.unique``; the transposed direction is derived from the same
        sparse table, so the fit contains no per-row Python loop.
        """
        self._order = list(tokens)
        self._columns = {
            name: tc if isinstance(tc, TokenColumn) else TokenColumn.from_values(tc)
            for name, tc in tokens.items()
        }
        self._index = {
            name: {token: code for code, token in enumerate(tc.tokens)}
            for name, tc in self._columns.items()
        }
        self._pairs = {}
        valid_masks = {
            name: tc.codes != tc.missing_code for name, tc in self._columns.items()
        }
        names = self._order
        for i, target in enumerate(names):
            tcol = self._columns[target]
            n_t = len(tcol.tokens)
            for other in names[i + 1 :]:
                ocol = self._columns[other]
                n_o = len(ocol.tokens)
                if n_t == 0 or n_o == 0:
                    empty = np.empty(0, dtype=np.int64)
                    self._pairs[(target, other)] = (
                        empty, empty, np.zeros(n_o, dtype=np.int64)
                    )
                    self._pairs[(other, target)] = (
                        empty, empty, np.zeros(n_t, dtype=np.int64)
                    )
                    continue
                def compute(
                    target: str = target,
                    other: str = other,
                    tcol: TokenColumn = tcol,
                    ocol: TokenColumn = ocol,
                    n_t: int = n_t,
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
                    both = valid_masks[target] & valid_masks[other]
                    tc = tcol.codes[both]
                    oc = ocol.codes[both]
                    joint = oc * n_t + tc
                    keys, counts = np.unique(joint, return_counts=True)
                    seen_o = np.bincount(oc, minlength=len(ocol.tokens))
                    seen_t = np.bincount(tc, minlength=n_t)
                    return keys, counts, seen_o, seen_t

                if self._pair_cache is not None:
                    keys, counts, seen_o, seen_t = self._pair_cache(
                        target, other, compute
                    )
                else:
                    keys, counts, seen_o, seen_t = compute()
                self._pairs[(target, other)] = (keys, counts, seen_o)
                # transpose: re-key the same sparse entries as t * n_o + o
                keys_t = (keys % n_t) * n_o + keys // n_t
                order = np.argsort(keys_t)
                self._pairs[(other, target)] = (
                    keys_t[order], counts[order], seen_t
                )
        return self

    # ------------------------------------------------------------------
    def domain(self, column: str) -> set[Hashable]:
        tcol = self._columns.get(column)
        return set(tcol.tokens) if tcol is not None else set()

    def domain_tokens(self, column: str) -> list[Hashable]:
        """Distinct observed tokens in code order (empty if unknown)."""
        tcol = self._columns.get(column)
        return list(tcol.tokens) if tcol is not None else []

    def token_column(self, column: str) -> TokenColumn | None:
        return self._columns.get(column)

    # ------------------------------------------------------------------
    def score_matrix(
        self,
        column: str,
        rows: Sequence[int] | np.ndarray,
        candidate_codes: Sequence[int] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Batched log-posteriors: one row per cell, one column per candidate.

        Entry ``(i, j)`` equals ``log_score(column, tokens[cand[j]],
        row_tokens(rows[i]))`` bit-for-bit: per-pair terms are computed
        with the same ``(count + alpha) / (seen + alpha * domain_size)``
        expression and accumulated in fit column order, with missing
        other-values contributing an exact ``0.0``.
        """
        rows_arr = np.asarray(rows, dtype=np.intp)
        tcol = self._columns[column]
        n_t = len(tcol.tokens)
        if candidate_codes is None:
            cand = np.arange(n_t, dtype=np.int64)
        else:
            cand = np.asarray(candidate_codes, dtype=np.int64)
        result = np.zeros((rows_arr.size, cand.size))
        if rows_arr.size == 0 or cand.size == 0:
            return result
        alpha_d = self.alpha * max(1, n_t)
        for other in self._order:
            if other == column:
                continue
            ocol = self._columns[other]
            oc = ocol.codes[rows_arr]
            valid = oc != ocol.missing_code
            if not valid.any():
                continue
            keys, counts, seen = self._pairs[(column, other)]
            oc_safe = np.where(valid, oc, 0)
            joint = oc_safe[:, None] * n_t + cand[None, :]
            cnt = _lookup_counts(keys, counts, joint)
            term = np.log((cnt + self.alpha) / (seen[oc_safe][:, None] + alpha_d))
            term[~valid] = 0.0
            result += term
        return result

    def score_cells(
        self,
        column: str,
        rows: Sequence[int] | np.ndarray,
        codes: Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """Per-cell log-posterior of one (possibly different) code per row."""
        rows_arr = np.asarray(rows, dtype=np.intp)
        tcodes = np.asarray(codes, dtype=np.int64)
        tcol = self._columns[column]
        n_t = len(tcol.tokens)
        result = np.zeros(rows_arr.size)
        if rows_arr.size == 0:
            return result
        alpha_d = self.alpha * max(1, n_t)
        for other in self._order:
            if other == column:
                continue
            ocol = self._columns[other]
            oc = ocol.codes[rows_arr]
            valid = oc != ocol.missing_code
            if not valid.any():
                continue
            keys, counts, seen = self._pairs[(column, other)]
            oc_safe = np.where(valid, oc, 0)
            joint = oc_safe * n_t + tcodes
            cnt = _lookup_counts(keys, counts, joint)
            term = np.log((cnt + self.alpha) / (seen[oc_safe] + alpha_d))
            term[~valid] = 0.0
            result += term
        return result

    def log_score(
        self,
        column: str,
        candidate: Hashable,
        row_tokens: dict[str, Hashable],
    ) -> float:
        """Sum of smoothed log P(candidate | other=value) over attributes.

        Scalar entry point kept for interactive probing and the
        differential suites; semantics (unknown columns, unseen values,
        missing skips, smoothing) match the historical Counter-based
        implementation exactly.
        """
        tcol = self._columns.get(column)
        n_t = len(tcol.tokens) if tcol is not None else 0
        domain_size = max(1, n_t)
        cand_code = self._index.get(column, {}).get(candidate)
        total = 0.0
        for other, other_value in row_tokens.items():
            if other == column or other_value == _MISSING:
                continue
            count = 0
            seen_value = 0
            other_code = self._index.get(other, {}).get(other_value)
            pair = self._pairs.get((column, other))
            if pair is not None and other_code is not None:
                keys, counts, seen = pair
                if other_code < seen.size:
                    seen_value = int(seen[other_code])
                if cand_code is not None and keys.size:
                    joint = other_code * n_t + cand_code
                    idx = int(np.searchsorted(keys, joint))
                    if idx < keys.size and int(keys[idx]) == joint:
                        count = int(counts[idx])
            total += float(
                np.log(
                    (count + self.alpha)
                    / (seen_value + self.alpha * domain_size)
                )
            )
        return total


class HoloCleanDetector(Detector):
    """Probabilistic detector over compiled noisy-cell candidates."""

    name = "holoclean"

    def __init__(
        self,
        n_bins: int = 12,
        alpha: float = 1.0,
        posterior_margin: float = 2.0,
        max_domain: int = 24,
    ) -> None:
        super().__init__(
            n_bins=n_bins,
            alpha=alpha,
            posterior_margin=posterior_margin,
            max_domain=max_domain,
        )
        self.n_bins = n_bins
        self.alpha = alpha
        self.posterior_margin = posterior_margin
        self.max_domain = max_domain

    # ------------------------------------------------------------------
    def tokenize(self, frame: DataFrame, store: Any = None) -> dict[str, TokenColumn]:
        """Discretize the frame: quantile bins for numerics, raw otherwise.

        Returns one :class:`TokenColumn` per column. With a content-
        addressed ``store``, each column's tokens are published as a
        ``repair:tokens`` artifact keyed by that column's fingerprint
        (plus ``n_bins`` for numerics), so only columns whose content
        changed since the last tokenization recompute.
        """
        store = store or None
        tokens: dict[str, TokenColumn] = {}
        for name in frame.column_names:
            column = frame.column(name)
            numeric = column.is_numeric()
            if store:
                params = (self.n_bins,) if numeric else ()
                tokens[name] = store.cached(
                    "repair:tokens",
                    (column.fingerprint(),),
                    params,
                    lambda: (
                        _tokenize_numeric(column, self.n_bins)
                        if numeric
                        else _tokenize_categorical(column)
                    ),
                )
            elif numeric:
                tokens[name] = _tokenize_numeric(column, self.n_bins)
            else:
                tokens[name] = _tokenize_categorical(column)
        return tokens

    def fitted_model(
        self,
        frame: DataFrame,
        tokens: dict[str, TokenColumn],
        store: Any = None,
    ) -> CooccurrenceModel:
        """Fit (or fetch) the co-occurrence model for ``frame``'s content.

        With a store, the fitted model is a ``repair:cooccurrence``
        artifact keyed by every column fingerprint plus ``(n_bins,
        alpha)`` — the detect → repair loop over content-identical
        frames fits once and replays the same model.

        A *partial* change is incremental too: when any column's content
        differs, the whole-model entry misses but the refit routes each
        unordered pair's contingency table through a finer-grained
        ``repair:cooccurrence:pair`` artifact keyed on the two columns'
        fingerprints (plus ``n_bins``, which shapes the token domains).
        Repairing one of ``c`` columns recomputes only the ``c - 1``
        pairs that touch it; the other tables replay from cache. Alpha is
        deliberately absent from the pair key — it smooths scoring, not
        the counted tables.
        """
        store = store or None
        if store:
            fingerprints = dict(
                zip(frame.column_names, frame.column_fingerprints())
            )

            def pair_cache(target: str, other: str, compute: Any) -> Any:
                return store.cached(
                    "repair:cooccurrence:pair",
                    (fingerprints[target], fingerprints[other]),
                    (self.n_bins,),
                    compute,
                )

            return store.cached(
                "repair:cooccurrence",
                frame.column_fingerprints(),
                (self.n_bins, self.alpha),
                lambda: CooccurrenceModel(
                    alpha=self.alpha, pair_cache=pair_cache
                ).fit(tokens),
            )
        return CooccurrenceModel(alpha=self.alpha).fit(tokens)

    def compile_signals(
        self, frame: DataFrame, context: DetectionContext
    ) -> set[Cell]:
        """Candidate noisy cells from rules, outliers, and nulls."""
        noisy: set[Cell] = set()
        for rule in context.rules:
            noisy |= rule.violations(frame)
        outliers = IQRDetector(factor=1.5).detect(frame, context)
        noisy |= outliers.cells
        noisy |= frame.missing_cells()
        return noisy

    # ------------------------------------------------------------------
    def _detect(
        self, frame: DataFrame, context: DetectionContext
    ) -> tuple[set[Cell], dict[Cell, float], dict[str, Any]]:
        store = context.artifact_store or None
        tokens = self.tokenize(frame, store=store)
        model = self.fitted_model(frame, tokens, store=store)
        noisy = self.compile_signals(frame, context)
        cells: set[Cell] = set()
        scores: dict[Cell, float] = {}
        by_column: dict[str, list[int]] = {}
        for row, column in noisy:
            by_column.setdefault(column, []).append(row)
        log_margin = np.log(self.posterior_margin)
        for column, rows in by_column.items():
            tcol = tokens[column]
            rows_arr = np.asarray(rows, dtype=np.intp)
            obs_codes = tcol.codes[rows_arr]
            missing = obs_codes == tcol.missing_code
            for row in rows_arr[missing].tolist():
                cells.add((row, column))
                scores[(row, column)] = 1.0
            n_t = len(tcol.tokens)
            if n_t < 2:
                continue
            live_rows = rows_arr[~missing]
            if live_rows.size == 0:
                continue
            live_obs = obs_codes[~missing]
            candidates = self._prune_domain_codes(tcol)
            best = model.score_matrix(column, live_rows, candidates).max(axis=1)
            observed = model.score_cells(column, live_rows, live_obs)
            # The historical candidate list appended the observed token
            # when pruning dropped it; folding its score into the max is
            # the same computation without the per-cell list rebuild.
            margin = np.maximum(best, observed) - observed
            flagged = margin >= log_margin
            for row, gap in zip(
                live_rows[flagged].tolist(), margin[flagged].tolist()
            ):
                cells.add((row, column))
                scores[(row, column)] = float(gap)
        metadata = {"noisy_candidates": len(noisy)}
        return cells, scores, metadata

    def _prune_domain_codes(self, tcol: TokenColumn) -> np.ndarray:
        """Codes of the first ``max_domain`` domain tokens in str order."""
        order = sorted(range(len(tcol.tokens)), key=lambda c: str(tcol.tokens[c]))
        return np.asarray(order[: self.max_domain], dtype=np.int64)

"""Columnar DataFrame — the tabular backbone of the reproduction.

The frame is deliberately small but carries the pandas-like operations the
rest of the system needs: construction from rows/columns, cell addressing by
``(row_index, column_name)``, boolean-mask selection, column manipulation,
iteration, and numpy export.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .column import Column

Cell = tuple[int, str]


class DataFrame:
    """In-memory table with named, typed columns and None for missing."""

    def __init__(self, columns: Iterable[Column] = ()):  # noqa: D107
        self._columns: dict[str, Column] = {}
        length: int | None = None
        for column in columns:
            if column.name in self._columns:
                raise ValueError(f"duplicate column {column.name!r}")
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ValueError(
                    f"column {column.name!r} has {len(column)} rows, expected {length}"
                )
            self._columns[column.name] = column

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls, data: Mapping[str, Iterable[Any]], dtypes: Mapping[str, str] | None = None
    ) -> "DataFrame":
        """Build a frame from ``{column_name: values}``."""
        dtypes = dtypes or {}
        return cls(
            Column(name, values, dtypes.get(name)) for name, values in data.items()
        )

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[Any]],
        column_names: Sequence[str],
        dtypes: Mapping[str, str] | None = None,
    ) -> "DataFrame":
        """Build a frame from an iterable of row tuples."""
        materialized = [list(row) for row in rows]
        for row in materialized:
            if len(row) != len(column_names):
                raise ValueError(
                    f"row has {len(row)} fields, expected {len(column_names)}"
                )
        data = {
            name: [row[i] for row in materialized]
            for i, name in enumerate(column_names)
        }
        return cls.from_dict(data, dtypes)

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "DataFrame":
        """Build a frame from dict records; the union of keys becomes columns."""
        materialized = list(records)
        names: dict[str, None] = {}
        for record in materialized:
            for key in record:
                names.setdefault(key, None)
        data = {
            name: [record.get(name) for record in materialized] for name in names
        }
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Shape and metadata
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows (0 for an empty frame)."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns) pair."""
        return (self.num_rows, self.num_columns)

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    def dtypes(self) -> dict[str, str]:
        """Mapping of column name to logical dtype."""
        return {name: col.dtype for name, col in self._columns.items()}

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:
        return f"DataFrame(shape={self.shape}, columns={self.column_names})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataFrame):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(self._columns[n] == other._columns[n] for n in self._columns)

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Return the named column (KeyError with the available names)."""
        if name not in self._columns:
            raise KeyError(f"no column {name!r}; have {self.column_names}")
        return self._columns[name]

    def __getitem__(self, name: str) -> Column:
        """Dict-style access: ``frame["col"]`` is ``frame.column("col")``."""
        return self.column(name)

    def with_column(self, column: Column) -> "DataFrame":
        """Return a copy with ``column`` added or replaced."""
        if self._columns and len(column) != self.num_rows:
            raise ValueError(
                f"column {column.name!r} has {len(column)} rows, expected {self.num_rows}"
            )
        columns = dict(self._columns)
        columns[column.name] = column
        return DataFrame(columns.values())

    def drop_columns(self, names: Iterable[str]) -> "DataFrame":
        drop = set(names)
        missing = drop - set(self._columns)
        if missing:
            raise KeyError(f"cannot drop unknown columns {sorted(missing)}")
        return DataFrame(
            col for name, col in self._columns.items() if name not in drop
        )

    def select_columns(self, names: Sequence[str]) -> "DataFrame":
        return DataFrame(self.column(name) for name in names)

    def rename_columns(self, mapping: Mapping[str, str]) -> "DataFrame":
        return DataFrame(
            col.rename(mapping.get(name, name))
            for name, col in self._columns.items()
        )

    def numeric_column_names(self) -> list[str]:
        return [n for n, c in self._columns.items() if c.is_numeric()]

    def categorical_column_names(self) -> list[str]:
        return [n for n, c in self._columns.items() if not c.is_numeric()]

    # ------------------------------------------------------------------
    # Cell and row access
    # ------------------------------------------------------------------
    def at(self, row: int, name: str) -> Any:
        """Read one cell."""
        return self.column(name)[row]

    def set_at(self, row: int, name: str, value: Any) -> None:
        """Write one cell in place (used by repair application)."""
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range for {self.num_rows} rows")
        self.column(name).set(row, value)

    def set_cells(self, name: str, rows: Sequence[int], values: Sequence[Any]) -> None:
        """Batched ``set_at`` over one column — the repair-apply fast path.

        All cells are written in one vectorized slice assignment (see
        :meth:`Column.set_many`); semantics match the per-cell loop,
        including dtype widening.
        """
        row_array = np.asarray(rows, dtype=np.intp)
        if row_array.size and (
            int(row_array.min()) < 0 or int(row_array.max()) >= self.num_rows
        ):
            raise IndexError(f"row index out of range for {self.num_rows} rows")
        self.column(name).set_many(row_array, values)

    def row(self, index: int) -> dict[str, Any]:
        return {name: col[index] for name, col in self._columns.items()}

    def row_tuple(self, index: int) -> tuple[Any, ...]:
        return tuple(col[index] for col in self._columns.values())

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        for i in range(self.num_rows):
            yield self.row(i)

    def to_records(self) -> list[dict[str, Any]]:
        return list(self.iter_rows())

    def to_dict(self) -> dict[str, list[Any]]:
        return {name: col.values() for name, col in self._columns.items()}

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def take(self, indices: Sequence[int]) -> "DataFrame":
        """Return the rows at ``indices`` in the given order."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self.num_rows):
            raise IndexError(f"row index out of range for {self.num_rows} rows")
        return DataFrame(col.take(idx) for col in self._columns.values())

    def filter(self, mask: Sequence[bool]) -> "DataFrame":
        """Return rows where the boolean mask is True."""
        if len(mask) != self.num_rows:
            raise ValueError("mask length must equal number of rows")
        return self.select(np.fromiter((bool(k) for k in mask), dtype=bool,
                                       count=self.num_rows))

    def select(self, mask: np.ndarray) -> "DataFrame":
        """Boolean-mask row selection — the vectorized fast path.

        ``mask`` must be a boolean array of length ``num_rows``; each
        column is sliced in one numpy operation without materializing
        Python row objects.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_rows,):
            raise ValueError("mask length must equal number of rows")
        return DataFrame(
            Column._from_arrays(
                col.name,
                col.dtype,
                col.values_array()[mask],
                col.mask()[mask],
            )
            for col in self._columns.values()
        )

    def column_codes(
        self, columns: Sequence[str] | None = None, dense: bool = True
    ) -> tuple[np.ndarray, int]:
        """Integer row-group codes over a set of columns.

        Returns ``(codes, n_groups)`` where two rows share a code exactly
        when they agree (None matching None) on every listed column — the
        vectorized equivalent of grouping by the tuple of cell values. An
        empty column list puts every row in one group.

        With ``dense=True`` codes are re-encoded to ``0..n_groups-1``.
        ``dense=False`` skips that extra sort: codes are merely distinct
        per group and ``n_groups`` is an upper bound on their range —
        enough for grouping/duplicate detection consumers.
        """
        names = list(columns) if columns is not None else self.column_names
        n = self.num_rows
        if not names:
            return np.zeros(n, dtype=np.int64), 1 if n else 0
        codes, span = self.column(names[0]).codes()
        for name in names[1:]:
            extra, extra_span = self.column(name).codes()
            if extra_span and span > (2**62) // max(extra_span, 1):
                # Composite key would overflow int64 — re-densify first.
                uniques, inverse = np.unique(codes, return_inverse=True)
                codes = inverse.astype(np.int64, copy=False)
                span = len(uniques)
            codes = codes * extra_span + extra
            span = span * extra_span
        if dense and len(names) > 1:
            uniques, inverse = np.unique(codes, return_inverse=True)
            codes = inverse.astype(np.int64, copy=False)
            span = len(uniques)
        return codes, span

    def filter_rows(self, predicate: Callable[[dict[str, Any]], bool]) -> "DataFrame":
        mask = [bool(predicate(row)) for row in self.iter_rows()]
        return self.filter(mask)

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(list(range(min(n, self.num_rows))))

    def sample_indices(self, n: int, seed: int = 0) -> list[int]:
        """Deterministic random sample of row indices without replacement."""
        rng = np.random.default_rng(seed)
        n = min(n, self.num_rows)
        return [int(i) for i in rng.choice(self.num_rows, size=n, replace=False)]

    def copy(self) -> "DataFrame":
        return DataFrame(col.copy() for col in self._columns.values())

    def column_fingerprints(self) -> tuple[str, ...]:
        """Per-column content fingerprints in column order.

        The tuple is the frame-level cache key used by artifacts that
        depend on every column (duplicate rows, quality summaries); see
        :meth:`Column.fingerprint
        <repro.dataframe.column.Column.fingerprint>` for the contract.
        """
        return tuple(col.fingerprint() for col in self._columns.values())

    def mask_fingerprints(self) -> tuple[str, ...]:
        """Per-column missingness fingerprints in column order.

        Key for artifacts that depend only on null masks (the missing
        tables): repairs that overwrite values without changing
        missingness keep those artifacts cached.
        """
        return tuple(col.mask_fingerprint() for col in self._columns.values())

    # ------------------------------------------------------------------
    # Chunking (see repro.dataframe.chunked for the contract)
    # ------------------------------------------------------------------
    def to_chunked(self, chunk_size: int | None = None, spill=None):
        """Return a :class:`~repro.dataframe.chunked.ChunkedFrame` copy.

        ``chunk_size`` defaults to the ``DATALENS_DEFAULT_CHUNK_SIZE``
        environment override, else the built-in default. ``spill`` (a
        :class:`~repro.dataframe.spill.SpillStore` or True) writes the
        shards to disk — explicit-only; the spill environment override
        applies to ingestion, not to in-memory conversion.
        """
        from .chunked import ChunkedFrame

        return ChunkedFrame.from_frame(self, chunk_size, spill=spill)

    def rechunk(self, chunk_size: int | None = None):
        """Alias of :meth:`to_chunked` on a monolithic frame."""
        return self.to_chunked(chunk_size)

    @property
    def n_chunks(self) -> int:
        return 1

    @property
    def chunk_lengths(self) -> tuple[int, ...]:
        return (self.num_rows,)

    def iter_chunks(self) -> Iterator["DataFrame"]:
        """Yield the frame's row chunks in order — here, itself.

        Chunk-aware consumers (profiling partials, detection shard
        loops) iterate this uniformly; a monolithic frame is a single
        chunk.
        """
        yield self

    # ------------------------------------------------------------------
    # Relational operators (see repro.dataframe.joins for the contract)
    # ------------------------------------------------------------------
    def join(
        self,
        right: "DataFrame",
        on: Sequence[str],
        how: str = "inner",
        suffix: str = "_right",
        strategy: str | None = None,
        n_partitions: int | None = None,
    ) -> "DataFrame":
        """Join with ``right`` on equality of the ``on`` columns.

        ``how`` is ``"inner"``/``"left"``/``"outer"``; ``strategy``
        forces a physical plan (``"memory"``/``"partitioned"``/
        ``"merge"``/``"sortmerge"``), else the planner picks one. Works
        uniformly on monolithic, chunked, and spilled frames.
        """
        from .joins import join as _join

        return _join(
            self,
            right,
            on,
            how=how,
            suffix=suffix,
            strategy=strategy,
            n_partitions=n_partitions,
        )

    def group_by(
        self, columns: Sequence[str], aggregations: Mapping[str, tuple[str, Any]]
    ) -> "DataFrame":
        """Grouped aggregation; see :func:`repro.dataframe.ops.group_by`."""
        from .ops import group_by as _group_by

        return _group_by(self, columns, aggregations)

    def sort_by(
        self,
        columns: Sequence[str],
        descending: bool = False,
        strategy: str | None = None,
    ) -> "DataFrame":
        """Stable multi-key sort; see :func:`repro.dataframe.ops.sort_by`.

        ``strategy`` picks the physical plan (``"memory"`` /
        ``"external"``, default auto): spilled frames sort out-of-core
        through :mod:`repro.dataframe.sort` and come back spilled;
        resident frames use the dense lexsort kernel. Results are
        bit-identical either way.
        """
        from .ops import sort_by as _sort_by

        return _sort_by(self, columns, descending=descending, strategy=strategy)

    # ------------------------------------------------------------------
    # Missing data
    # ------------------------------------------------------------------
    def missing_mask(self) -> dict[str, list[bool]]:
        return {name: col.is_missing() for name, col in self._columns.items()}

    def missing_cells(self) -> set[Cell]:
        cells: set[Cell] = set()
        for name, col in self._columns.items():
            for row in np.flatnonzero(col.mask()).tolist():
                cells.add((row, name))
        return cells

    def missing_count(self) -> int:
        return sum(col.missing_count() for col in self._columns.values())

    def drop_missing_rows(self, subset: Sequence[str] | None = None) -> "DataFrame":
        names = list(subset) if subset is not None else self.column_names
        keep = np.ones(self.num_rows, dtype=bool)
        for name in names:
            keep &= ~self.column(name).mask()
        return self.select(keep)

    # ------------------------------------------------------------------
    # Numpy export
    # ------------------------------------------------------------------
    def to_numpy(self, columns: Sequence[str] | None = None) -> np.ndarray:
        """Stack numeric columns into an (n_rows, n_cols) float matrix."""
        names = list(columns) if columns is not None else self.numeric_column_names()
        if not names:
            return np.empty((self.num_rows, 0), dtype=float)
        return np.column_stack([self.column(n).to_numpy() for n in names])

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def duplicate_row_indices(self) -> list[int]:
        """Indices of rows that repeat an earlier row exactly."""
        if self.num_rows == 0 or self.num_columns == 0:
            return []
        codes, _ = self.column_codes(dense=False)
        _, first_index = np.unique(codes, return_index=True)
        is_first = np.zeros(self.num_rows, dtype=bool)
        is_first[first_index] = True
        return np.flatnonzero(~is_first).tolist()

    def concat_rows(self, other: "DataFrame") -> "DataFrame":
        """Stack another frame with identical columns underneath this one."""
        if self.column_names != other.column_names:
            raise ValueError("frames must share identical column names")
        data = {
            name: self.column(name).values() + other.column(name).values()
            for name in self.column_names
        }
        return DataFrame.from_dict(data)

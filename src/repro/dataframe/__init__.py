"""Columnar DataFrame substrate (pandas substitute for this reproduction)."""

from .column import Column
from .frame import Cell, DataFrame
from .io import (
    from_json_records,
    read_csv,
    read_csv_text,
    read_json,
    to_csv_text,
    to_json_records,
    write_csv,
    write_json,
)
from .ops import group_by, group_indices, inner_join, sort_by, value_counts_frame
from .types import (
    BOOL,
    DTYPES,
    FLOAT,
    INT,
    NULL_TOKENS,
    STRING,
    coerce,
    common_dtype,
    infer_dtype,
    is_missing,
    is_numeric_dtype,
    parse_token,
)

__all__ = [
    "BOOL",
    "Cell",
    "Column",
    "DTYPES",
    "DataFrame",
    "FLOAT",
    "INT",
    "NULL_TOKENS",
    "STRING",
    "coerce",
    "common_dtype",
    "from_json_records",
    "group_by",
    "group_indices",
    "infer_dtype",
    "inner_join",
    "is_missing",
    "is_numeric_dtype",
    "parse_token",
    "read_csv",
    "read_csv_text",
    "read_json",
    "sort_by",
    "to_csv_text",
    "to_json_records",
    "value_counts_frame",
    "write_csv",
    "write_json",
]

"""Out-of-core shard spilling — disk-backed ChunkedColumns.

A :class:`SpillStore` serializes ``(values, mask)`` shard pairs to a
per-session spill directory and memory-maps them back on demand, keeping
an LRU cache of resident shards bounded by a byte budget. A
:class:`SpilledChunkedColumn` is a :class:`~repro.dataframe.chunked.
ChunkedColumn` whose shards live in such a store instead of RAM, so a
table far larger than the budget can be ingested, profiled, detected,
and repaired one chunk at a time.

Serialization format
--------------------
* Numeric / bool shards: two sibling ``.npy`` files per shard
  (``shard-N.values.npy`` + ``shard-N.mask.npy``) written with
  :func:`numpy.save` and loaded with ``mmap_mode="r"`` — loading a shard
  maps pages, it does not copy the payload.
* Object-backed shards (string columns, overflowed ints): one pickle
  file holding the ``(values, mask)`` pair — objects cannot be mmapped,
  so these load as owned arrays.

Crash safety
------------
Shard files are written through a tmp sibling + atomic ``os.replace``
and carry per-file blake2b checksums on their :class:`ShardHandle`;
every cold load re-hashes the file and raises :class:`SpillError`
naming the shard and path on mismatch — corrupt or truncated spill data
can never flow into kernels. Disk exhaustion (ENOSPC/EDQUOT) raises the
typed :class:`SpillCapacityError`, which the ingestion paths catch to
fall back to resident shards. Transient I/O faults (see
:mod:`repro.core.faults`) are absorbed by bounded internal retries
(``DATALENS_IO_RETRIES``). Crashed sessions leave ``datalens-spill-*``
directories behind; :func:`sweep_orphaned_spill_dirs` (run at
:class:`~repro.core.controller.DataLens` startup) removes those whose
owning pid is dead.

Residency contract
------------------
``load()`` pre-evicts least-recently-used shards until the incoming
shard fits, so resident bytes never exceed the budget as long as every
shard is smaller than the budget (a single oversized shard still loads —
the budget has a one-shard floor, never an ingestion failure). All
loads, hits, evictions, and the peak residency are counted; the peak is
what the spill benchmark asserts against.

Spill round-trips are exact: ``.npy`` preserves numeric buffers bit for
bit and pickle preserves Python payload objects, so a spilled column is
bit-identical to its resident and monolithic twins — the chunked
differential harness pins spilled ≡ resident ≡ monolithic.

Configuration
-------------
``DATALENS_SPILL_BUDGET`` (bytes, with optional ``k``/``m``/``g``
suffix) turns spilling on for the ingestion paths
(:func:`~repro.dataframe.io.read_csv_chunked`, the
:class:`~repro.ingestion.loader.DataLoader`) and sets the resident
budget; ``DATALENS_SPILL_DIR`` overrides where spill directories are
created (default: the system temp dir). Spilling an already in-memory
frame cannot lower its peak RSS, so ``to_chunked()`` and ``profile()``
never spill implicitly — use :func:`spill_frame` or the explicit
``spill=`` parameters.

Dense access (``values_array()`` / ``to_monolithic()`` / mutation)
materializes the column — shards are gathered into owned dense arrays
and the spill files are released. The non-pinning overrides
(``codes()`` / ``fingerprint()`` / ``mask()`` / ``to_numpy()``) compute
their results from temporary gathers instead, so the profile → detect →
repair pipeline leaves columns spilled.
"""

from __future__ import annotations

import errno
import hashlib
import io
import json
import logging
import os
import pickle
import shutil
import tempfile
import threading
import time
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from . import types as _types
from .chunked import (
    ChunkedColumn,
    ChunkedFrame,
    _concat_payload,
    chunk_lengths_for,
    resolve_chunk_size,
)
from .column import Column
from .frame import DataFrame

#: Environment variable holding the resident-shard byte budget. Setting
#: it (e.g. ``DATALENS_SPILL_BUDGET=64k`` in CI) makes every chunked
#: ingestion path spill its shards to disk.
SPILL_BUDGET_ENV = "DATALENS_SPILL_BUDGET"

#: Environment variable overriding where spill directories are created.
SPILL_DIR_ENV = "DATALENS_SPILL_DIR"

#: Budget used when a store is built without an explicit or environment
#: budget: big enough that small tables never churn, small enough that a
#: beyond-RAM ingest stays bounded.
DEFAULT_SPILL_BUDGET = 256 * 1024 * 1024

_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}

#: Age (seconds) after which a spill directory with no readable owner
#: file counts as orphaned for :func:`sweep_orphaned_spill_dirs`.
ORPHAN_GRACE_SECONDS = 3600

_logger = logging.getLogger(__name__)

_FAULTS = None


def _faults():
    # repro.core.faults, imported lazily: core/__init__ imports
    # artifacts, which imports this module, so a top-level import here
    # would run against a partially-initialized repro.core.
    global _FAULTS
    if _FAULTS is None:
        from ..core import faults as faults_module

        _FAULTS = faults_module
    return _FAULTS


class SpillError(RuntimeError):
    """A spilled shard could not be read back (deleted, truncated, corrupt)."""


class SpillCapacityError(SpillError):
    """The spill directory's filesystem is out of space (ENOSPC/EDQUOT)."""


def _blob_digest(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _file_digest(path: Path) -> str:
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as stream:
        while True:
            block = stream.read(1 << 20)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _atomic_write(path: Path, blob: bytes) -> None:
    """Write a shard file via tmp sibling + atomic rename.

    A crash or ENOSPC mid-write leaves at most a ``.tmp`` sibling — the
    final path either does not exist or holds the complete blob, so a
    reader can never observe a torn shard.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def parse_byte_size(raw: str | int, source: str) -> int:
    """Parse a byte size like ``"1048576"`` / ``"64k"`` / ``"2g"``.

    ``source`` names where the value came from (an env var, a CLI flag)
    so the error identifies the misconfiguration, not just the literal.
    """
    if isinstance(raw, int):
        size = raw
    else:
        text = str(raw).strip().lower()
        scale = 1
        if text and text[-1] in _SIZE_SUFFIXES:
            scale = _SIZE_SUFFIXES[text[-1]]
            text = text[:-1]
        try:
            size = int(text) * scale
        except ValueError:
            raise ValueError(
                f"{source} must be a byte size (an integer with an "
                f"optional k/m/g suffix), got {raw!r}"
            ) from None
    if size < 1:
        raise ValueError(f"{source} must be >= 1 byte, got {raw!r}")
    return size


def spill_budget_from_env() -> int | None:
    """Byte budget requested via the environment, or None when unset."""
    raw = os.environ.get(SPILL_BUDGET_ENV, "").strip()
    if not raw:
        return None
    return parse_byte_size(raw, SPILL_BUDGET_ENV)


def spill_dir_from_env() -> str | None:
    """Spill-directory override from the environment, or None."""
    raw = os.environ.get(SPILL_DIR_ENV, "").strip()
    return raw or None


def spill_enabled_by_env() -> bool:
    """Whether the environment asks ingestion paths to spill shards."""
    return spill_budget_from_env() is not None


def resolve_spill_store(spill: "SpillStore | bool | None") -> "SpillStore | None":
    """Normalize a ``spill=`` parameter to a store or None.

    A :class:`SpillStore` passes through; ``True`` builds a fresh store
    from the environment defaults; ``None`` consults
    ``DATALENS_SPILL_BUDGET`` (the ingestion-path default); ``False``
    disables spilling regardless of the environment.
    """
    if isinstance(spill, SpillStore):
        return spill
    if spill is None:
        return SpillStore() if spill_enabled_by_env() else None
    return SpillStore() if spill else None


class ShardHandle:
    """Pointer to one spilled shard: identity, length, and on-disk files.

    ``checksums`` holds one blake2b hex digest per path, computed over
    the exact bytes written; loads re-hash the files and refuse to
    deserialize on mismatch, so a truncated or bit-flipped shard raises
    :class:`SpillError` instead of feeding garbage into kernels.
    """

    __slots__ = ("shard_id", "length", "nbytes", "kind", "paths", "checksums")

    def __init__(
        self,
        shard_id: int,
        length: int,
        nbytes: int,
        kind: str,
        paths: tuple[Path, ...],
        checksums: tuple[str, ...] | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.length = length
        self.nbytes = nbytes
        self.kind = kind
        self.paths = paths
        self.checksums = checksums

    def __repr__(self) -> str:
        return (
            f"ShardHandle(id={self.shard_id}, rows={self.length}, "
            f"bytes={self.nbytes}, kind={self.kind})"
        )


class SpillStore:
    """Disk store for shard pairs with a byte-bounded resident LRU cache.

    One store backs one ingestion session (all columns of a frame share
    it), owning a private spill directory that is removed when the store
    is garbage-collected or explicitly :meth:`close`\\ d.

    Thread safety: all cache and counter state is mutated under one
    lock; file writes and reads happen outside it (shard files are
    written once and never rewritten, so concurrent loads are safe).
    """

    def __init__(
        self,
        budget_bytes: int | None = None,
        directory: str | Path | None = None,
    ) -> None:
        if budget_bytes is None:
            budget_bytes = spill_budget_from_env()
        if budget_bytes is None:
            budget_bytes = DEFAULT_SPILL_BUDGET
        self.budget_bytes = parse_byte_size(budget_bytes, "spill budget")
        base = directory if directory is not None else spill_dir_from_env()
        if base is not None:
            Path(base).mkdir(parents=True, exist_ok=True)
        self.directory = Path(
            tempfile.mkdtemp(prefix="datalens-spill-", dir=base)
        )
        try:
            # Ownership marker for sweep_orphaned_spill_dirs: a sweeper
            # in another process removes this directory only once this
            # pid is dead.
            (self.directory / "owner.json").write_text(
                json.dumps({"pid": os.getpid(), "created": time.time()})
            )
        except OSError:
            pass
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, str(self.directory), True
        )
        self._lock = threading.Lock()
        #: shard_id -> (data, mask) for shards currently resident.
        self._resident: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._resident_sizes: dict[int, int] = {}
        self._next_id = 0
        self.spilled_shards = 0
        self.spilled_bytes = 0
        self.loads = 0
        self.cache_hits = 0
        self.evictions = 0
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.peak_resident_shards = 0
        self.release_errors = 0
        self.capacity_errors = 0
        self.checksum_failures = 0
        self.transient_retries = 0
        self._release_error_logged = False

    # ------------------------------------------------------------------
    def spill(self, data: np.ndarray, mask: np.ndarray) -> ShardHandle:
        """Serialize one shard pair to disk and return its handle.

        Shards are serialized in memory first (to checksum the exact
        bytes), then written through tmp-file + atomic rename — a crash
        mid-spill never leaves a torn shard behind. ENOSPC/EDQUOT raise
        :class:`SpillCapacityError` naming the directory; transient I/O
        faults are retried internally (``DATALENS_IO_RETRIES``).
        """
        data = np.asarray(data)
        mask = np.asarray(mask, dtype=bool)
        if len(data) != len(mask):
            raise ValueError("shard data and mask lengths differ")
        with self._lock:
            shard_id = self._next_id
            self._next_id += 1
        stem = self.directory / f"shard-{shard_id:06d}"
        if data.dtype == object:
            blobs = [
                (
                    Path(f"{stem}.pkl"),
                    pickle.dumps((data, mask), pickle.HIGHEST_PROTOCOL),
                )
            ]
            kind = "pickle"
        else:
            values_buffer = io.BytesIO()
            np.save(values_buffer, data, allow_pickle=False)
            mask_buffer = io.BytesIO()
            np.save(mask_buffer, mask, allow_pickle=False)
            blobs = [
                (Path(f"{stem}.values.npy"), values_buffer.getvalue()),
                (Path(f"{stem}.mask.npy"), mask_buffer.getvalue()),
            ]
            kind = "npy"

        faults = _faults()

        def write_all() -> None:
            faults.maybe_fire("spill.write")
            for path, blob in blobs:
                _atomic_write(path, blob)

        try:
            _, retried = faults.with_transient_retries(write_all)
        except OSError as error:
            for path, _ in blobs:
                path.unlink(missing_ok=True)
            if error.errno in (errno.ENOSPC, getattr(errno, "EDQUOT", -1)):
                with self._lock:
                    self.capacity_errors += 1
                raise SpillCapacityError(
                    f"spill directory {self.directory} is out of disk "
                    f"space while writing shard {shard_id} ({error}); "
                    "the shard stays resident"
                ) from error
            raise
        if retried:
            with self._lock:
                self.transient_retries += retried
        paths = tuple(path for path, _ in blobs)
        checksums = tuple(_blob_digest(blob) for _, blob in blobs)
        nbytes = sum(len(blob) for _, blob in blobs)
        handle_out = ShardHandle(
            shard_id, len(data), nbytes, kind, paths, checksums
        )
        with self._lock:
            self.spilled_shards += 1
            self.spilled_bytes += nbytes
        return handle_out

    def load(self, handle: ShardHandle) -> tuple[np.ndarray, np.ndarray]:
        """Return the shard pair, loading (mmap for numeric) on a miss.

        Least-recently-used shards are evicted *before* the load, so
        resident bytes peak at the budget, not the budget plus one
        shard.
        """
        with self._lock:
            pair = self._resident.get(handle.shard_id)
            if pair is not None:
                self._resident.move_to_end(handle.shard_id)
                self.cache_hits += 1
                return pair

        faults = _faults()

        def miss() -> tuple[np.ndarray, np.ndarray]:
            with self._lock:
                self._evict_down_to(self.budget_bytes - handle.nbytes)
            return self._read(handle)

        pair, retried = faults.with_transient_retries(miss)
        if retried:
            with self._lock:
                self.transient_retries += retried
        with self._lock:
            if handle.shard_id not in self._resident:
                self._resident[handle.shard_id] = pair
                self._resident_sizes[handle.shard_id] = handle.nbytes
                self.resident_bytes += handle.nbytes
                self.loads += 1
                self.peak_resident_bytes = max(
                    self.peak_resident_bytes, self.resident_bytes
                )
                self.peak_resident_shards = max(
                    self.peak_resident_shards, len(self._resident)
                )
        return pair

    def load_mask(self, handle: ShardHandle) -> np.ndarray:
        """Return only the shard's mask — no payload residency for numeric.

        Mask-only consumers (missing tables, mask fingerprints) read the
        sibling ``.mask.npy`` directly; pickled object shards have one
        file, so they take the full :meth:`load` path.
        """
        with self._lock:
            pair = self._resident.get(handle.shard_id)
            if pair is not None:
                self._resident.move_to_end(handle.shard_id)
                self.cache_hits += 1
                return pair[1]
        if handle.kind == "npy":
            faults = _faults()

            def read_mask() -> np.ndarray:
                faults.maybe_fire("spill.read")
                self._verify_file(handle, 1)
                try:
                    return np.load(
                        handle.paths[1], mmap_mode="r", allow_pickle=False
                    )
                except (FileNotFoundError, OSError) as error:
                    raise self._missing_shard_error(handle, error) from error

            mask, retried = faults.with_transient_retries(read_mask)
            if retried:
                with self._lock:
                    self.transient_retries += retried
            return mask
        return self.load(handle)[1]

    def release(self, handle: ShardHandle) -> None:
        """Drop a shard from the cache and delete its files.

        A shard file that cannot be unlinked is counted in
        ``stats()["release_errors"]`` (and the first occurrence per
        store is logged) — the store keeps working, but the leak is
        visible instead of silently swallowed.
        """
        with self._lock:
            if self._resident.pop(handle.shard_id, None) is not None:
                self.resident_bytes -= self._resident_sizes.pop(
                    handle.shard_id
                )
        for path in handle.paths:
            try:
                path.unlink(missing_ok=True)
            except OSError as error:
                with self._lock:
                    self.release_errors += 1
                    first = not self._release_error_logged
                    self._release_error_logged = True
                if first:
                    _logger.warning(
                        "failed to delete spilled shard file %s (%s); "
                        "further failures for this store are only "
                        "counted in stats()['release_errors']",
                        path,
                        error,
                    )

    def close(self) -> None:
        """Delete the spill directory; subsequent loads raise SpillError."""
        with self._lock:
            self._resident.clear()
            self._resident_sizes.clear()
            self.resident_bytes = 0
        self._finalizer()

    def stats(self) -> dict[str, Any]:
        """Residency and traffic counters (REST spill endpoint payload)."""
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "directory": str(self.directory),
                "spilled_shards": self.spilled_shards,
                "spilled_bytes": self.spilled_bytes,
                "loads": self.loads,
                "cache_hits": self.cache_hits,
                "evictions": self.evictions,
                "resident_shards": len(self._resident),
                "resident_bytes": self.resident_bytes,
                "peak_resident_bytes": self.peak_resident_bytes,
                "peak_resident_shards": self.peak_resident_shards,
                "release_errors": self.release_errors,
                "capacity_errors": self.capacity_errors,
                "checksum_failures": self.checksum_failures,
                "transient_retries": self.transient_retries,
            }

    # ------------------------------------------------------------------
    def _evict_down_to(self, target_bytes: int) -> None:
        # Caller holds the lock.
        if self._resident and self.resident_bytes > target_bytes:
            _faults().maybe_fire("spill.evict")
        while self._resident and self.resident_bytes > target_bytes:
            shard_id, _ = self._resident.popitem(last=False)
            self.resident_bytes -= self._resident_sizes.pop(shard_id)
            self.evictions += 1

    def _verify_file(self, handle: ShardHandle, index: int) -> None:
        if not handle.checksums:
            return
        path = handle.paths[index]
        try:
            digest = _file_digest(path)
        except (FileNotFoundError, OSError) as error:
            raise self._missing_shard_error(handle, error) from error
        expected = handle.checksums[index]
        if digest != expected:
            with self._lock:
                self.checksum_failures += 1
            raise SpillError(
                f"spilled shard {handle.shard_id} is corrupt or "
                f"truncated: {path} fails its blake2b checksum "
                f"(expected {expected}, got {digest})"
            )

    def _read(self, handle: ShardHandle) -> tuple[np.ndarray, np.ndarray]:
        _faults().maybe_fire("spill.read")
        for index in range(len(handle.paths)):
            self._verify_file(handle, index)
        try:
            if handle.kind == "pickle":
                with open(handle.paths[0], "rb") as stream:
                    data, mask = pickle.load(stream)
            else:
                data = np.load(
                    handle.paths[0], mmap_mode="r", allow_pickle=False
                )
                mask = np.load(
                    handle.paths[1], mmap_mode="r", allow_pickle=False
                )
        except (FileNotFoundError, OSError, pickle.UnpicklingError) as error:
            raise self._missing_shard_error(handle, error) from error
        return data, mask

    def _missing_shard_error(
        self, handle: ShardHandle, error: Exception
    ) -> SpillError:
        return SpillError(
            f"cannot read spilled shard {handle.shard_id} under "
            f"{self.directory} — was the spill directory deleted while "
            f"the session was live? ({error})"
        )


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def sweep_orphaned_spill_dirs(
    base: str | Path | None = None,
    grace_seconds: float = ORPHAN_GRACE_SECONDS,
) -> list[Path]:
    """Remove ``datalens-spill-*`` directories left by crashed sessions.

    Live stores advertise themselves via an ``owner.json`` holding their
    pid; a directory is orphaned when that pid is dead, or — for
    directories with no readable owner file — when it has been untouched
    longer than ``grace_seconds``. ``base`` defaults to
    ``DATALENS_SPILL_DIR`` or the system temp dir (where
    :class:`SpillStore` creates its directories). Returns the removed
    paths; every failure is swallowed — sweeping is best-effort startup
    hygiene, never a reason not to start.
    """
    if base is None:
        base = spill_dir_from_env() or tempfile.gettempdir()
    removed: list[Path] = []
    try:
        candidates = sorted(Path(base).glob("datalens-spill-*"))
    except OSError:
        return removed
    now = time.time()
    for candidate in candidates:
        if not candidate.is_dir():
            continue
        orphaned = False
        try:
            owner = json.loads((candidate / "owner.json").read_text())
            pid = int(owner["pid"])
            orphaned = pid != os.getpid() and not _pid_alive(pid)
        except (OSError, ValueError, TypeError, KeyError):
            try:
                orphaned = now - candidate.stat().st_mtime > grace_seconds
            except OSError:
                orphaned = False
        if orphaned:
            shutil.rmtree(candidate, ignore_errors=True)
            removed.append(candidate)
            _logger.info("removed orphaned spill directory %s", candidate)
    return removed


def _resliced_pairs(
    pairs: Iterable[tuple[np.ndarray, np.ndarray]],
    lengths: Sequence[int],
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Re-cut a stream of shard pairs at new boundary lengths.

    Holds at most one source shard (plus the pieces of the pair being
    assembled), so re-chunking a spilled column never densifies it.
    """
    source = iter(pairs)
    data: np.ndarray | None = None
    mask: np.ndarray | None = None
    offset = 0
    for length in lengths:
        data_parts: list[np.ndarray] = []
        mask_parts: list[np.ndarray] = []
        need = length
        while need:
            if data is None or offset == len(data):
                data, mask = next(source)
                offset = 0
            take = min(need, len(data) - offset)
            data_parts.append(data[offset : offset + take])
            mask_parts.append(mask[offset : offset + take])
            offset += take
            need -= take
        yield (
            data_parts[0] if len(data_parts) == 1 else _concat_payload(data_parts),
            mask_parts[0] if len(mask_parts) == 1 else np.concatenate(mask_parts),
        )


class SpilledChunkedColumn(ChunkedColumn):
    """A ChunkedColumn whose shards live in a :class:`SpillStore`.

    Shards stream through the inherited chunk-aware kernels via the
    overridden :meth:`_shard_pairs`; any dense access (``values_array``,
    mutation, ``to_monolithic``) gathers the shards into owned arrays
    and **releases** the spilled state — after which the column behaves
    exactly like a dense :class:`ChunkedColumn` and ``spilled`` is
    False. ``codes()``, ``fingerprint()``, ``mask()``, and
    ``to_numpy()`` are overridden to compute from temporary gathers so
    the profile/detect pipeline does not trigger that materialization.
    """

    __slots__ = ("_handles", "_spill_store")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_handles(
        cls,
        name: str,
        dtype: str,
        handles: Iterable[ShardHandle],
        store: SpillStore,
    ) -> "SpilledChunkedColumn":
        """Wrap already-spilled shards (the streaming reader's path)."""
        if dtype not in _types.DTYPES:
            raise ValueError(f"unknown dtype {dtype!r}")
        handle_list = list(handles)
        out = cls.__new__(cls)
        out.name = name
        out.dtype = dtype
        out._codes_cache = None
        out._fingerprint_cache = None
        out._mask_fingerprint_cache = None
        out._chunk_lengths = tuple(handle.length for handle in handle_list)
        out._shard_data = None
        out._shard_masks = None
        out._dense_data = None
        out._dense_mask = None
        out._handles = handle_list
        out._spill_store = store
        return out

    @classmethod
    def from_column(
        cls,
        column: Column,
        chunk_lengths: Sequence[int],
        store: SpillStore,
    ) -> "SpilledChunkedColumn":
        """Spill an existing column at the given shard lengths.

        A chunked source streams shard by shard (re-cut at the new
        boundaries), so spilling a spilled column — ``copy()`` /
        ``rechunk()`` — never gathers it densely.
        """
        lengths = tuple(int(length) for length in chunk_lengths)
        if sum(lengths) != len(column):
            raise ValueError(
                f"chunk lengths {lengths} cover {sum(lengths)} rows, "
                f"column has {len(column)}"
            )
        if any(length < 1 for length in lengths):
            raise ValueError("chunk lengths must all be >= 1")
        if isinstance(column, ChunkedColumn):
            pairs: Iterable[tuple[np.ndarray, np.ndarray]] = column._shard_pairs()
        else:
            pairs = [
                (np.asarray(column.values_array()), np.asarray(column.mask()))
            ]
        handles: list[ShardHandle] = []
        try:
            for data, mask in _resliced_pairs(pairs, lengths):
                handles.append(store.spill(data, mask))
        except BaseException:
            # Don't leak the shards already written for this column.
            for handle in handles:
                store.release(handle)
            raise
        out = cls.from_handles(column.name, column.dtype, handles, store)
        # Content is preserved row for row, so content-derived caches
        # carry over (same rule as ChunkedColumn.from_column).
        out._codes_cache = column._codes_cache
        out._fingerprint_cache = column._fingerprint_cache
        out._mask_fingerprint_cache = column._mask_fingerprint_cache
        return out

    # ------------------------------------------------------------------
    # Spill state
    # ------------------------------------------------------------------
    @property
    def spilled(self) -> bool:
        """True while the shards still live in the spill store."""
        return self._handles is not None

    @property
    def spill_store(self) -> SpillStore:
        return self._spill_store

    def _release_spill(self) -> None:
        if self._handles is None:
            return
        handles, self._handles = self._handles, None
        for handle in handles:
            self._spill_store.release(handle)

    # ------------------------------------------------------------------
    # Dense storage — gathering releases the spilled state
    # ------------------------------------------------------------------
    def _gather_dense(self, copy: bool) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated (data, mask) straight from the spilled shards.

        ``copy=True`` guarantees owned writable arrays (a single shard
        loads as a read-only mmap, which must not become ``_data``);
        ``copy=False`` may hand back the mmap itself for read-only use.
        """
        handles = self._handles or []
        if not handles:
            return (
                np.empty(0, dtype=_types.NUMPY_DTYPES[self.dtype]),
                np.zeros(0, dtype=bool),
            )
        pairs = [self._spill_store.load(handle) for handle in handles]
        if len(pairs) == 1:
            data, mask = pairs[0]
            if copy:
                return np.array(data), np.array(mask, dtype=bool)
            return np.asarray(data), np.asarray(mask)
        data = _concat_payload([pair[0] for pair in pairs])
        mask = np.concatenate([pair[1] for pair in pairs])
        return data, mask

    def _materialize(self) -> None:
        if self._dense_data is not None:
            return
        if self._handles is None:
            super()._materialize()
            return
        data, mask = self._gather_dense(copy=True)
        self._dense_data = data
        # mask() may have gathered the dense mask already; its content is
        # identical, so keep it (previously returned views stay aligned).
        if self._dense_mask is None:
            self._dense_mask = mask
        self._release_spill()

    @property
    def _data(self) -> np.ndarray:  # type: ignore[override]
        self._materialize()
        return self._dense_data

    @_data.setter
    def _data(self, array: np.ndarray) -> None:
        self._dense_data = array
        self._shard_data = None
        self._release_spill()

    @property
    def _mask(self) -> np.ndarray:  # type: ignore[override]
        if self._dense_mask is None:
            self._materialize()
        return self._dense_mask

    @_mask.setter
    def _mask(self, array: np.ndarray) -> None:
        self._dense_mask = array
        self._shard_masks = None
        self._release_spill()

    # ------------------------------------------------------------------
    # Chunk API over spilled shards
    # ------------------------------------------------------------------
    def _shard_pairs(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if self._handles is not None:
            for handle in self._handles:
                yield self._spill_store.load(handle)
            return
        yield from super()._shard_pairs()

    def rechunk(self, chunk_size: int | None = None) -> ChunkedColumn:
        if self._handles is None:
            return super().rechunk(chunk_size)
        size = resolve_chunk_size(chunk_size)
        return SpilledChunkedColumn.from_column(
            self, chunk_lengths_for(len(self), size), self._spill_store
        )

    def copy(self) -> ChunkedColumn:
        if self._handles is None:
            return super().copy()
        return SpilledChunkedColumn.from_column(
            self, self._chunk_lengths, self._spill_store
        )

    # ------------------------------------------------------------------
    # Non-pinning overrides: compute without keeping dense payloads
    # ------------------------------------------------------------------
    def missing_count(self) -> int:
        if self._dense_mask is None and self._handles is not None:
            return sum(
                int(np.asarray(self._spill_store.load_mask(handle)).sum())
                for handle in self._handles
            )
        return super().missing_count()

    def mask(self) -> np.ndarray:
        """Dense read-only mask, gathered without loading the payloads."""
        if self._dense_mask is None and self._handles is not None:
            handles = self._handles
            if not handles:
                self._dense_mask = np.zeros(0, dtype=bool)
            else:
                parts = [
                    np.asarray(self._spill_store.load_mask(handle))
                    for handle in handles
                ]
                self._dense_mask = (
                    np.array(parts[0], dtype=bool)
                    if len(parts) == 1
                    else np.concatenate(parts)
                )
        return super().mask()

    def mask_fingerprint(self) -> str:
        if self._mask_fingerprint_cache is None and self._handles is not None:
            self.mask()  # gathers the dense mask without pinning payloads
        return super().mask_fingerprint()

    def unique(self) -> list[Any]:
        if self._handles is None:
            return super().unique()
        data, mask = self._gather_dense(copy=False)
        temp = Column._from_arrays(self.name, self.dtype, data, mask)
        return temp.unique()

    def codes(self) -> tuple[np.ndarray, int]:
        if self._codes_cache is None and self._handles is not None:
            data, mask = self._gather_dense(copy=False)
            temp = Column._from_arrays(self.name, self.dtype, data, mask)
            self._codes_cache = temp.codes()
        return super().codes()

    def fingerprint(self) -> str:
        if self._fingerprint_cache is None and self._handles is not None:
            data, mask = self._gather_dense(copy=False)
            temp = Column._from_arrays(self.name, self.dtype, data, mask)
            self._fingerprint_cache = temp.fingerprint()
        return super().fingerprint()

    def to_numpy(self) -> np.ndarray:
        if self._handles is None or not self.is_numeric():
            return super().to_numpy()
        parts = []
        for data, mask in self._shard_pairs():
            part = np.asarray(data).astype(float)
            mask = np.asarray(mask)
            if mask.any():
                part[mask] = np.nan
            parts.append(part)
        if not parts:
            return np.empty(0, dtype=float)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


def spill_frame(
    frame: DataFrame,
    store: SpillStore | None = None,
    chunk_size: int | None = None,
    budget_bytes: int | None = None,
    directory: str | Path | None = None,
) -> ChunkedFrame:
    """Spill a frame's columns into a (possibly fresh) store.

    A chunked input keeps its chunk boundaries when ``chunk_size`` is
    None; a monolithic input is cut at the resolved chunk size first.
    A column whose spill hits :class:`SpillCapacityError` (disk full)
    degrades to a resident :class:`ChunkedColumn` with a warning — the
    frame stays fully usable, it just was not moved out of RAM.
    """
    if store is None:
        store = SpillStore(budget_bytes=budget_bytes, directory=directory)
    if isinstance(frame, ChunkedFrame) and chunk_size is None:
        lengths: Sequence[int] = frame.chunk_lengths
    else:
        size = resolve_chunk_size(chunk_size)
        lengths = chunk_lengths_for(frame.num_rows, size)
    columns: list[ChunkedColumn] = []
    for name in frame.column_names:
        column = frame.column(name)
        try:
            columns.append(
                SpilledChunkedColumn.from_column(column, lengths, store)
            )
        except SpillCapacityError as error:
            _logger.warning(
                "keeping column %r resident instead of spilling: %s",
                name,
                error,
            )
            columns.append(ChunkedColumn.from_column(column, lengths))
    return ChunkedFrame(columns)


def spill_store_of(frame: DataFrame) -> SpillStore | None:
    """The store backing a frame's spilled columns, or None.

    Returns the first spilled column's store; a frame whose columns have
    all been materialized (released) no longer reports one.
    """
    for name in frame.column_names:
        column = frame.column(name)
        if isinstance(column, SpilledChunkedColumn) and column.spilled:
            return column.spill_store
    return None

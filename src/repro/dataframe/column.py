"""A single named, typed column of a DataFrame."""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from . import types as _types


class Column:
    """Ordered collection of values with one dtype and None for missing.

    Columns are the unit of storage inside :class:`~repro.dataframe.DataFrame`.
    They behave like immutable sequences for reading, with explicit mutating
    methods (``set``) used by the frame.
    """

    __slots__ = ("name", "dtype", "_values")

    def __init__(self, name: str, values: Iterable[Any], dtype: str | None = None):
        materialized = list(values)
        if dtype is None:
            dtype = _types.infer_dtype(materialized)
        if dtype not in _types.DTYPES:
            raise ValueError(f"unknown dtype {dtype!r}")
        self.name = name
        self.dtype = dtype
        self._values = [_types.coerce(value, dtype) for value in materialized]

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Column(self.name, self._values[index], self.dtype)
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.dtype == other.dtype
            and self._equal_values(other)
        )

    def _equal_values(self, other: "Column") -> bool:
        if len(self) != len(other):
            return False
        for mine, theirs in zip(self._values, other._values):
            if _types.is_missing(mine) and _types.is_missing(theirs):
                continue
            if mine != theirs:
                return False
        return True

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column({self.name!r}, dtype={self.dtype}, [{preview}{suffix}])"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def values(self) -> list[Any]:
        """Return a copy of the raw values (None marks missing)."""
        return list(self._values)

    def set(self, index: int, value: Any) -> None:
        """Overwrite one cell, widening the dtype if necessary."""
        try:
            self._values[index] = _types.coerce(value, self.dtype)
        except (ValueError, TypeError):
            widened = _types.common_dtype(self.dtype, _types.infer_dtype([value]))
            self._values = [_types.coerce(v, widened) for v in self._values]
            self.dtype = widened
            self._values[index] = _types.coerce(value, widened)

    def copy(self) -> "Column":
        return Column(self.name, self._values, self.dtype)

    def rename(self, name: str) -> "Column":
        return Column(name, self._values, self.dtype)

    def astype(self, dtype: str) -> "Column":
        """Return a copy coerced to ``dtype`` (missing cells preserved)."""
        return Column(self.name, self._values, dtype)

    # ------------------------------------------------------------------
    # Missing data
    # ------------------------------------------------------------------
    def is_missing(self) -> list[bool]:
        return [_types.is_missing(v) for v in self._values]

    def missing_count(self) -> int:
        return sum(1 for v in self._values if _types.is_missing(v))

    def non_missing(self) -> list[Any]:
        return [v for v in self._values if not _types.is_missing(v)]

    def fill_missing(self, value: Any) -> "Column":
        filled = [value if _types.is_missing(v) else v for v in self._values]
        return Column(self.name, filled)

    # ------------------------------------------------------------------
    # Analytics helpers
    # ------------------------------------------------------------------
    def is_numeric(self) -> bool:
        return _types.is_numeric_dtype(self.dtype)

    def to_numpy(self) -> np.ndarray:
        """Return a numpy view; missing numeric cells become ``nan``.

        String/bool columns are returned as object arrays with None kept.
        """
        if self.is_numeric():
            return np.array(
                [np.nan if _types.is_missing(v) else float(v) for v in self._values],
                dtype=float,
            )
        return np.array(self._values, dtype=object)

    def unique(self) -> list[Any]:
        """Distinct non-missing values in first-seen order."""
        seen: dict[Any, None] = {}
        for value in self._values:
            if _types.is_missing(value):
                continue
            if value not in seen:
                seen[value] = None
        return list(seen)

    def value_counts(self) -> Counter:
        """Counter of non-missing values."""
        return Counter(v for v in self._values if not _types.is_missing(v))

    def map(self, func: Callable[[Any], Any]) -> "Column":
        """Apply ``func`` to non-missing cells; missing cells stay missing."""
        mapped = [
            None if _types.is_missing(v) else func(v) for v in self._values
        ]
        return Column(self.name, mapped)

    def take(self, indices: Sequence[int]) -> "Column":
        return Column(self.name, [self._values[i] for i in indices], self.dtype)

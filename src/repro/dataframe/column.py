"""A single named, typed column of a DataFrame.

Storage contract (the array-backed columnar engine)
---------------------------------------------------
Every column is stored as two parallel numpy arrays:

``_data``
    A typed array holding the cell payloads. The numpy backing dtype per
    logical dtype is given by :data:`repro.dataframe.types.NUMPY_DTYPES`:
    ``int`` → ``int64`` (falling back to ``object`` when a value exceeds
    the int64 range), ``float`` → ``float64``, ``bool`` → ``bool_``, and
    ``string`` → ``object``. Non-missing float cells are never ``nan`` —
    missingness lives exclusively in the mask.

``_mask``
    A boolean array of the same length; ``True`` marks a missing cell.
    Masked slots in ``_data`` hold an arbitrary fill value
    (:data:`repro.dataframe.types.FILL_VALUES`) and must never be read
    without consulting the mask.

The sequence API (``values()``, iteration, indexing, ``set``) is preserved
exactly — it materializes Python-native values with ``None`` at masked
slots — while vectorized consumers read :meth:`values_array`,
:meth:`mask`, and :meth:`codes` directly and never touch per-cell Python
objects. Batched mutation goes through :meth:`set_many`, which writes
whole index slices (repair application's fast path) with the same
coercion/widening semantics as per-cell ``set``.

Codes-based relational-ops contract
-----------------------------------
:meth:`codes` factorizes a column into dense int64 group codes; the
relational kernels in :mod:`repro.dataframe.ops` are built entirely on
them. The guarantees those kernels rely on:

* equal non-missing cells share one code, and missing cells share the
  single *highest* code — so ``None`` groups with ``None`` (group-by
  semantics) and can be recognized/excluded in one comparison (join
  semantics, where null keys never match);
* numeric/bool columns on native numpy backing get codes in *value
  order* (``np.unique``), so sorting codes sorts values; object-backed
  columns get first-seen codes and the sort kernel remaps them through
  a rank table ordered by the documented value order (numbers before
  strings, missing last);
* the result is cached per column and invalidated by ``set`` /
  ``set_many``, so repeated group-by/join/sort calls over an unchanged
  frame share one factorization.

Fingerprint contract (content addressing)
-----------------------------------------
:meth:`fingerprint` digests a column's *logical content* — name, dtype,
row count, null mask, and cell payloads — into a short hex string that
the artifact layer (:mod:`repro.core.artifacts`) uses as a cache key.
The guarantees:

* **Equal content ⇒ equal fingerprint, across representations.** A
  chunked column, a monolithic copy, and a column rebuilt from the same
  values all hash identically (the digest is computed over the dense
  ``(_data, _mask)`` pair, so chunk layout is invisible). Artifacts
  computed for one representation are therefore reusable for any other —
  which is sound precisely because the chunked kernels are bit-identical
  to the monolithic ones.
* **Different content ⇒ different fingerprint.** The encoding is
  injective over the storage contract: dtype and length are hashed
  explicitly (so ``[1, 2]`` as int, float, and string all differ), the
  mask is hashed separately from the payloads (so a missing cell never
  collides with a cell holding the fill value), and object payloads are
  hashed per-cell via ``repr`` with an out-of-band separator (so
  ``["ab", "c"]`` cannot collide with ``["a", "bc"]``). Non-object
  payloads rely on masked slots holding the canonical
  :data:`~repro.dataframe.types.FILL_VALUES` — which every construction
  path guarantees (and :meth:`ChunkedColumn.from_shards
  <repro.dataframe.chunked.ChunkedColumn.from_shards>` requires).
* **Mutation dirties exactly the touched column.** The digest is cached
  on the column and invalidated by ``set`` / ``set_many`` (hence by
  ``DataFrame.set_cells`` and ``repair.apply_patches``); a 3-cell patch
  to one column leaves every other column's cached fingerprint intact.
  :meth:`copy` carries the cached fingerprint (and codes) to the clone,
  so repair's copy-then-patch flow re-hashes only the patched columns.

Chunking contract
-----------------
Every column also exposes the shard iteration API used by the chunked
execution layer (:mod:`repro.dataframe.chunked`): :meth:`iter_chunks`
yields monolithic column shards whose concatenation is row-identical to
the column, ``n_chunks`` / ``chunk_lengths`` describe the boundaries. A
plain ``Column`` is the degenerate single-chunk case (it yields itself),
so chunk-aware kernels — per-chunk partial aggregates merged exactly for
integer counters/min/max/frequency tables, gathered compressed payloads
for float moments and quantiles — run unchanged and bit-identically on
both representations. ``codes()`` on a chunked column always factorizes
across *all* chunks (equal values in different chunks share one code);
see the :mod:`repro.dataframe.chunked` module docstring for the chunk
boundary invariants and the exact merge rules.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from . import types as _types


def _pack(values: list[Any], dtype: str) -> tuple[np.ndarray, np.ndarray]:
    """Pack coerced Python values into (data, mask) arrays for ``dtype``.

    ``values`` must already be coerced: every element is either None or a
    valid Python payload for the logical dtype.
    """
    n = len(values)
    mask = np.fromiter(
        (value is None for value in values), dtype=bool, count=n
    )
    fill = _types.FILL_VALUES[dtype]
    if dtype == _types.STRING:
        data = np.empty(n, dtype=object)
        data[:] = values
        return data, mask
    filled = [fill if value is None else value for value in values]
    target = _types.NUMPY_DTYPES[dtype]
    if dtype == _types.INT:
        try:
            data = np.array(filled, dtype=target)
        except OverflowError:
            data = np.empty(n, dtype=object)
            data[:] = filled
    else:
        data = np.array(filled, dtype=target)
    return data, mask


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


class Column:
    """Ordered collection of values with one dtype and None for missing.

    Columns are the unit of storage inside :class:`~repro.dataframe.DataFrame`.
    They behave like immutable sequences for reading, with explicit mutating
    methods (``set``) used by the frame. Internally they are numpy-backed;
    see the module docstring for the storage contract.
    """

    __slots__ = ("name", "dtype", "_data", "_mask", "_codes_cache",
                 "_fingerprint_cache", "_mask_fingerprint_cache")

    def __init__(self, name: str, values: Iterable[Any], dtype: str | None = None):
        materialized = list(values)
        if dtype is None:
            dtype = _types.infer_dtype(materialized)
        if dtype not in _types.DTYPES:
            raise ValueError(f"unknown dtype {dtype!r}")
        self.name = name
        self.dtype = dtype
        coerced = [_types.coerce(value, dtype) for value in materialized]
        self._data, self._mask = _pack(coerced, dtype)
        self._codes_cache: tuple[np.ndarray, int] | None = None
        self._fingerprint_cache: str | None = None
        self._mask_fingerprint_cache: str | None = None

    @classmethod
    def _from_arrays(
        cls, name: str, dtype: str, data: np.ndarray, mask: np.ndarray
    ) -> "Column":
        """Wrap pre-validated (data, mask) arrays without re-coercing.

        The column takes ownership of the arrays; callers must pass fresh
        copies — or, as the chunked layer does for the shards it yields,
        *read-only* views — never writable views into another column's
        storage.
        """
        column = cls.__new__(cls)
        column.name = name
        column.dtype = dtype
        column._data = data
        column._mask = mask
        column._codes_cache = None
        column._fingerprint_cache = None
        column._mask_fingerprint_cache = None
        return column

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Column._from_arrays(
                self.name,
                self.dtype,
                self._data[index].copy(),
                self._mask[index].copy(),
            )
        if self._mask[index]:
            return None
        value = self._data[index]
        return value.item() if isinstance(value, np.generic) else value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.dtype == other.dtype
            and self._equal_values(other)
        )

    def _equal_values(self, other: "Column") -> bool:
        if len(self) != len(other):
            return False
        if not np.array_equal(self._mask, other._mask):
            return False
        return self.values() == other.values()

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.values()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column({self.name!r}, dtype={self.dtype}, [{preview}{suffix}])"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def values(self) -> list[Any]:
        """Return a copy of the raw values (None marks missing)."""
        out = self._data.tolist()
        if self._mask.any():
            for index in np.flatnonzero(self._mask).tolist():
                out[index] = None
        return out

    def values_array(self) -> np.ndarray:
        """Read-only view of the typed backing array.

        Slots where :meth:`mask` is True hold fill values, not data.
        """
        return _readonly(self._data)

    def mask(self) -> np.ndarray:
        """Read-only boolean null mask (True = missing)."""
        return _readonly(self._mask)

    def set(self, index: int, value: Any) -> None:
        """Overwrite one cell, widening the dtype if necessary."""
        self._codes_cache = None
        self._fingerprint_cache = None
        self._mask_fingerprint_cache = None
        try:
            coerced = _types.coerce(value, self.dtype)
        except (ValueError, TypeError):
            widened = _types.common_dtype(self.dtype, _types.infer_dtype([value]))
            values = [_types.coerce(v, widened) for v in self.values()]
            values[index] = _types.coerce(value, widened)
            self.dtype = widened
            self._data, self._mask = _pack(values, widened)
            return
        if not -len(self._data) <= index < len(self._data):
            raise IndexError(f"index {index} out of range")
        if coerced is None:
            self._mask[index] = True
            self._data[index] = _types.FILL_VALUES[self.dtype]
            return
        try:
            self._data[index] = coerced
        except OverflowError:
            self._data = self._data.astype(object)
            self._data[index] = coerced
        self._mask[index] = False

    def set_many(self, indices: Sequence[int], values: Sequence[Any]) -> None:
        """Batched :meth:`set`: overwrite many cells in one array write.

        Equivalent to calling ``set(index, value)`` for each pair —
        masked/payload slots are written as whole array slices instead
        of per-cell Python calls, and with duplicate indices the last
        write wins, exactly like the sequential loop. Widening takes the
        lattice join over the column dtype and all non-missing patch
        values at once (the join is commutative, so the outcome never
        depends on patch order); every patch value is then coerced
        directly to the final dtype.
        """
        idx = np.asarray(indices, dtype=np.intp)
        materialized = list(values)
        if idx.size != len(materialized):
            raise ValueError(
                f"{idx.size} indices but {len(materialized)} values"
            )
        if idx.size == 0:
            return
        n = len(self._data)
        if int(idx.min()) < -n or int(idx.max()) >= n:
            raise IndexError(f"index out of range for {n} rows")
        self._codes_cache = None
        self._fingerprint_cache = None
        self._mask_fingerprint_cache = None
        try:
            coerced = [_types.coerce(v, self.dtype) for v in materialized]
        except (ValueError, TypeError):
            widened = self.dtype
            for value in materialized:
                if _types.is_missing(value):
                    continue
                widened = _types.common_dtype(
                    widened, _types.infer_dtype([value])
                )
            full = self.values()
            for position, value in zip(idx.tolist(), materialized):
                full[position] = value
            self.dtype = widened
            self._data, self._mask = _pack(
                [_types.coerce(v, widened) for v in full], widened
            )
            return
        missing = np.fromiter(
            (v is None for v in coerced), dtype=bool, count=idx.size
        )
        fill = _types.FILL_VALUES[self.dtype]
        filled = [fill if v is None else v for v in coerced]
        if self._data.dtype == object:
            payload = np.empty(idx.size, dtype=object)
            payload[:] = filled
            self._data[idx] = payload
        else:
            try:
                self._data[idx] = np.asarray(filled, dtype=self._data.dtype)
            except OverflowError:
                self._data = self._data.astype(object)
                payload = np.empty(idx.size, dtype=object)
                payload[:] = filled
                self._data[idx] = payload
        self._mask[idx] = missing

    def copy(self) -> "Column":
        out = Column._from_arrays(
            self.name, self.dtype, self._data.copy(), self._mask.copy()
        )
        # A copy has identical content: carry the content-derived caches so
        # repair's copy-then-patch flow re-derives them only for patched
        # columns. The cached codes array is shared read-only (the engine
        # never writes into it; mutation replaces the cache wholesale).
        out._codes_cache = self._codes_cache
        out._fingerprint_cache = self._fingerprint_cache
        out._mask_fingerprint_cache = self._mask_fingerprint_cache
        return out

    def rename(self, name: str) -> "Column":
        return Column._from_arrays(
            name, self.dtype, self._data.copy(), self._mask.copy()
        )

    def astype(self, dtype: str) -> "Column":
        """Return a copy coerced to ``dtype`` (missing cells preserved)."""
        if dtype == self.dtype:
            return self.copy()
        if self.dtype == _types.INT and dtype == _types.FLOAT:
            if self._data.dtype != object:
                return Column._from_arrays(
                    self.name, dtype, self._data.astype(float), self._mask.copy()
                )
        return Column(self.name, self.values(), dtype)

    # ------------------------------------------------------------------
    # Missing data
    # ------------------------------------------------------------------
    def is_missing(self) -> list[bool]:
        return self._mask.tolist()

    def missing_count(self) -> int:
        return int(self._mask.sum())

    def non_missing(self) -> list[Any]:
        return self._data[~self._mask].tolist()

    def fill_missing(self, value: Any) -> "Column":
        filled = [value if v is None else v for v in self.values()]
        return Column(self.name, filled)

    # ------------------------------------------------------------------
    # Analytics helpers
    # ------------------------------------------------------------------
    def is_numeric(self) -> bool:
        return _types.is_numeric_dtype(self.dtype)

    def to_numpy(self) -> np.ndarray:
        """Return a numpy view; missing numeric cells become ``nan``.

        String/bool columns are returned as object arrays with None kept.
        """
        if self.is_numeric():
            out = self._data.astype(float)
            if self._mask.any():
                out[self._mask] = np.nan
            return out
        out = np.empty(len(self._data), dtype=object)
        out[:] = self.values()
        return out

    def unique(self) -> list[Any]:
        """Distinct non-missing values in first-seen order."""
        valid = self._data[~self._mask]
        if valid.size == 0:
            return []
        _, first_index = np.unique(valid, return_index=True)
        return valid[np.sort(first_index)].tolist()

    def value_counts(self) -> Counter:
        """Counter of non-missing values."""
        return Counter(self.non_missing())

    def codes(self) -> tuple[np.ndarray, int]:
        """Factorize into dense integer group codes.

        Returns ``(codes, n_groups)`` where equal non-missing values share
        one code (numeric codes follow the values' sort order, object
        codes first-seen order) and missing cells — which group together,
        matching the sequence-API semantics of ``None == None`` — share
        the single highest code. The result is cached (and invalidated by
        :meth:`set`); callers must not mutate the returned array.
        """
        if self._codes_cache is not None:
            return self._codes_cache
        n = len(self._data)
        codes = np.empty(n, dtype=np.int64)
        valid = ~self._mask
        n_groups = 0
        if valid.any():
            payload = self._data[valid]
            if payload.dtype == object:
                inverse, n_groups = _types.factorize_objects(payload)
                codes[valid] = inverse
            else:
                _, inverse = np.unique(payload, return_inverse=True)
                codes[valid] = inverse
                n_groups = int(inverse.max()) + 1
        if self._mask.any():
            codes[self._mask] = n_groups
            n_groups += 1
        self._codes_cache = (codes, n_groups)
        return self._codes_cache

    def fingerprint(self) -> str:
        """Content digest for artifact caching (see the module docstring).

        Returns a 32-hex-char blake2b digest over name, dtype, length,
        null mask, and cell payloads. Equal logical content always hashes
        equal (chunked vs monolithic, copies, rebuilt columns); any
        visible difference — values, missingness, dtype, name, order —
        hashes different. One benign corner: an int column whose mutation
        history left it object-backed can hash differently from an
        int64-backed twin — a false cache miss, never a false hit. The
        digest is cached and invalidated by :meth:`set` / :meth:`set_many`,
        so an unchanged column never pays for a second hash and a patched
        column dirties only itself.
        """
        if self._fingerprint_cache is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self.name.encode("utf-8", "surrogatepass"))
            digest.update(b"\x00")
            digest.update(self.dtype.encode("ascii"))
            digest.update(len(self._data).to_bytes(8, "little"))
            digest.update(np.packbits(self._mask).tobytes())
            data = self._data
            if data.dtype == object:
                # Per-cell repr with an out-of-band separator: repr always
                # escapes control characters, so "\x1f" cannot appear in a
                # cell's encoding and adjacent cells cannot be resegmented
                # into a colliding payload. Masked slots hash as a marker
                # repr can never emit, independent of their fill values.
                payload = "\x1f".join(
                    "\x00" if missing else repr(value)
                    for value, missing in zip(data.tolist(), self._mask.tolist())
                )
                digest.update(payload.encode("utf-8", "surrogatepass"))
            else:
                # Masked slots hold the canonical fill values on every
                # construction path, so the raw buffer is content-stable.
                digest.update(data.dtype.str.encode("ascii"))
                digest.update(data.tobytes())
            self._fingerprint_cache = digest.hexdigest()
        return self._fingerprint_cache

    def mask_fingerprint(self) -> str:
        """Digest of the column's *missingness* only (name, length, mask).

        Artifacts that depend solely on which cells are missing — the
        missing tables of the profile report — key on this instead of
        :meth:`fingerprint`, so a repair that overwrites values without
        changing missingness leaves them cached. Invalidation follows
        the same rules as :meth:`fingerprint` (any mutation clears it;
        the mask may not actually have changed, in which case the
        recomputed digest — and the cache key — come out identical).
        """
        if self._mask_fingerprint_cache is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self.name.encode("utf-8", "surrogatepass"))
            digest.update(b"\x00")
            digest.update(len(self._mask).to_bytes(8, "little"))
            digest.update(np.packbits(self._mask).tobytes())
            self._mask_fingerprint_cache = digest.hexdigest()
        return self._mask_fingerprint_cache

    # ------------------------------------------------------------------
    # Chunk API (degenerate single-chunk case; see repro.dataframe.chunked)
    # ------------------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        return 1

    @property
    def chunk_lengths(self) -> tuple[int, ...]:
        return (len(self),)

    def iter_chunks(self) -> Iterator["Column"]:
        """Yield the column's shards in row order — here, itself.

        Chunk-aware kernels iterate this on any column; a monolithic
        column is one shard, so the per-chunk path and the dense path
        are the same code.
        """
        yield self

    def map(self, func: Callable[[Any], Any]) -> "Column":
        """Apply ``func`` to non-missing cells; missing cells stay missing."""
        mapped = [None if v is None else func(v) for v in self.values()]
        return Column(self.name, mapped)

    def take(self, indices: Sequence[int]) -> "Column":
        idx = np.asarray(indices, dtype=np.intp)
        return Column._from_arrays(
            self.name, self.dtype, self._data[idx], self._mask[idx]
        )

"""Spill-aware external merge sort over chunked/spilled frames.

:func:`repro.dataframe.ops.sort_by` densifies: it gathers every column
into RAM, argsorts, and ``take``\\ s. That is the right plan for resident
frames and the wrong one past RAM — sorting a spilled frame through it
would materialize the whole table and release its spill state. This
module is the out-of-core plan: a classic external merge sort whose
peak resident bytes stay under the owning
:class:`~repro.dataframe.spill.SpillStore` budget and whose output is
itself a :class:`~repro.dataframe.spill.SpilledChunkedColumn`-backed
:class:`~repro.dataframe.chunked.ChunkedFrame` — sorting a spilled frame
never densifies input or output.

Bit-identity contract
---------------------
The external path must equal ``ops.sort_by`` bit for bit (the fuzz
harness pins it across monolithic/chunked/spilled legs). Three facts
make that hold:

* **Run generation reuses the memory kernel.** Each size-capped batch
  of rows is sorted with the exact per-column
  :func:`~repro.dataframe.ops._order_codes` + ``np.lexsort`` machinery
  ``ops.sort_by`` uses (codes negated per column for ``descending``),
  so within a run the permutation is the memory permutation restricted
  to the batch. Order codes are batch-local, but their *order* is the
  global value order (:func:`~repro.dataframe.ops._sort_key`: numbers
  before strings, missing last), so batch-local and global comparisons
  agree on every row pair.
* **The merge compares raw key values.** Runs are decomposed into
  equal-key blocks; each block's representative key tuple is compared
  across runs via ``_sort_key`` — the same total order the codes
  encode — inverted wholesale for ``descending`` (per-column code
  negation and whole-tuple inversion both reduce to "the first
  differing column decides, reversed").
* **Ties break by run index.** Runs cover consecutive row ranges in
  input order and each run is internally stable, so preferring the
  lower run index on equal keys reproduces the global stable order.

Strategy seam
-------------
``ops.sort_by(..., strategy=...)`` routes through
:func:`resolve_sort_strategy`: an explicit argument wins, then the
``DATALENS_SORT_STRATEGY`` environment override, then ``auto`` —
``external`` when any input column is spilled (the memory plan would
densify it), ``memory`` otherwise. The join planner's ``sortmerge``
strategy (:mod:`repro.dataframe.joins`) external-sorts unsorted inputs
through this module before running the validated merge join.

Cost model
----------
Runs are cut at ``budget // (4 * bytes_per_row)`` rows, so one run, the
merge's resident LRU traffic, and the output chunk under assembly all
fit comfortably inside the spill budget. The merge is a k-way
tournament over run heads (a heap of equal-key block boundaries) with
galloping: a run whose next blocks all sort before every other head is
consumed in one contiguous segment, so presorted inputs merge in O(k)
segments instead of O(blocks) heap operations.

The merge fan-in is bounded at ``4 * num_columns`` live runs (one
column is gathered at a time, and a run's single-column shard is
~``1/(4 * num_columns)`` of the budget, so that many run shards fit
resident simultaneously). Inputs that generate more runs than the
fan-in are merged in passes — groups of ``fan_in`` *contiguous* runs
collapse into one multi-shard run per pass, preserving the run-index
stability rule — so every shard is loaded O(passes) times instead of
once per interleaved segment, which on narrow keys is the difference
between I/O-linear and LRU-thrashing behavior.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Iterator, Sequence

import numpy as np

from . import types as _types
from .chunked import ChunkedColumn, ChunkedFrame, chunk_lengths_for
from .column import Column
from .frame import DataFrame
from .ops import _order_codes, _sort_key
from .spill import (
    SpilledChunkedColumn,
    SpillStore,
    _resliced_pairs,
    spill_store_of,
)

#: Environment override for the default sort strategy.
SORT_STRATEGY_ENV = "DATALENS_SORT_STRATEGY"

SORT_STRATEGIES = ("auto", "memory", "external")

#: Payload-byte estimate per row for object-backed cells (strings,
#: overflowed ints) when sizing runs — deliberately generous so runs
#: undershoot the budget rather than overshoot it.
_OBJECT_ROW_BYTES = 64

#: A run is cut at budget/4 so the run being built, the merge's LRU
#: traffic, and the output chunk under assembly never sum past the
#: budget.
_RUN_BUDGET_FRACTION = 4


def resolve_sort_strategy(strategy: str | None, frame: DataFrame) -> str:
    """Resolve the physical sort strategy: explicit > environment > auto.

    ``auto`` picks ``external`` when any input column is spilled
    (sorting through the memory kernel would densify it and release its
    shards), else ``memory``.
    """
    if strategy is None:
        strategy = (
            os.environ.get(SORT_STRATEGY_ENV, "").strip().lower() or "auto"
        )
    strategy = strategy.lower()
    if strategy not in SORT_STRATEGIES:
        raise ValueError(
            f"unknown sort strategy {strategy!r}; expected one of "
            f"{list(SORT_STRATEGIES)}"
        )
    if strategy == "auto":
        return "external" if spill_store_of(frame) is not None else "memory"
    return strategy


def _per_row_bytes(frame: DataFrame) -> int:
    """Estimated payload+mask bytes per row across all columns."""
    total = 0
    for name in frame.column_names:
        np_dtype = np.dtype(_types.NUMPY_DTYPES[frame.column(name).dtype])
        payload = _OBJECT_ROW_BYTES if np_dtype == object else np_dtype.itemsize
        total += payload + 1  # +1 mask byte
    return max(total, 1)


class _Run:
    """One sorted run: spilled shards plus its equal-key block index.

    ``handles`` maps column name to the run's spilled shards in row
    order (one shard for generated runs, several for pass-merged runs);
    ``shard_starts`` are the row offsets of those shards (length
    ``n_shards + 1``); ``block_starts`` are the row offsets of equal-key
    blocks (length ``n_blocks + 1``); ``sort_keys[j]`` is block ``j``'s
    representative key as a tuple of :func:`_sort_key` tuples.
    """

    __slots__ = ("handles", "sort_keys", "block_starts", "shard_starts")

    def __init__(
        self,
        handles: dict[str, list[Any]],
        sort_keys: list[tuple],
        block_starts: np.ndarray,
        shard_starts: np.ndarray,
    ) -> None:
        self.handles = handles
        self.sort_keys = sort_keys
        self.block_starts = block_starts
        self.shard_starts = shard_starts

    @property
    def n_blocks(self) -> int:
        return len(self.sort_keys)

    def segment_pairs(
        self, name: str, store: SpillStore, start: int, end: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Stream one column's ``[start, end)`` rows shard by shard.

        Loads go through the store's LRU, so at most one run shard per
        live consumer is resident at a time.
        """
        starts = self.shard_starts
        i = int(np.searchsorted(starts, start, side="right")) - 1
        while start < end:
            shard_end = int(starts[i + 1])
            data, mask = store.load(self.handles[name][i])
            lo = start - int(starts[i])
            hi = min(end, shard_end) - int(starts[i])
            yield data[lo:hi], mask[lo:hi]
            start = int(starts[i + 1]) if end > shard_end else end
            i += 1

    def release(self, store: SpillStore) -> None:
        """Free every shard once — safe to call again after."""
        for handle_list in self.handles.values():
            for handle in handle_list:
                store.release(handle)
        self.handles = {}


class _DescendingKey:
    """Inverts block-key comparisons for ``descending`` merges.

    Both ``__lt__`` and ``__eq__`` matter: heap entries are
    ``(key, run, block)`` tuples, and tuple comparison consults ``==``
    on the key before falling through to the run-index tie-break.
    """

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_DescendingKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DescendingKey) and self.key == other.key


def _generate_runs(
    frame: DataFrame,
    names: Sequence[str],
    descending: bool,
    store: SpillStore,
    batch_lengths: Sequence[int],
) -> list[_Run]:
    """Cut the frame into size-capped batches, sort and spill each.

    Every column streams through :func:`_resliced_pairs` in lockstep
    (spilled inputs load shard by shard through the store's LRU), so at
    most one batch of rows is resident while runs are generated.
    """
    columns = {name: frame.column(name) for name in frame.column_names}

    def pairs_of(col: Column) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if isinstance(col, ChunkedColumn):
            return col._shard_pairs()
        return iter([(np.asarray(col.values_array()), np.asarray(col.mask()))])

    reslicers = {
        name: _resliced_pairs(pairs_of(col), batch_lengths)
        for name, col in columns.items()
    }
    runs: list[_Run] = []
    for length in batch_lengths:
        batch = {name: next(reslicers[name]) for name in columns}
        keys = []
        for name in names:
            data, mask = batch[name]
            codes = _order_codes(
                Column._from_arrays(name, columns[name].dtype, data, mask)
            )
            keys.append(-codes if descending else codes)
        if keys:
            # np.lexsort treats its *last* key as primary and is stable
            # — exactly the ops.sort_by kernel, batch-restricted.
            order = np.lexsort(tuple(reversed(keys)))
            change = np.zeros(max(length - 1, 0), dtype=bool)
            for codes in keys:
                change |= np.diff(codes[order]) != 0
            starts = np.concatenate(
                ([0], np.flatnonzero(change) + 1, [length])
            ).astype(np.int64)
        else:
            order = np.arange(length, dtype=np.intp)
            starts = np.array([0, length], dtype=np.int64)
        handles: dict[str, list[Any]] = {}
        sorted_key_pairs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name, (data, mask) in batch.items():
            sdata = data[order]
            smask = mask[order]
            handles[name] = [store.spill(sdata, smask)]
            if name in names:
                sorted_key_pairs[name] = (sdata, smask)
        head_rows = starts[:-1]
        per_column_reps = []
        for name in names:
            sdata, smask = sorted_key_pairs[name]
            # .tolist() converts numpy scalars to Python values, which
            # _sort_key requires (np.int64 is not an ``int`` instance).
            values = sdata[head_rows].tolist()
            missing = smask[head_rows].tolist()
            per_column_reps.append(
                [None if m else v for v, m in zip(values, missing)]
            )
        sort_keys = [
            tuple(_sort_key(reps[j]) for reps in per_column_reps)
            for j in range(len(head_rows))
        ]
        shard_starts = np.array([0, length], dtype=np.int64)
        runs.append(_Run(handles, sort_keys, starts, shard_starts))
    return runs


def _merge_plan(
    runs: Sequence[_Run], descending: bool
) -> list[tuple[int, int, int]]:
    """K-way tournament over run heads → ``(run, start, end)`` segments.

    Pops the globally smallest block, then gallops: consecutive blocks
    of the winning run that still sort before every other run's head
    (ties broken by run index — the global stability rule) coalesce
    into one contiguous segment.
    """
    if descending:
        def wrap(key: tuple) -> Any:
            return _DescendingKey(key)
    else:
        def wrap(key: tuple) -> Any:
            return key

    heap = [
        (wrap(run.sort_keys[0]), r, 0)
        for r, run in enumerate(runs)
        if run.n_blocks
    ]
    heapq.heapify(heap)
    plan: list[tuple[int, int, int]] = []
    while heap:
        _, r, j = heapq.heappop(heap)
        run = runs[r]
        if heap:
            head_key, head_r = heap[0][0], heap[0][1]
            j_end = j + 1
            while j_end < run.n_blocks:
                key = wrap(run.sort_keys[j_end])
                if key < head_key or (key == head_key and r < head_r):
                    j_end += 1
                else:
                    break
        else:
            j_end = run.n_blocks
        start = int(run.block_starts[j])
        end = int(run.block_starts[j_end])
        if plan and plan[-1][0] == r and plan[-1][2] == start:
            plan[-1] = (r, plan[-1][1], end)
        else:
            plan.append((r, start, end))
        if j_end < run.n_blocks:
            heapq.heappush(heap, (wrap(run.sort_keys[j_end]), r, j_end))
    return plan


def _plan_segments(
    name: str,
    runs: Sequence[_Run],
    plan: Sequence[tuple[int, int, int]],
    store: SpillStore,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """One column's rows in merge order, shard loads LRU-bounded."""
    for r, start, end in plan:
        yield from runs[r].segment_pairs(name, store, start, end)


def _merge_group(
    group: Sequence[_Run],
    descending: bool,
    store: SpillStore,
    shard_rows: int,
) -> _Run:
    """Collapse a contiguous group of runs into one multi-shard run.

    One intermediate merge pass: the group's merge plan is materialized
    column by column into budget/4-capped shards, and the merged run's
    block index is stitched from the source blocks in plan order
    (adjacent equal keys coalesce). Because groups are contiguous in run
    order, the run-index stability rule keeps holding across passes.
    Source shards are released as soon as the merged run exists.
    """
    plan = _merge_plan(group, descending)
    total = sum(int(run.block_starts[-1]) for run in group)
    lengths = chunk_lengths_for(total, shard_rows)
    handles: dict[str, list[Any]] = {}
    for name in group[0].handles:
        handles[name] = [
            store.spill(data, mask)
            for data, mask in _resliced_pairs(
                _plan_segments(name, group, plan, store), lengths
            )
        ]
    sort_keys: list[tuple] = []
    bounds = [0]
    for r, start, end in plan:
        run = group[r]
        block_starts = run.block_starts
        j = int(np.searchsorted(block_starts, start))
        position = start
        while position < end:
            block_end = min(int(block_starts[j + 1]), end)
            key = run.sort_keys[j]
            if sort_keys and sort_keys[-1] == key:
                bounds[-1] += block_end - position
            else:
                sort_keys.append(key)
                bounds.append(bounds[-1] + (block_end - position))
            position = block_end
            j += 1
    shard_starts = np.concatenate(
        ([0], np.cumsum(np.asarray(lengths, dtype=np.int64)))
    ).astype(np.int64)
    merged = _Run(
        handles, sort_keys, np.asarray(bounds, dtype=np.int64), shard_starts
    )
    for run in group:
        run.release(store)
    return merged


def _emit_column(
    name: str,
    dtype: str,
    runs: Sequence[_Run],
    plan: Sequence[tuple[int, int, int]],
    out_lengths: Sequence[int],
    store: SpillStore,
) -> SpilledChunkedColumn:
    """Gather one column through the merge plan into spilled out-shards.

    Each plan segment loads its run shards through the store's LRU (so
    residency stays budget-bounded) and slices; the segment stream is
    re-cut at the output chunk boundaries and spilled shard by shard.
    """
    handles = [
        store.spill(data, mask)
        for data, mask in _resliced_pairs(
            _plan_segments(name, runs, plan, store), out_lengths
        )
    ]
    return SpilledChunkedColumn.from_handles(name, dtype, handles, store)


def external_sort_by(
    frame: DataFrame,
    columns: Sequence[str],
    descending: bool = False,
    store: SpillStore | None = None,
) -> ChunkedFrame:
    """Sort out-of-core; bit-identical to ``ops.sort_by`` (see module doc).

    The result is a :class:`~repro.dataframe.chunked.ChunkedFrame` of
    spilled columns backed by ``store`` (default: the input's own store,
    else a fresh one). Intermediate run shards are released before
    returning; the input frame's shards are never touched.
    """
    names = list(columns)
    for name in names:
        frame.column(name)  # preserve KeyError on unknown columns
    if store is None:
        store = spill_store_of(frame) or SpillStore()
    n = frame.num_rows
    batch_rows = max(
        1, store.budget_bytes // (_RUN_BUDGET_FRACTION * _per_row_bytes(frame))
    )
    batch_lengths = chunk_lengths_for(n, batch_rows)
    runs = _generate_runs(frame, names, descending, store, batch_lengths)
    # Bounded fan-in: one column is gathered at a time, and a run's
    # single-column shard is ~1/(4 * num_columns) of the budget, so this
    # many run shards stay resident without LRU thrash (see module doc).
    fan_in = max(2, _RUN_BUDGET_FRACTION * max(1, frame.num_columns))
    try:
        while len(runs) > fan_in:
            runs = [
                _merge_group(runs[g : g + fan_in], descending, store, batch_rows)
                if len(runs[g : g + fan_in]) > 1
                else runs[g]
                for g in range(0, len(runs), fan_in)
            ]
        plan = _merge_plan(runs, descending)
        out_lengths = chunk_lengths_for(n, batch_rows)
        dtypes = frame.dtypes()
        return ChunkedFrame(
            _emit_column(name, dtypes[name], runs, plan, out_lengths, store)
            for name in frame.column_names
        )
    finally:
        for run in runs:
            run.release(store)

"""Relational operations over DataFrames: sort, group-by, join."""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping, Sequence

from .frame import DataFrame

_MISSING_KEY = ("__missing__",)


def _sort_key(value: Any) -> tuple:
    """Total order over heterogenous cell values; missing sorts last."""
    if value is None:
        return (2, 0)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, float(value))
    return (1, str(value))


def sort_by(
    frame: DataFrame, columns: Sequence[str], descending: bool = False
) -> DataFrame:
    """Return the frame sorted by the given columns (stable)."""
    indices = sorted(
        range(frame.num_rows),
        key=lambda i: tuple(_sort_key(frame.at(i, c)) for c in columns),
        reverse=descending,
    )
    return frame.take(indices)


def group_indices(
    frame: DataFrame, columns: Sequence[str]
) -> dict[tuple[Hashable, ...], list[int]]:
    """Map each distinct key tuple to the row indices holding it."""
    groups: dict[tuple[Hashable, ...], list[int]] = {}
    for i in range(frame.num_rows):
        key = tuple(
            _MISSING_KEY if frame.at(i, c) is None else frame.at(i, c)
            for c in columns
        )
        groups.setdefault(key, []).append(i)
    return groups


def group_by(
    frame: DataFrame,
    columns: Sequence[str],
    aggregations: Mapping[str, tuple[str, Callable[[list[Any]], Any]]],
) -> DataFrame:
    """Group rows and aggregate.

    ``aggregations`` maps output column name to ``(input_column, func)``,
    where ``func`` receives the list of non-missing input values per group.
    """
    groups = group_indices(frame, columns)
    out: dict[str, list[Any]] = {name: [] for name in columns}
    out.update({name: [] for name in aggregations})
    for key, indices in groups.items():
        for col_name, part in zip(columns, key):
            out[col_name].append(None if part == _MISSING_KEY else part)
        for out_name, (in_name, func) in aggregations.items():
            values = [
                frame.at(i, in_name)
                for i in indices
                if frame.at(i, in_name) is not None
            ]
            out[out_name].append(func(values) if values else None)
    return DataFrame.from_dict(out)


def inner_join(
    left: DataFrame,
    right: DataFrame,
    on: Sequence[str],
    suffix: str = "_right",
) -> DataFrame:
    """Hash inner join on equality of the ``on`` columns.

    Overlapping non-key columns from the right side get ``suffix`` appended.
    """
    right_groups = group_indices(right, on)
    left_names = left.column_names
    right_extra = [c for c in right.column_names if c not in on]
    renamed = {
        c: (c + suffix if c in left_names else c) for c in right_extra
    }
    out: dict[str, list[Any]] = {c: [] for c in left_names}
    out.update({renamed[c]: [] for c in right_extra})
    for i in range(left.num_rows):
        key = tuple(
            _MISSING_KEY if left.at(i, c) is None else left.at(i, c) for c in on
        )
        if _MISSING_KEY in key:
            continue
        for j in right_groups.get(key, []):
            for c in left_names:
                out[c].append(left.at(i, c))
            for c in right_extra:
                out[renamed[c]].append(right.at(j, c))
    return DataFrame.from_dict(out)


def value_counts_frame(frame: DataFrame, column: str) -> DataFrame:
    """Two-column frame of (value, count) sorted by descending count."""
    counts = frame.column(column).value_counts()
    ordered = counts.most_common()
    return DataFrame.from_dict(
        {column: [v for v, _ in ordered], "count": [c for _, c in ordered]}
    )

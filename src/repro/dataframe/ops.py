"""Relational operations over DataFrames: sort, group-by, join.

Vectorized contract (the codes-based relational kernels)
--------------------------------------------------------
Every operation here runs on the integer group codes exposed by
:meth:`repro.dataframe.Column.codes` / :meth:`repro.dataframe.DataFrame.column_codes`
instead of per-cell ``frame.at`` loops:

* ``sort_by`` — lexicographic stable argsort over per-column *order
  codes* (codes remapped so their integer order matches the documented
  value order: numbers before strings, missing last). ``descending=True``
  negates each column's codes independently, which reverses the value
  order while keeping ties in original row order (stable). A
  ``strategy`` seam (explicit > ``DATALENS_SORT_STRATEGY`` > auto)
  routes spilled inputs through the external merge sort in
  :mod:`repro.dataframe.sort`, which reuses these exact order-code
  semantics per run so both plans are bit-identical.
* ``group_indices`` / ``group_by`` — one stable argsort of the composite
  key codes; group boundaries come from code changes in the sorted
  array. Groups are emitted in first-occurrence order (matching the
  historical dict-insertion order) and row lists are ascending. Missing
  key cells group together (``None`` matches ``None``) and are
  represented by the private :data:`_MISSING_KEY` singleton inside key
  tuples — a sentinel no genuine cell value can equal.
* ``inner_join`` — a hash join expressed as shared code arrays: both
  frames' key columns are factorized jointly so equal values get equal
  codes across frames, the right side is sorted once, and left rows are
  matched via ``searchsorted`` + a vectorized slice expansion. Rows with
  *any* missing key cell never match (SQL semantics), unlike group-by
  where null keys form a group. Output rows keep the seed order (left
  row order, then right row order within a key) and columns are gathered
  with ``take`` so dtypes are preserved (an empty join result keeps the
  input dtypes instead of decaying to ``string``).
* ``group_by`` aggregation dispatch — the common aggregators may be
  requested by name (``"sum"``, ``"mean"``, ``"min"``, ``"max"``,
  ``"count"``, ``"first"``) or by the matching Python builtins
  (``sum``/``min``/``max``/``len``); on numeric, bool, and int64-backed
  columns they run as masked numpy reductions (``bincount`` /
  ``reduceat``) whose accumulation order matches the pure-Python
  per-group fold bit for bit. Arbitrary callables — and named
  aggregators over object-backed columns — fall back to per-group Python
  lists of the non-missing values in row order, exactly the historical
  behaviour. Aggregating an all-missing group yields ``None`` for every
  aggregator, including ``count``.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping, Sequence

import numpy as np

from . import types as _types
from .column import Column
from .frame import DataFrame


class _MissingKeySentinel:
    """Private singleton marking a missing cell inside a group-key tuple.

    Cell values are coerced to ``str``/``int``/``float``/``bool``/``None``
    on ingestion, so no genuine value can ever compare equal to this
    sentinel (the historical ``("__missing__",)`` tuple could collide
    with nothing after coercion either, but only by accident — this makes
    the guarantee structural).
    """

    __slots__ = ()
    _instance: "_MissingKeySentinel | None" = None

    def __new__(cls) -> "_MissingKeySentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<missing-key>"


_MISSING_KEY = _MissingKeySentinel()


def _sort_key(value: Any) -> tuple:
    """Total order over heterogenous cell values; missing sorts last.

    Numbers compare exactly (Python int/float comparison is exact even
    beyond float precision), so huge ints never collide.
    """
    if value is None:
        return (2, 0)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


def _order_codes(column: Column) -> np.ndarray:
    """Per-row int64 codes whose integer order equals the value order.

    Equal cells share a code, the codes of distinct values are ordered by
    :func:`_sort_key` (numbers first, then strings, missing last). For
    numeric/bool columns on native numpy backing, :meth:`Column.codes`
    already follows value order; object-backed columns (strings, or int
    columns that overflowed to object) get their first-seen codes
    remapped through a sorted-representatives rank table.
    """
    codes, n_groups = column.codes()
    has_missing = bool(column.mask().any())
    n_valid = n_groups - 1 if has_missing else n_groups
    if n_valid <= 1 or column.values_array().dtype != object:
        return codes
    valid = ~column.mask()
    payload = column.values_array()[valid]
    valid_codes = codes[valid]
    # np.unique returns the sorted distinct codes 0..n_valid-1, so
    # first_index[i] is the first occurrence of code i.
    _, first_index = np.unique(valid_codes, return_index=True)
    representatives = payload[first_index].tolist()
    by_value = sorted(range(n_valid), key=lambda i: _sort_key(representatives[i]))
    rank = np.empty(n_groups, dtype=np.int64)
    rank[np.asarray(by_value, dtype=np.int64)] = np.arange(n_valid, dtype=np.int64)
    if has_missing:
        rank[n_valid] = n_valid
    return rank[codes]


def sort_by(
    frame: DataFrame,
    columns: Sequence[str],
    descending: bool = False,
    strategy: str | None = None,
) -> DataFrame:
    """Return the frame sorted by the given columns (stable).

    Tied keys keep their original row order in both directions:
    ``descending=True`` negates each column's order codes rather than
    reversing the sorted output, so stability is preserved.

    ``strategy`` picks the physical plan (explicit >
    ``DATALENS_SORT_STRATEGY`` > auto): ``memory`` is the dense
    lexsort below; ``external`` routes through
    :func:`repro.dataframe.sort.external_sort_by`, the spill-aware
    merge sort whose output is a spilled ChunkedFrame. ``auto`` picks
    ``external`` exactly when an input column is spilled (the memory
    plan would densify it). Both plans are bit-identical — same values,
    order, dtypes — differing only in the output's storage class.
    """
    from .sort import external_sort_by, resolve_sort_strategy

    if resolve_sort_strategy(strategy, frame) == "external":
        return external_sort_by(frame, columns, descending=descending)
    n = frame.num_rows
    names = list(columns)
    if n == 0 or not names:
        for name in names:
            frame.column(name)  # preserve KeyError on unknown columns
        return frame.take(np.arange(n, dtype=np.intp))
    keys = [_order_codes(frame.column(name)) for name in names]
    if descending:
        keys = [-key for key in keys]
    # np.lexsort treats its *last* key as primary and is stable.
    order = np.lexsort(tuple(reversed(keys)))
    return frame.take(order)


def _group_layout(
    frame: DataFrame, columns: Sequence[str]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared grouping machinery for ``group_indices``/``group_by``.

    Returns ``(order, starts, ends, appearance, first_rows)`` where
    ``order`` is a stable argsort of the composite key codes (so each
    group occupies one slice ``order[starts[g]:ends[g]]`` with ascending
    row indices), ``first_rows[g]`` is the first row of group ``g``, and
    ``appearance`` lists group ids in first-occurrence order.
    """
    n = frame.num_rows
    codes, _ = frame.column_codes(columns, dense=False)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    first_rows = order[starts]
    appearance = np.argsort(first_rows, kind="stable")
    return order, starts, ends, appearance, first_rows


def group_indices(
    frame: DataFrame, columns: Sequence[str]
) -> dict[tuple[Hashable, ...], list[int]]:
    """Map each distinct key tuple to the row indices holding it.

    Keys appear in first-occurrence order; row lists are ascending.
    Missing key cells are represented by the private ``_MISSING_KEY``
    singleton inside the tuple (``None`` groups with ``None``).
    """
    names = list(columns)
    if frame.num_rows == 0:
        for name in names:
            frame.column(name)  # preserve KeyError on unknown columns
        return {}
    order, starts, ends, appearance, first_rows = _group_layout(frame, names)
    key_lists = [frame.column(name).values() for name in names]
    groups: dict[tuple[Hashable, ...], list[int]] = {}
    starts_list = starts.tolist()
    ends_list = ends.tolist()
    first_list = first_rows.tolist()
    for g in appearance.tolist():
        first = first_list[g]
        key = tuple(
            _MISSING_KEY if values[first] is None else values[first]
            for values in key_lists
        )
        groups[key] = order[starts_list[g] : ends_list[g]].tolist()
    return groups


# ----------------------------------------------------------------------
# Aggregation dispatch
# ----------------------------------------------------------------------
_FAST_AGG_NAMES = frozenset({"sum", "mean", "min", "max", "count", "first"})

#: Builtin callables recognized as fast aggregators (matched by identity).
_CALLABLE_AGGS: dict[Any, str] = {sum: "sum", len: "count", min: "min", max: "max"}

#: Pure-Python equivalents used when a *named* aggregator cannot take the
#: vectorized path (object-backed column) — each receives the non-missing
#: values of one group in row order.
_NAMED_FALLBACKS: dict[str, Callable[[list[Any]], Any]] = {
    "sum": sum,
    "count": len,
    "min": min,
    "max": max,
    "mean": lambda values: sum(values) / len(values),
    "first": lambda values: values[0],
}


def _resolve_aggregator(func: Any) -> tuple[str | None, Callable | None]:
    """Split an aggregation spec into (fast-path kind, fallback callable)."""
    if isinstance(func, str):
        if func not in _FAST_AGG_NAMES:
            raise ValueError(
                f"unknown aggregator {func!r}; named aggregators are "
                f"{sorted(_FAST_AGG_NAMES)}"
            )
        return func, _NAMED_FALLBACKS[func]
    try:
        kind = _CALLABLE_AGGS.get(func)
    except TypeError:  # unhashable callable
        kind = None
    return kind, func


def _python_scalar(value: Any, dtype: str) -> Any:
    """Cast a numpy reduction result to the Python type the fallback yields."""
    if dtype == _types.BOOL:
        return bool(value)
    if dtype == _types.INT:
        return int(value)
    return float(value)


def _fast_aggregate(
    column: Column,
    kind: str,
    order: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    appearance: np.ndarray,
) -> list[Any] | None:
    """Vectorized per-group aggregation; None when the fast path can't run.

    The accumulation order of the reductions matches the per-group
    Python fold over non-missing values in row order, so results are
    bit-identical to the fallback (``bincount`` adds weights
    sequentially; integer ``reduceat`` is exact in any order).
    """
    data = column.values_array()
    mask = column.mask()
    numeric_like = column.is_numeric() or column.dtype == _types.BOOL
    if kind not in ("count", "first") and (
        not numeric_like or data.dtype == object
    ):
        return None

    n_groups = len(starts)
    valid_sorted = ~mask[order]
    prefix = np.concatenate(([0], np.cumsum(valid_sorted)))
    counts = prefix[ends] - prefix[starts]

    if kind == "count":
        return [int(c) if c else None for c in counts[appearance].tolist()]

    if kind == "first":
        valid_positions = np.flatnonzero(valid_sorted)
        slot = np.searchsorted(valid_positions, starts)
        results: list[Any] = []
        for g in appearance.tolist():
            s = slot[g]
            if s < len(valid_positions) and valid_positions[s] < ends[g]:
                results.append(column[int(order[valid_positions[s]])])
            else:
                results.append(None)
        return results

    present = counts > 0
    compact = data[order][valid_sorted]
    if compact.dtype == np.bool_:
        compact = compact.astype(np.int64)
    compact_starts = prefix[starts][present]
    counts_list = counts.tolist()
    appearance_list = appearance.tolist()

    if kind in ("sum", "mean"):
        if compact.dtype == np.int64:
            # Exact integer sums (matches the arbitrary-precision Python
            # fold for any total within int64); a float shadow sum flags
            # groups whose true total would overflow int64, in which
            # case the caller falls back to exact Python arithmetic.
            group_ids = np.repeat(np.arange(n_groups), counts)
            shadow = np.bincount(
                group_ids, weights=compact.astype(float), minlength=n_groups
            )
            if shadow.size and np.abs(shadow).max() > float(2**62):
                return None
            sums = np.zeros(n_groups, dtype=np.int64)
            if present.any():
                sums[present] = np.add.reduceat(compact, compact_starts)
            sums_list = sums.tolist()
            if kind == "sum":
                return [
                    sums_list[g] if counts_list[g] else None
                    for g in appearance_list
                ]
            # Python int/int division is correctly rounded, matching the
            # reference ``sum(values) / len(values)`` exactly.
            return [
                sums_list[g] / counts_list[g] if counts_list[g] else None
                for g in appearance_list
            ]
        # float64 input: bincount accumulates weights sequentially in row
        # order — the same addition sequence as the Python per-group fold.
        group_ids = np.repeat(np.arange(n_groups), counts)
        sums = np.bincount(group_ids, weights=compact, minlength=n_groups)
        sums_list = sums.tolist()
        if kind == "sum":
            return [
                sums_list[g] if counts_list[g] else None for g in appearance_list
            ]
        return [
            sums_list[g] / counts_list[g] if counts_list[g] else None
            for g in appearance_list
        ]

    ufunc = np.minimum if kind == "min" else np.maximum
    reduced_present = (
        ufunc.reduceat(compact, compact_starts)
        if present.any()
        else np.zeros(0, dtype=compact.dtype)
    )
    out_dtype = column.dtype  # min/max of bools is a bool, like Python
    slot_of_group = np.cumsum(present) - 1
    results: list[Any] = []
    for g in appearance_list:
        if counts_list[g]:
            results.append(
                _python_scalar(reduced_present[slot_of_group[g]], out_dtype)
            )
        else:
            results.append(None)
    return results


def _aggregate(
    column: Column,
    func: Any,
    order: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    appearance: np.ndarray,
) -> list[Any]:
    kind, callback = _resolve_aggregator(func)
    if kind is not None:
        fast = _fast_aggregate(column, kind, order, starts, ends, appearance)
        if fast is not None:
            return fast
        callback = callback if callback is not None else _NAMED_FALLBACKS[kind]
    values = column.values()
    results: list[Any] = []
    starts_list = starts.tolist()
    ends_list = ends.tolist()
    for g in appearance.tolist():
        rows = order[starts_list[g] : ends_list[g]].tolist()
        group_values = [values[i] for i in rows if values[i] is not None]
        results.append(callback(group_values) if group_values else None)
    return results


def group_by(
    frame: DataFrame,
    columns: Sequence[str],
    aggregations: Mapping[str, tuple[str, Any]],
) -> DataFrame:
    """Group rows and aggregate.

    ``aggregations`` maps output column name to ``(input_column, agg)``
    where ``agg`` is either a callable receiving the list of non-missing
    input values per group (row order) or one of the named fast
    aggregators ``"sum"``/``"mean"``/``"min"``/``"max"``/``"count"``/
    ``"first"``. Groups appear in first-occurrence order; all-missing
    groups aggregate to ``None``.
    """
    from .chunked import ChunkedFrame

    if isinstance(frame, ChunkedFrame):
        from .spill import spill_store_of

        if frame.n_chunks > 1 or spill_store_of(frame) is not None:
            # Chunk-native pushdown: per-chunk partials with exact merge
            # (bit-identical contract documented in repro.dataframe.joins).
            from .joins import grouped_aggregate

            return grouped_aggregate(frame, columns, aggregations)
    names = list(columns)
    out: dict[str, list[Any]] = {name: [] for name in names}
    out.update({name: [] for name in aggregations})
    if frame.num_rows == 0:
        for name in names:
            frame.column(name)
        for _, (in_name, func) in aggregations.items():
            frame.column(in_name)
            _resolve_aggregator(func)
        return DataFrame.from_dict(out)
    order, starts, ends, appearance, first_rows = _group_layout(frame, names)
    appearance_list = appearance.tolist()
    first_list = first_rows.tolist()
    for name in names:
        values = frame.column(name).values()
        out[name] = [values[first_list[g]] for g in appearance_list]
    for out_name, (in_name, func) in aggregations.items():
        out[out_name] = _aggregate(
            frame.column(in_name), func, order, starts, ends, appearance
        )
    return DataFrame.from_dict(out)


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------
def _lossy_promotion(l_data: np.ndarray, r_data: np.ndarray) -> bool:
    """True when concatenating would promote int64 values lossily.

    Mixing an int64 key column with a float64 one promotes the ints to
    float64; ints beyond 2**53 would then collide with neighbours they
    are not Python-equal to, so such pairs take the exact dict path.
    """
    kinds = {l_data.dtype.kind, r_data.dtype.kind}
    if kinds != {"i", "f"}:
        return False
    int_side = l_data if l_data.dtype.kind == "i" else r_data
    if not int_side.size:
        return False
    limit = 2**53
    return bool(int_side.max() > limit or int_side.min() < -limit)


def _joint_codes(
    left_column: Column, right_column: Column
) -> tuple[np.ndarray, np.ndarray, int]:
    """Factorize two columns jointly so equal values share codes.

    Equality follows Python ``==`` semantics (so ``2 == 2.0 == True``
    matches across int/float/bool columns, and strings never equal
    numbers). Missing cells receive side-specific codes above the value
    range so a missing left key can never match a missing right key.
    """
    l_data, l_mask = left_column.values_array(), left_column.mask()
    r_data, r_mask = right_column.values_array(), right_column.mask()
    n_left = len(l_data)
    if l_data.dtype != object and r_data.dtype != object and not _lossy_promotion(
        l_data, r_data
    ):
        combined = np.concatenate([l_data, r_data])
        if combined.size:
            _, inverse = np.unique(combined, return_inverse=True)
            span = int(inverse.max()) + 1
        else:
            inverse = np.zeros(0, dtype=np.int64)
            span = 0
        inverse = inverse.astype(np.int64, copy=False)
    else:
        inverse, span = _types.factorize_objects(
            l_data.tolist() + r_data.tolist()
        )
    left_codes = inverse[:n_left].copy()
    right_codes = inverse[n_left:].copy()
    left_codes[l_mask] = span
    right_codes[r_mask] = span + 1
    return left_codes, right_codes, span + 2


def _combine_codes(
    left_codes: np.ndarray,
    right_codes: np.ndarray,
    span: int,
    extra_left: np.ndarray,
    extra_right: np.ndarray,
    extra_span: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Merge one more key column into composite codes (overflow safe)."""
    if extra_span and span > (2**62) // max(extra_span, 1):
        combined = np.concatenate([left_codes, right_codes])
        _, inverse = np.unique(combined, return_inverse=True)
        inverse = inverse.astype(np.int64, copy=False)
        left_codes = inverse[: len(left_codes)]
        right_codes = inverse[len(left_codes) :]
        span = int(inverse.max()) + 1 if inverse.size else 0
    return (
        left_codes * extra_span + extra_left,
        right_codes * extra_span + extra_right,
        span * extra_span,
    )


def inner_join(
    left: DataFrame,
    right: DataFrame,
    on: Sequence[str],
    suffix: str = "_right",
) -> DataFrame:
    """Hash inner join on equality of the ``on`` columns.

    Overlapping non-key columns from the right side get ``suffix``
    appended. Rows whose key contains a missing cell never match. The
    output keeps left row order (then right row order within a key) and
    preserves the input column dtypes.

    The physical execution lives in :mod:`repro.dataframe.joins`: the
    planner there picks the in-memory joint-codes probe, a partitioned
    hash join (bucketing shards by key hash, spilling buckets when the
    inputs are spilled), or a sorted-merge join, all bit-identical;
    ``DATALENS_JOIN_STRATEGY`` overrides the choice.
    """
    from .joins import join

    return join(left, right, on, how="inner", suffix=suffix)


def value_counts_frame(frame: DataFrame, column: str) -> DataFrame:
    """Two-column frame of (value, count) sorted by descending count.

    Ties keep first-occurrence order, matching ``Counter.most_common``.
    """
    col = frame.column(column)
    codes, n_groups = col.codes()
    mask = col.mask()
    valid = ~mask
    if not valid.any():
        return DataFrame.from_dict({column: [], "count": []})
    n_valid_groups = n_groups - 1 if mask.any() else n_groups
    valid_rows = np.flatnonzero(valid)
    valid_codes = codes[valid_rows]
    counts = np.bincount(valid_codes, minlength=n_valid_groups)
    _, first_index = np.unique(valid_codes, return_index=True)
    first_rows = valid_rows[first_index]
    order = np.lexsort((first_rows, -counts))
    values = col.values_array()[first_rows][order].tolist()
    return DataFrame.from_dict(
        {column: values, "count": counts[order].tolist()}
    )

"""Chunk-native physical join and aggregation operators.

This module turns the dataframe layer into an out-of-core query engine:
joins and grouped aggregation run chunk by chunk over
:class:`~repro.dataframe.chunked.ChunkedFrame` inputs (spilled shards
stream through the owning :class:`~repro.dataframe.spill.SpillStore`'s
LRU) and only the *result* is densified — query output is monolithic per
the chunking contract, the inputs stay sharded/spilled.

Join strategies
---------------
``join`` picks a physical strategy via :func:`resolve_join_strategy`:

* ``memory`` — the classic joint-codes hash join (factorize both key
  sides together, sort the right side once, probe with searchsorted).
  Densifies both inputs; the right choice for in-RAM frames.
* ``partitioned`` — a Grace-style partitioned hash join: each side's
  chunks are split into ``n_partitions`` buckets by an
  equality-respecting key hash, bucket pairs are joined independently
  with the same joint-codes kernel, and the per-partition pairs are
  merged back into global row order. When either input is spilled the
  buckets themselves spill through the same store, so peak residency
  stays at the store budget.
* ``merge`` — a sorted-merge join for inputs already sorted on the key
  (ascending, missing last — the order :func:`repro.dataframe.sort_by`
  produces). Streams one key run per side at a time and never builds a
  hash table. Explicit ``merge`` never sorts: unsorted inputs raise.
* ``sortmerge`` — the merge join behind an external sort: any input
  that is not already sorted on the key is sorted out-of-core through
  :func:`repro.dataframe.sort.external_sort_by` (a reduced frame of key
  columns plus a row-id column, so payload columns never move), the
  validated merge join runs on the sorted sides, and the matched pairs
  are mapped back to input row ids. Temporary sort shards spill through
  the inputs' store and are released before returning.
* ``auto`` (default) — ``memory`` for resident inputs. For spilled
  inputs: ``sortmerge`` when either side already satisfies the
  sortedness contract on the key (the probe is one streaming key scan
  per side and pins nothing resident; the presorted side streams
  as-is, so only the other side pays an external sort), else
  ``partitioned``.

``DATALENS_JOIN_STRATEGY`` overrides the default strategy process-wide
(CI forces ``partitioned`` to run the whole suite through the
out-of-core path); ``DATALENS_JOIN_PARTITIONS`` overrides the partition
count. All strategies produce bit-identical results.

Key-hash partitioning invariants
--------------------------------
The partition hash must respect join equality, which follows Python
``==`` (``2 == 2.0 == True`` across numeric columns; strings never equal
numbers). Numeric values therefore hash through their ``float64`` bit
pattern (``+ 0.0`` first, so ``-0.0`` and ``0.0`` — which are equal —
share a hash; ints beyond 2**53 may collide after rounding, which is
harmless: partitioning only requires that *equal* keys land in the same
bucket, never that unequal keys land apart). Huge object-backed ints
that overflow ``float`` hash as ``±inf``. Strings hash by CRC-32 of
their UTF-8 bytes, a domain that can overlap the numeric hashes —
again harmless. Rows with *any* missing key cell are excluded before
partitioning (SQL join semantics: they can never match), so bucket
shards carry no null masks.

Null semantics of left/outer unmatched rows
-------------------------------------------
``left_join`` keeps every left row; ``outer_join`` additionally appends
every unmatched right row (in right row order) after all left rows.
Cells drawn from the absent side are missing (``None``) with the
canonical fill value in the backing array, exactly as if constructed
from ``None`` — null-mask-correct, so fingerprints and downstream
kernels see ordinary missing cells. Outer-join key columns are widened
to :func:`repro.dataframe.types.common_dtype` of the two sides; matched
rows keep the *left* key value, right-only rows the right value, each
coerced by the standard :func:`repro.dataframe.types.coerce` lattice.
Rows whose key contains a missing cell never match — a left row with a
null key survives a left/outer join unmatched, and a right row with a
null key appears in the outer result as a right-only row.

Merge-join sortedness precondition
----------------------------------
``merge`` requires both inputs sorted on the key columns: the sort-key
tuples (:func:`repro.dataframe.ops._sort_key` per cell — numbers before
strings, missing last) of consecutive *distinct* key runs must strictly
increase. Violations raise ``ValueError`` naming the side, the
offending key, and its row; both inputs are validated end to end even
when the merge itself could have stopped early, so the error is
deterministic and independent of chunk boundaries.

Grouped aggregation
-------------------
:func:`grouped_aggregate` folds each chunk into per-group partial
states and merges them exactly, preserving the monolithic ``group_by``
contract bit for bit: float sums re-enter each chunk's ``bincount``
as a carry (a fold starting at ``+0.0`` can never produce ``-0.0``,
so the carry re-add is a bitwise no-op), int sums merge as
arbitrary-precision Python ints, min/max merge per group keeping the
first-seen value on ties, and everything else (object-backed columns,
custom callables) buffers per-group Python value lists in row order and
applies the callback at the end — the exact fallback the monolithic
path uses, including its exception behaviour.
"""

from __future__ import annotations

import math
import os
import struct
import zlib
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from . import types as _types
from .chunked import ChunkedColumn, ChunkedFrame, _concat_payload
from .column import Column
from .frame import DataFrame
from .ops import (
    _MISSING_KEY,
    _combine_codes,
    _group_layout,
    _joint_codes,
    _resolve_aggregator,
    _sort_key,
)
from .sort import external_sort_by
from .spill import SpillStore, spill_store_of

#: Environment override for the default join strategy.
JOIN_STRATEGY_ENV = "DATALENS_JOIN_STRATEGY"

#: Environment override for the partitioned-join partition count.
JOIN_PARTITIONS_ENV = "DATALENS_JOIN_PARTITIONS"

JOIN_STRATEGIES = ("auto", "memory", "partitioned", "merge", "sortmerge")

_JOIN_HOWS = ("inner", "left", "outer")


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
def resolve_join_strategy(
    strategy: str | None,
    left: DataFrame,
    right: DataFrame,
    on: Sequence[str] | None = None,
) -> str:
    """Resolve the physical strategy: explicit > environment > auto.

    For spilled inputs (joining through ``memory`` would densify them)
    ``auto`` prefers a merge plan when it can get one cheaply: given the
    key columns via ``on``, it probes each side's sortedness (a
    streaming key scan through the spill LRU — nothing is pinned
    resident) and picks ``sortmerge`` when either side already
    satisfies the contract, so at most one side pays an external sort.
    Otherwise spilled inputs route ``partitioned`` and resident inputs
    ``memory``. Callers that need no sorted semantics (membership)
    pass ``on=None`` and keep the historical partitioned/memory
    resolution. Bare ``merge`` is still never auto-selected.
    """
    if strategy is None:
        strategy = (
            os.environ.get(JOIN_STRATEGY_ENV, "").strip().lower() or "auto"
        )
    strategy = strategy.lower()
    if strategy not in JOIN_STRATEGIES:
        raise ValueError(
            f"unknown join strategy {strategy!r}; expected one of "
            f"{list(JOIN_STRATEGIES)}"
        )
    if strategy == "auto":
        if spill_store_of(left) is not None or spill_store_of(right) is not None:
            if on is not None and (
                is_sorted_on(left, on) or is_sorted_on(right, on)
            ):
                return "sortmerge"
            return "partitioned"
        return "memory"
    return strategy


def resolve_join_partitions(
    n_partitions: int | None,
    left: DataFrame,
    right: DataFrame,
    store: SpillStore | None,
) -> int:
    """Partition count: explicit > environment > derived from input size.

    With a store, partitions are sized so one bucket pair fits well
    inside the resident budget (~64 bytes of key+row payload per row);
    without one, roughly one partition per 64k input rows.
    """
    if n_partitions is None:
        raw = os.environ.get(JOIN_PARTITIONS_ENV, "").strip()
        if raw:
            try:
                n_partitions = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOIN_PARTITIONS_ENV} must be an integer, got {raw!r}"
                ) from None
    if n_partitions is not None:
        if n_partitions < 1:
            raise ValueError(
                f"n_partitions must be >= 1, got {n_partitions}"
            )
        return n_partitions
    total = left.num_rows + right.num_rows
    if store is not None:
        per_row = 64
        derived = -(-per_row * max(total, 1) // max(store.budget_bytes, 1))
        return max(1, min(256, derived))
    return max(1, min(64, total // 65_536 + 1))


# ----------------------------------------------------------------------
# Equality-respecting key hashing (see module docstring invariants)
# ----------------------------------------------------------------------
_HASH_SEED = np.uint64(0x9E3779B97F4A7C15)
_HASH_MULT = np.uint64(0x100000001B3)


def _mix64(h: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer — diffuses the raw value bits per element."""
    h = h.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        h ^= h >> np.uint64(30)
        h *= np.uint64(0xBF58476D1CE4E5B9)
        h ^= h >> np.uint64(27)
        h *= np.uint64(0x94D049BB133111EB)
        h ^= h >> np.uint64(31)
    return h


def _scalar_hash(value: Any) -> int:
    if value is None:
        return 0
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8", "surrogatepass"))
    try:
        as_float = float(value) + 0.0
    except OverflowError:
        as_float = math.inf if value > 0 else -math.inf
    return struct.unpack("<Q", struct.pack("<d", as_float))[0]


def _value_hashes(data: np.ndarray) -> np.ndarray:
    """Per-element uint64 hashes; equal (Python ``==``) values hash equal."""
    if data.dtype != object:
        with np.errstate(over="ignore"):
            return (data.astype(np.float64) + 0.0).view(np.uint64)
    out = np.empty(len(data), dtype=np.uint64)
    for i, value in enumerate(data.tolist()):
        out[i] = _scalar_hash(value)
    return out


def _partition_ids(
    key_cols: Sequence[Column], length: int, n_partitions: int
) -> tuple[np.ndarray, np.ndarray]:
    """(valid, partition_id) per row of one chunk's key columns."""
    valid = np.ones(length, dtype=bool)
    combined = np.full(length, _HASH_SEED, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for col in key_cols:
            mask = np.asarray(col.mask())
            valid &= ~mask
            combined = (combined * _HASH_MULT) ^ _mix64(
                _value_hashes(np.asarray(col.values_array()))
            )
    pids = (combined % np.uint64(n_partitions)).astype(np.int64)
    return valid, pids


# ----------------------------------------------------------------------
# Joint-codes probe (shared by memory and partitioned strategies)
# ----------------------------------------------------------------------
def _probe_pairs(
    left_cols: Sequence[Column],
    right_cols: Sequence[Column],
    n_left: int,
    n_right: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Matched (left_row, right_row) pairs, sorted by (left, right).

    The joint-codes hash join from ``ops.inner_join``, generalized to
    operate on any aligned key-column lists (full frames or partition
    buckets): factorize each key pair jointly, combine into composite
    codes, sort the right side once, probe with searchsorted, and expand
    the matching runs.
    """
    left_codes = np.zeros(n_left, dtype=np.int64)
    right_codes = np.zeros(n_right, dtype=np.int64)
    span = 1
    left_missing = np.zeros(n_left, dtype=bool)
    right_missing = np.zeros(n_right, dtype=bool)
    for l_col, r_col in zip(left_cols, right_cols):
        extra_left, extra_right, extra_span = _joint_codes(l_col, r_col)
        left_codes, right_codes, span = _combine_codes(
            left_codes, right_codes, span, extra_left, extra_right, extra_span
        )
        left_missing |= np.asarray(l_col.mask())
        right_missing |= np.asarray(r_col.mask())

    right_rows_valid = np.flatnonzero(~right_missing)
    right_order = right_rows_valid[
        np.argsort(right_codes[right_rows_valid], kind="stable")
    ]
    sorted_right = right_codes[right_order]
    unique_right, unique_starts = np.unique(sorted_right, return_index=True)
    unique_counts = np.diff(
        np.concatenate((unique_starts, [len(sorted_right)]))
    )

    left_rows_valid = np.flatnonzero(~left_missing)
    probe = left_codes[left_rows_valid]
    slot = np.searchsorted(unique_right, probe)
    slot_clipped = np.minimum(slot, max(len(unique_right) - 1, 0))
    matched = (
        (slot < len(unique_right)) & (unique_right[slot_clipped] == probe)
        if len(unique_right)
        else np.zeros(len(probe), dtype=bool)
    )
    match_rows = left_rows_valid[matched]
    match_slots = slot[matched]
    match_counts = unique_counts[match_slots]

    left_take = np.repeat(match_rows, match_counts)
    run_starts = unique_starts[match_slots]
    cumulative = np.cumsum(match_counts)
    offsets = (
        np.arange(int(cumulative[-1]), dtype=np.int64)
        - np.repeat(cumulative - match_counts, match_counts)
        if len(match_counts)
        else np.zeros(0, dtype=np.int64)
    )
    right_take = right_order[np.repeat(run_starts, match_counts) + offsets]
    return left_take.astype(np.int64, copy=False), right_take.astype(
        np.int64, copy=False
    )


def _join_pairs_memory(
    left: DataFrame, right: DataFrame, key_names: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    return _probe_pairs(
        [left.column(name) for name in key_names],
        [right.column(name) for name in key_names],
        left.num_rows,
        right.num_rows,
    )


# ----------------------------------------------------------------------
# Partitioned hash join
# ----------------------------------------------------------------------
def _key_chunk_iters(
    frame: DataFrame, key_names: Sequence[str]
) -> list[Iterator[Column]]:
    return [frame.column(name).iter_chunks() for name in key_names]


def _partition_side(
    frame: DataFrame,
    key_names: Sequence[str],
    n_partitions: int,
    store: SpillStore | None,
) -> list[list[tuple[Any, list[Any]]]]:
    """Bucket one side's valid-key rows by key hash, chunk by chunk.

    Returns, per partition, a list of per-chunk contributions
    ``(rows, [key_payload, ...])`` where each element is a raw ndarray
    (in-memory run) or a :class:`ShardHandle` spilled through ``store``.
    Only the key columns are read — one shard at a time through the
    spill LRU for spilled inputs — so partitioning never densifies.
    """
    buckets: list[list[tuple[Any, list[Any]]]] = [
        [] for _ in range(n_partitions)
    ]
    iters = _key_chunk_iters(frame, key_names)
    base = 0
    for length in frame.chunk_lengths:
        cols = [next(it) for it in iters]
        if length == 0:
            continue
        if key_names:
            valid, pids = _partition_ids(cols, length, n_partitions)
        else:
            valid = np.ones(length, dtype=bool)
            pids = np.zeros(length, dtype=np.int64)
        payloads = [np.asarray(col.values_array()) for col in cols]
        for p in np.unique(pids[valid]).tolist():
            local = np.flatnonzero(valid & (pids == p))
            rows = (base + local).astype(np.int64)
            pieces = [payload[local] for payload in payloads]
            if store is not None:
                # Bound each bucket shard well under the store budget so
                # loading it back cannot push residency past the budget
                # (a monolithic input arrives as one huge chunk; slicing
                # here is what keeps the ≤-budget guarantee input-shape
                # independent). Object payloads get a rough 64 B/row
                # estimate; npy/pickle serialization overhead rides in
                # the remaining 3/4 headroom.
                per_row = 8 + sum(
                    64 if piece.dtype == object else piece.itemsize
                    for piece in pieces
                )
                step = len(rows)
                if store.budget_bytes:
                    step = max(1, store.budget_bytes // (4 * per_row))
                for start in range(0, len(rows), step):
                    rows_slice = rows[start : start + step]
                    zeros = np.zeros(len(rows_slice), dtype=bool)
                    buckets[p].append(
                        (
                            store.spill(rows_slice, zeros),
                            [
                                store.spill(piece[start : start + step], zeros)
                                for piece in pieces
                            ],
                        )
                    )
            else:
                buckets[p].append((rows, pieces))
        base += length
    return buckets


def _bucket_array(item: Any, store: SpillStore | None, handles: list) -> np.ndarray:
    if store is not None and not isinstance(item, np.ndarray):
        handles.append(item)
        return store.load(item)[0]
    return item


def _load_bucket(
    contribs: list[tuple[Any, list[Any]]],
    key_names: Sequence[str],
    key_dtypes: Sequence[str],
    store: SpillStore | None,
) -> tuple[np.ndarray, list[Column], list[Any]]:
    """Concatenate one partition's contributions into probe-ready columns."""
    handles: list[Any] = []
    rows_parts: list[np.ndarray] = []
    col_parts: list[list[np.ndarray]] = [[] for _ in key_names]
    for rows_item, piece_items in contribs:
        rows_parts.append(_bucket_array(rows_item, store, handles))
        for j, item in enumerate(piece_items):
            col_parts[j].append(_bucket_array(item, store, handles))
    rows = (
        rows_parts[0]
        if len(rows_parts) == 1
        else np.concatenate(rows_parts)
    ).astype(np.int64, copy=False)
    n = len(rows)
    no_missing = np.zeros(n, dtype=bool)
    cols = [
        Column._from_arrays(
            name, dtype, _concat_payload(parts), no_missing
        )
        for name, dtype, parts in zip(key_names, key_dtypes, col_parts)
    ]
    return rows, cols, handles


def _release_contribs(
    contribs: list[tuple[Any, list[Any]]], store: SpillStore | None
) -> None:
    if store is None:
        return
    for rows_item, piece_items in contribs:
        store.release(rows_item)
        for item in piece_items:
            store.release(item)


def _join_pairs_partitioned(
    left: DataFrame,
    right: DataFrame,
    key_names: Sequence[str],
    n_partitions: int,
    store: SpillStore | None,
) -> tuple[np.ndarray, np.ndarray]:
    l_dtypes = [left.column(name).dtype for name in key_names]
    r_dtypes = [right.column(name).dtype for name in key_names]
    l_buckets = _partition_side(left, key_names, n_partitions, store)
    r_buckets = _partition_side(right, key_names, n_partitions, store)
    lp_parts: list[np.ndarray] = []
    rp_parts: list[np.ndarray] = []
    for p in range(n_partitions):
        if not l_buckets[p] or not r_buckets[p]:
            _release_contribs(l_buckets[p], store)
            _release_contribs(r_buckets[p], store)
            continue
        l_rows, l_cols, l_handles = _load_bucket(
            l_buckets[p], key_names, l_dtypes, store
        )
        r_rows, r_cols, r_handles = _load_bucket(
            r_buckets[p], key_names, r_dtypes, store
        )
        left_take, right_take = _probe_pairs(
            l_cols, r_cols, len(l_rows), len(r_rows)
        )
        if len(left_take):
            lp_parts.append(l_rows[left_take])
            rp_parts.append(r_rows[right_take])
        if store is not None:
            for handle in l_handles + r_handles:
                store.release(handle)
    if not lp_parts:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    lp = np.concatenate(lp_parts)
    rp = np.concatenate(rp_parts)
    order = np.lexsort((rp, lp))
    return lp[order], rp[order]


# ----------------------------------------------------------------------
# Sorted-merge join
# ----------------------------------------------------------------------
def _chunk_codes(cols: Sequence[Column], length: int) -> np.ndarray:
    """Composite per-chunk key codes (``DataFrame.column_codes`` logic)."""
    if not cols:
        return np.zeros(length, dtype=np.int64)
    codes, span = cols[0].codes()
    for col in cols[1:]:
        extra, extra_span = col.codes()
        if extra_span and span > (2**62) // max(extra_span, 1):
            _, inverse = np.unique(codes, return_inverse=True)
            codes = inverse.astype(np.int64, copy=False)
            span = int(codes.max()) + 1 if codes.size else 0
        codes = codes * extra_span + extra
        span = span * extra_span
    return codes


def _iter_key_runs(
    frame: DataFrame, key_names: Sequence[str], side: str
) -> Iterator[tuple[tuple, bool, np.ndarray]]:
    """Yield ``(sort_key, has_missing, rows)`` per distinct key run.

    Runs are maximal blocks of consecutive rows with equal keys; equal
    runs merge across chunk boundaries, so the decomposition is
    chunking-invariant. Raises ``ValueError`` when consecutive distinct
    runs do not strictly increase (the merge-join sortedness
    precondition); the generator must be drained to validate the tail.
    """
    iters = _key_chunk_iters(frame, key_names)
    base = 0
    pending: tuple[tuple, bool, np.ndarray] | None = None
    for length in frame.chunk_lengths:
        cols = [next(it) for it in iters]
        if length == 0:
            continue
        codes = _chunk_codes(cols, length)
        boundaries = np.flatnonzero(np.diff(codes)) + 1
        starts = np.concatenate(([0], boundaries)).tolist()
        ends = np.concatenate((boundaries, [length])).tolist()
        for s, e in zip(starts, ends):
            raw = tuple(col[s] for col in cols)
            skey = tuple(_sort_key(value) for value in raw)
            has_missing = any(value is None for value in raw)
            rows = np.arange(base + s, base + e, dtype=np.int64)
            if pending is not None and skey == pending[0]:
                pending = (
                    pending[0],
                    pending[1],
                    np.concatenate([pending[2], rows]),
                )
                continue
            if pending is not None:
                if not skey > pending[0]:
                    raise ValueError(
                        f"merge join requires the {side} input sorted on "
                        f"{list(key_names)}: key {raw!r} at row {base + s} "
                        f"breaks the sort order"
                    )
                yield pending
            pending = (skey, has_missing, rows)
        base += length
    if pending is not None:
        yield pending


def _join_pairs_merge(
    left: DataFrame, right: DataFrame, key_names: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    left_runs = _iter_key_runs(left, key_names, "left")
    right_runs = _iter_key_runs(right, key_names, "right")
    lp_parts: list[np.ndarray] = []
    rp_parts: list[np.ndarray] = []
    left_cur = next(left_runs, None)
    right_cur = next(right_runs, None)
    while left_cur is not None and right_cur is not None:
        l_skey, l_missing, l_rows = left_cur
        r_skey, r_missing, r_rows = right_cur
        if l_skey == r_skey:
            # Equal sort keys imply Python-equal values componentwise (or
            # missing on both sides, which never matches).
            if not l_missing and not r_missing:
                lp_parts.append(np.repeat(l_rows, len(r_rows)))
                rp_parts.append(np.tile(r_rows, len(l_rows)))
            left_cur = next(left_runs, None)
            right_cur = next(right_runs, None)
        elif l_skey < r_skey:
            left_cur = next(left_runs, None)
        else:
            right_cur = next(right_runs, None)
    # Drain both sides so sortedness violations in the unconsumed tail
    # surface deterministically regardless of where the merge stopped.
    for _ in left_runs:
        pass
    for _ in right_runs:
        pass
    if not lp_parts:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return np.concatenate(lp_parts), np.concatenate(rp_parts)


def is_sorted_on(frame: DataFrame, on: Sequence[str]) -> bool:
    """True when the frame satisfies the merge-join sortedness contract.

    One streaming key scan: spilled shards pass through the store's LRU
    chunk by chunk and nothing stays pinned resident afterwards (the
    probe reads key chunks only, never ``values_array()``).
    """
    try:
        for _ in _iter_key_runs(frame, list(on), "input"):
            pass
    except ValueError:
        return False
    return True


# ----------------------------------------------------------------------
# Sort-merge join: external sort of unsorted inputs + the merge kernel
# ----------------------------------------------------------------------
def _sorted_with_rowids(
    frame: DataFrame, key_names: Sequence[str], store: SpillStore
) -> tuple[DataFrame, np.ndarray | None]:
    """A frame sorted on the key, plus the sorted→input row-id map.

    An already-sorted input streams as-is (``None`` map). Otherwise a
    *reduced* frame — the key columns plus a collision-free row-id
    column — is external-sorted through ``store``, so payload columns
    never move and peak residency stays at the store budget. The row-id
    column is densified to build the map (releasing its shards); the
    sorted key shards are released by the caller after the merge.
    """
    if is_sorted_on(frame, key_names):
        return frame, None
    rowid = "__rowid__"
    taken = set(frame.column_names)
    while rowid in taken:
        rowid += "_"
    unique_keys = list(dict.fromkeys(key_names))
    if isinstance(frame, ChunkedFrame):
        shards = []
        start = 0
        for length in frame.chunk_lengths:
            shards.append(
                (
                    np.arange(start, start + length, dtype=np.int64),
                    np.zeros(length, dtype=bool),
                )
            )
            start += length
        rowid_col: Column = ChunkedColumn.from_shards(rowid, _types.INT, shards)
        reduced: DataFrame = ChunkedFrame(
            [frame.column(name) for name in unique_keys] + [rowid_col]
        )
    else:
        n = frame.num_rows
        rowid_col = Column._from_arrays(
            rowid,
            _types.INT,
            np.arange(n, dtype=np.int64),
            np.zeros(n, dtype=bool),
        )
        reduced = DataFrame(
            [frame.column(name) for name in unique_keys] + [rowid_col]
        )
    sorted_frame = external_sort_by(reduced, unique_keys, store=store)
    mapping = np.asarray(
        sorted_frame.column(rowid).values_array()
    ).astype(np.int64, copy=False)
    return sorted_frame, mapping


def _release_sorted_temp(frame: DataFrame, mapping: np.ndarray | None) -> None:
    """Release a temp sorted frame's spilled shards (no-op when streamed)."""
    if mapping is None:
        return
    for name in frame.column_names:
        release = getattr(frame.column(name), "_release_spill", None)
        if release is not None:
            release()


def _join_pairs_sortmerge(
    left: DataFrame,
    right: DataFrame,
    key_names: Sequence[str],
    store: SpillStore | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge-join after external-sorting whichever sides need it.

    Pairs come back in the canonical ``(lp, rp)`` lexicographic order —
    the same order every other strategy emits — via one final lexsort
    after mapping sorted row ids back to input row ids.
    """
    if store is None:
        store = spill_store_of(left) or spill_store_of(right)
    temp_store = store if store is not None else SpillStore()
    left_sorted, left_map = _sorted_with_rowids(left, key_names, temp_store)
    right_sorted, right_map = _sorted_with_rowids(right, key_names, temp_store)
    try:
        lp, rp = _join_pairs_merge(left_sorted, right_sorted, key_names)
    finally:
        _release_sorted_temp(left_sorted, left_map)
        _release_sorted_temp(right_sorted, right_map)
    if len(lp):
        if left_map is not None:
            lp = left_map[lp]
        if right_map is not None:
            rp = right_map[rp]
        order = np.lexsort((rp, lp))
        lp, rp = lp[order], rp[order]
    return lp, rp


# ----------------------------------------------------------------------
# Pair expansion (left/outer) and output assembly
# ----------------------------------------------------------------------
def _expand_pairs(
    how: str, n_left: int, n_right: int, lp: np.ndarray, rp: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Convert matched pairs into aligned output row indices.

    ``-1`` marks "no row on this side": left rows without a match keep
    one output row with a missing right side (left/outer), and outer
    appends unmatched right rows — ascending — after all left rows.
    """
    if how == "inner":
        return lp, rp
    if n_left == 0:
        left_idx = np.zeros(0, dtype=np.int64)
        right_idx = np.zeros(0, dtype=np.int64)
    else:
        counts = np.bincount(lp, minlength=n_left)
        out_counts = np.maximum(counts, 1)
        starts = np.concatenate(([0], np.cumsum(out_counts)[:-1]))
        first_pair = np.concatenate(([0], np.cumsum(counts)[:-1]))
        left_idx = np.repeat(
            np.arange(n_left, dtype=np.int64), out_counts
        )
        right_idx = np.full(int(out_counts.sum()), -1, dtype=np.int64)
        if len(lp):
            positions = starts[lp] + (
                np.arange(len(lp), dtype=np.int64) - first_pair[lp]
            )
            right_idx[positions] = rp
    if how == "outer":
        matched_right = np.zeros(n_right, dtype=bool)
        matched_right[rp] = True
        right_only = np.flatnonzero(~matched_right).astype(np.int64)
        left_idx = np.concatenate(
            [left_idx, np.full(len(right_only), -1, dtype=np.int64)]
        )
        right_idx = np.concatenate([right_idx, right_only])
    return left_idx, right_idx


class _GatherPlan:
    """One output row-index array shared by every gathered column.

    Caches the stable argsort the spilled streaming path needs, so a
    wide spilled side sorts its indices once, not once per column.
    """

    __slots__ = ("idx", "_order", "_sorted")

    def __init__(self, idx: np.ndarray) -> None:
        self.idx = np.asarray(idx, dtype=np.int64)
        self._order: np.ndarray | None = None
        self._sorted: np.ndarray | None = None

    def order_and_sorted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._order is None:
            self._order = np.argsort(self.idx, kind="stable")
            self._sorted = self.idx[self._order]
        return self._order, self._sorted


def _gather_arrays(
    column: Column, plan: _GatherPlan
) -> tuple[np.ndarray, np.ndarray]:
    """Gather ``column`` at ``plan.idx`` (-1 = missing) into fresh arrays.

    Unspilled columns take one fancy-index (the in-memory fast path);
    spilled columns stream shard by shard through the store's LRU so the
    input stays spilled. Missing output slots hold the canonical fill
    value with the mask set — the standard storage invariant.
    """
    idx = plan.idx
    n = len(idx)
    dtype = column.dtype
    fill = _types.FILL_VALUES[dtype]
    out_missing = idx < 0
    if not getattr(column, "spilled", False):
        src = np.asarray(column.values_array())
        src_mask = np.asarray(column.mask())
        if len(src) == 0:
            data = np.full(n, fill, dtype=_types.NUMPY_DTYPES[dtype])
            return data, out_missing.copy()
        safe = np.where(out_missing, 0, idx)
        data = src[safe]
        mask = src_mask[safe] | out_missing
        if out_missing.any():
            data[out_missing] = fill
        return data, mask
    data = np.full(n, fill, dtype=_types.NUMPY_DTYPES[dtype])
    mask = out_missing.copy()
    order, sorted_idx = plan.order_and_sorted()
    lo = int(np.searchsorted(sorted_idx, 0))
    start = 0
    for chunk in column.iter_chunks():
        end = start + len(chunk)
        hi = int(np.searchsorted(sorted_idx, end))
        if hi > lo:
            positions = order[lo:hi]
            local = idx[positions] - start
            vals = chunk.values_array()[local]
            if vals.dtype != data.dtype:
                # An int column can mix int64 and object shards; the
                # gathered array normalizes to object-backed Python ints
                # exactly like the dense concatenation does.
                if data.dtype != object:
                    data = data.astype(object)
                vals = vals.astype(object)
            data[positions] = vals
            mask[positions] = chunk.mask()[local]
        lo = hi
        start = end
    return data, mask


def _gather_column(
    column: Column, plan: _GatherPlan, out_name: str
) -> Column:
    data, mask = _gather_arrays(column, plan)
    return Column._from_arrays(out_name, column.dtype, data, mask)


def _merged_key_column(
    name: str,
    left_col: Column,
    right_col: Column,
    left_plan: _GatherPlan,
    right_plan: _GatherPlan,
) -> Column:
    """Outer-join key column: left value when present, else right.

    Same-dtype sides splice the gathered arrays directly (coercion to
    the common dtype is the identity); mixed dtypes go through the
    :class:`Column` constructor so every cell is coerced exactly like a
    reference frame built with ``from_dict(..., dtypes=...)``.
    """
    out_dtype = _types.common_dtype(left_col.dtype, right_col.dtype)
    left_data, left_mask = _gather_arrays(left_col, left_plan)
    right_data, right_mask = _gather_arrays(right_col, right_plan)
    take_right = left_plan.idx < 0
    if left_col.dtype == right_col.dtype:
        if left_data.dtype != right_data.dtype:
            left_data = left_data.astype(object)
            right_data = right_data.astype(object)
        left_data[take_right] = right_data[take_right]
        left_mask[take_right] = right_mask[take_right]
        return Column._from_arrays(name, out_dtype, left_data, left_mask)
    left_values = left_data.tolist()
    right_values = right_data.tolist()
    values = [
        (None if r_missing else r_value)
        if from_right
        else (None if l_missing else l_value)
        for from_right, l_value, l_missing, r_value, r_missing in zip(
            take_right.tolist(),
            left_values,
            left_mask.tolist(),
            right_values,
            right_mask.tolist(),
        )
    ]
    return Column(name, values, out_dtype)


def _assemble(
    left: DataFrame,
    right: DataFrame,
    key_names: Sequence[str],
    suffix: str,
    how: str,
    left_idx: np.ndarray,
    right_idx: np.ndarray,
) -> DataFrame:
    left_names = left.column_names
    right_extra = [
        name for name in right.column_names if name not in key_names
    ]
    renamed = {
        name: (name + suffix if name in left_names else name)
        for name in right_extra
    }
    if len(set(renamed.values())) != len(renamed):
        raise ValueError(
            f"suffix {suffix!r} produces colliding output column names "
            f"among right columns {right_extra}"
        )
    left_plan = _GatherPlan(left_idx)
    right_plan = _GatherPlan(right_idx)
    columns: list[Column] = []
    for name in left_names:
        if how == "outer" and name in key_names:
            columns.append(
                _merged_key_column(
                    name,
                    left.column(name),
                    right.column(name),
                    left_plan,
                    right_plan,
                )
            )
        else:
            columns.append(_gather_column(left.column(name), left_plan, name))
    for name in right_extra:
        columns.append(
            _gather_column(right.column(name), right_plan, renamed[name])
        )
    return DataFrame(columns)


# ----------------------------------------------------------------------
# Public join API
# ----------------------------------------------------------------------
def join(
    left: DataFrame,
    right: DataFrame,
    on: Sequence[str],
    how: str = "inner",
    suffix: str = "_right",
    strategy: str | None = None,
    n_partitions: int | None = None,
    spill: SpillStore | None = None,
) -> DataFrame:
    """Equality join with a pluggable physical strategy.

    See the module docstring for the strategy, null, and sortedness
    contracts. ``spill`` routes partition buckets through an explicit
    store; by default buckets spill only when an input is already
    spilled (through that input's own store).
    """
    key_names = list(on)
    if how not in _JOIN_HOWS:
        raise ValueError(
            f"unknown join type {how!r}; expected one of {list(_JOIN_HOWS)}"
        )
    for name in key_names:
        left.column(name)
        right.column(name)
    resolved = resolve_join_strategy(strategy, left, right, on=key_names)
    if resolved == "memory":
        lp, rp = _join_pairs_memory(left, right, key_names)
    elif resolved == "partitioned":
        store = (
            spill
            if spill is not None
            else (spill_store_of(left) or spill_store_of(right))
        )
        parts = resolve_join_partitions(n_partitions, left, right, store)
        lp, rp = _join_pairs_partitioned(left, right, key_names, parts, store)
    elif resolved == "sortmerge":
        lp, rp = _join_pairs_sortmerge(left, right, key_names, store=spill)
    else:
        lp, rp = _join_pairs_merge(left, right, key_names)
    left_idx, right_idx = _expand_pairs(
        how, left.num_rows, right.num_rows, lp, rp
    )
    return _assemble(left, right, key_names, suffix, how, left_idx, right_idx)


def left_join(
    left: DataFrame,
    right: DataFrame,
    on: Sequence[str],
    suffix: str = "_right",
    strategy: str | None = None,
    n_partitions: int | None = None,
) -> DataFrame:
    """Keep every left row; unmatched rows get missing right cells."""
    return join(
        left,
        right,
        on,
        how="left",
        suffix=suffix,
        strategy=strategy,
        n_partitions=n_partitions,
    )


def outer_join(
    left: DataFrame,
    right: DataFrame,
    on: Sequence[str],
    suffix: str = "_right",
    strategy: str | None = None,
    n_partitions: int | None = None,
) -> DataFrame:
    """Full outer join; unmatched right rows follow all left rows."""
    return join(
        left,
        right,
        on,
        how="outer",
        suffix=suffix,
        strategy=strategy,
        n_partitions=n_partitions,
    )


# ----------------------------------------------------------------------
# Semi-join membership (referential-integrity consumer)
# ----------------------------------------------------------------------
def _membership(
    left_cols: Sequence[Column],
    right_cols: Sequence[Column],
    n_left: int,
    n_right: int,
) -> np.ndarray:
    """Boolean per left row: does any right row share its (valid) key?"""
    left_codes = np.zeros(n_left, dtype=np.int64)
    right_codes = np.zeros(n_right, dtype=np.int64)
    span = 1
    left_missing = np.zeros(n_left, dtype=bool)
    right_missing = np.zeros(n_right, dtype=bool)
    for l_col, r_col in zip(left_cols, right_cols):
        extra_left, extra_right, extra_span = _joint_codes(l_col, r_col)
        left_codes, right_codes, span = _combine_codes(
            left_codes, right_codes, span, extra_left, extra_right, extra_span
        )
        left_missing |= np.asarray(l_col.mask())
        right_missing |= np.asarray(r_col.mask())
    out = np.zeros(n_left, dtype=bool)
    unique_right = np.unique(right_codes[~right_missing])
    left_rows = np.flatnonzero(~left_missing)
    probe = left_codes[left_rows]
    if unique_right.size and probe.size:
        slot = np.searchsorted(unique_right, probe)
        slot_clipped = np.minimum(slot, len(unique_right) - 1)
        hit = (slot < len(unique_right)) & (
            unique_right[slot_clipped] == probe
        )
        out[left_rows[hit]] = True
    return out


def semi_join_mask(
    left: DataFrame,
    right: DataFrame,
    on: Sequence[str],
    right_on: Sequence[str] | None = None,
    strategy: str | None = None,
    n_partitions: int | None = None,
) -> np.ndarray:
    """Per left row, True when its key exists among the right rows.

    Rows with a missing key cell are False (they match nothing). The
    key columns pair positionally with ``right_on`` (default: the same
    names). ``merge``/``sortmerge`` fall back to ``memory`` —
    membership needs no sorted output — and ``auto`` resolves without
    key columns (``on=None``), keeping the historical
    partitioned/memory routing.
    """
    left_names = list(on)
    right_names = list(right_on) if right_on is not None else left_names
    if len(left_names) != len(right_names):
        raise ValueError(
            f"on has {len(left_names)} columns but right_on has "
            f"{len(right_names)}"
        )
    for l_name, r_name in zip(left_names, right_names):
        left.column(l_name)
        right.column(r_name)
    resolved = resolve_join_strategy(strategy, left, right)
    if resolved != "partitioned":
        return _membership(
            [left.column(name) for name in left_names],
            [right.column(name) for name in right_names],
            left.num_rows,
            right.num_rows,
        )
    store = spill_store_of(left) or spill_store_of(right)
    parts = resolve_join_partitions(n_partitions, left, right, store)
    l_dtypes = [left.column(name).dtype for name in left_names]
    r_dtypes = [right.column(name).dtype for name in right_names]
    l_buckets = _partition_side(left, left_names, parts, store)
    r_buckets = _partition_side(right, right_names, parts, store)
    out = np.zeros(left.num_rows, dtype=bool)
    for p in range(parts):
        if not l_buckets[p] or not r_buckets[p]:
            _release_contribs(l_buckets[p], store)
            _release_contribs(r_buckets[p], store)
            continue
        l_rows, l_cols, l_handles = _load_bucket(
            l_buckets[p], left_names, l_dtypes, store
        )
        r_rows, r_cols, r_handles = _load_bucket(
            r_buckets[p], right_names, r_dtypes, store
        )
        member = _membership(l_cols, r_cols, len(l_rows), len(r_rows))
        out[l_rows[member]] = True
        if store is not None:
            for handle in l_handles + r_handles:
                store.release(handle)
    return out


# ----------------------------------------------------------------------
# Chunk-native grouped aggregation
# ----------------------------------------------------------------------
class _ListState:
    """Fallback state: per-group Python value lists, callback at the end.

    Byte-for-byte the monolithic fallback — values accumulate in global
    row order, the callback runs per group in first-occurrence order at
    finalize (so a raising callback, e.g. ``sum`` over strings, raises
    at exactly the group the monolithic path raises at).
    """

    def __init__(self, callback: Callable[[list[Any]], Any]) -> None:
        self.callback = callback
        self.lists: list[list[Any]] = []

    def _grow(self, n_total: int) -> None:
        while len(self.lists) < n_total:
            self.lists.append([])

    def update(
        self, column: Column, row_gid: np.ndarray, n_total: int
    ) -> None:
        self._grow(n_total)
        values = column.values()
        for i, gid in enumerate(row_gid.tolist()):
            value = values[i]
            if value is not None:
                self.lists[gid].append(value)

    def finalize(self, n_groups: int) -> list[Any]:
        self._grow(n_groups)
        return [
            self.callback(values) if values else None
            for values in self.lists[:n_groups]
        ]


class _CountState:
    def __init__(self) -> None:
        self.counts = np.zeros(0, dtype=np.int64)

    def _grow(self, n_total: int) -> None:
        if len(self.counts) < n_total:
            grown = np.zeros(n_total, dtype=np.int64)
            grown[: len(self.counts)] = self.counts
            self.counts = grown

    def update(
        self, column: Column, row_gid: np.ndarray, n_total: int
    ) -> None:
        self._grow(n_total)
        valid = ~np.asarray(column.mask())
        self.counts[:n_total] += np.bincount(
            row_gid[valid], minlength=n_total
        )

    def finalize(self, n_groups: int) -> list[Any]:
        self._grow(n_groups)
        return [
            int(count) if count else None
            for count in self.counts[:n_groups].tolist()
        ]


class _FirstState:
    def __init__(self) -> None:
        self.values: dict[int, Any] = {}

    def update(
        self, column: Column, row_gid: np.ndarray, n_total: int
    ) -> None:
        valid_rows = np.flatnonzero(~np.asarray(column.mask()))
        if not len(valid_rows):
            return
        gids = row_gid[valid_rows]
        unique_gids, first_index = np.unique(gids, return_index=True)
        for gid, index in zip(unique_gids.tolist(), first_index.tolist()):
            if gid not in self.values:
                self.values[gid] = column[int(valid_rows[index])]

    def finalize(self, n_groups: int) -> list[Any]:
        return [self.values.get(g) for g in range(n_groups)]


class _FloatSumState:
    """Carry-bincount float sums — bit-identical to the monolithic fold.

    Each chunk's ``bincount`` re-adds the running per-group sums as
    leading carry weights: carries precede the chunk's elements per bin,
    and ``0.0 + carry == carry`` bitwise because a fold that starts at
    ``+0.0`` can never produce ``-0.0`` — so the addition sequence per
    group equals the monolithic left-to-right fold exactly.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.running = np.zeros(0, dtype=np.float64)
        self.counts = np.zeros(0, dtype=np.int64)

    def _grow(self, n_total: int) -> None:
        if len(self.counts) < n_total:
            grown = np.zeros(n_total, dtype=np.int64)
            grown[: len(self.counts)] = self.counts
            self.counts = grown

    def update(
        self, column: Column, row_gid: np.ndarray, n_total: int
    ) -> None:
        self._grow(n_total)
        valid = ~np.asarray(column.mask())
        gids = row_gid[valid]
        self.counts[:n_total] += np.bincount(gids, minlength=n_total)
        values = np.asarray(column.values_array())[valid].astype(
            np.float64, copy=False
        )
        carry_ids = np.arange(len(self.running), dtype=np.int64)
        self.running = np.bincount(
            np.concatenate([carry_ids, gids]),
            weights=np.concatenate([self.running, values]),
            minlength=n_total,
        )

    def finalize(self, n_groups: int) -> list[Any]:
        self._grow(n_groups)
        sums = self.running.tolist() + [0.0] * (
            n_groups - len(self.running)
        )
        counts = self.counts[:n_groups].tolist()
        if self.kind == "sum":
            return [
                sums[g] if counts[g] else None for g in range(n_groups)
            ]
        return [
            sums[g] / counts[g] if counts[g] else None
            for g in range(n_groups)
        ]


class _IntSumState:
    """Exact int/bool sums merged as arbitrary-precision Python ints.

    Per-chunk int64 accumulation is exact whenever the chunk's true
    per-group totals fit (intermediate wraparound is modular and
    self-correcting); a float shadow sum flags chunks that might not,
    which then fold in pure Python. Cross-chunk merge is Python-int
    addition, so the final totals equal the monolithic exact sums for
    any magnitude.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.totals: list[int] = []
        self.counts = np.zeros(0, dtype=np.int64)

    def _grow(self, n_total: int) -> None:
        while len(self.totals) < n_total:
            self.totals.append(0)
        if len(self.counts) < n_total:
            grown = np.zeros(n_total, dtype=np.int64)
            grown[: len(self.counts)] = self.counts
            self.counts = grown

    def update(
        self, column: Column, row_gid: np.ndarray, n_total: int
    ) -> None:
        self._grow(n_total)
        valid = ~np.asarray(column.mask())
        gids = row_gid[valid]
        chunk_counts = np.bincount(gids, minlength=n_total)
        self.counts[:n_total] += chunk_counts
        values = np.asarray(column.values_array())[valid]
        if not len(values):
            return
        if values.dtype == np.bool_:
            values = values.astype(np.int64)
        if values.dtype == object:
            for gid, value in zip(gids.tolist(), values.tolist()):
                self.totals[gid] += value
            return
        shadow = np.bincount(
            gids, weights=values.astype(np.float64), minlength=1
        )
        if shadow.size and np.abs(shadow).max() > float(2**62):
            for gid, value in zip(gids.tolist(), values.tolist()):
                self.totals[gid] += value
            return
        sums = np.zeros(n_total, dtype=np.int64)
        np.add.at(sums, gids, values)
        for gid in np.flatnonzero(chunk_counts).tolist():
            self.totals[gid] += int(sums[gid])

    def finalize(self, n_groups: int) -> list[Any]:
        self._grow(n_groups)
        counts = self.counts[:n_groups].tolist()
        if self.kind == "sum":
            return [
                self.totals[g] if counts[g] else None
                for g in range(n_groups)
            ]
        return [
            self.totals[g] / counts[g] if counts[g] else None
            for g in range(n_groups)
        ]


class _MinMaxState:
    """Per-chunk ``reduceat`` extrema merged with Python min/max.

    Merging keeps the earlier chunk's value on ties, matching the
    global left-to-right reduction; result types follow the column
    dtype exactly like the monolithic ``_python_scalar`` cast.
    """

    def __init__(self, kind: str, dtype: str) -> None:
        self.kind = kind
        self.dtype = dtype
        self.pick = min if kind == "min" else max
        self.best: dict[int, Any] = {}

    def _merge(self, gid: int, value: Any) -> None:
        if gid in self.best:
            self.best[gid] = self.pick(self.best[gid], value)
        else:
            self.best[gid] = value

    def update(
        self, column: Column, row_gid: np.ndarray, n_total: int
    ) -> None:
        valid = ~np.asarray(column.mask())
        if not valid.any():
            return
        gids = row_gid[valid]
        values = np.asarray(column.values_array())[valid]
        if values.dtype == object:
            for gid, value in zip(gids.tolist(), values.tolist()):
                self._merge(gid, value)
            return
        if values.dtype == np.bool_:
            values = values.astype(np.int64)
        order = np.argsort(gids, kind="stable")
        sorted_values = values[order]
        sorted_gids = gids[order]
        boundaries = np.flatnonzero(np.diff(sorted_gids)) + 1
        starts = np.concatenate(([0], boundaries))
        ufunc = np.minimum if self.kind == "min" else np.maximum
        reduced = ufunc.reduceat(sorted_values, starts)
        for gid, value in zip(
            sorted_gids[starts].tolist(), reduced.tolist()
        ):
            self._merge(gid, value)

    def finalize(self, n_groups: int) -> list[Any]:
        results: list[Any] = []
        for g in range(n_groups):
            if g in self.best:
                value = self.best[g]
                if self.dtype == _types.BOOL:
                    value = bool(value)
                results.append(value)
            else:
                results.append(None)
        return results


def _make_state(dtype: str, kind: str | None, callback: Callable | None):
    if kind is None:
        return _ListState(callback)
    if kind == "count":
        return _CountState()
    if kind == "first":
        return _FirstState()
    if dtype in (_types.INT, _types.FLOAT, _types.BOOL):
        if kind in ("sum", "mean"):
            if dtype == _types.FLOAT:
                return _FloatSumState(kind)
            return _IntSumState(kind)
        return _MinMaxState(kind, dtype)
    return _ListState(callback)


def grouped_aggregate(
    frame: DataFrame,
    columns: Sequence[str],
    aggregations: Mapping[str, tuple[str, Any]],
) -> DataFrame:
    """Chunk-native ``group_by``: per-chunk partials with exact merge.

    Bit-identical to :func:`repro.dataframe.ops.group_by` on the same
    rows — same group order (global first occurrence), same value
    types, same exceptions in the same order — but streams a
    :class:`ChunkedFrame` chunk by chunk without densifying any column,
    so spilled inputs stay spilled.
    """
    names = list(columns)
    out: dict[str, list[Any]] = {name: [] for name in names}
    out.update({name: [] for name in aggregations})
    if frame.num_rows == 0:
        for name in names:
            frame.column(name)
        for _, (in_name, func) in aggregations.items():
            frame.column(in_name)
            _resolve_aggregator(func)
        return DataFrame.from_dict(out)
    for name in names:
        frame.column(name)
    specs: list[tuple[str, str, Any, Any]] = []
    for out_name, (in_name, func) in aggregations.items():
        try:
            column = frame.column(in_name)
            kind, callback = _resolve_aggregator(func)
        except (KeyError, ValueError):
            # Deferred: re-raised in spec order at finalize, matching
            # the monolithic path's exception order.
            specs.append((out_name, in_name, func, None))
            continue
        specs.append(
            (out_name, in_name, func, _make_state(column.dtype, kind, callback))
        )
    registry: dict[tuple, int] = {}
    key_values: list[tuple] = []
    for chunk in frame.iter_chunks():
        n = chunk.num_rows
        if n == 0:
            continue
        order, starts, ends, appearance, first_rows = _group_layout(
            chunk, names
        )
        key_cols = [chunk.column(name) for name in names]
        n_local = len(starts)
        gid_of_local = np.empty(n_local, dtype=np.int64)
        first_list = first_rows.tolist()
        for g in appearance.tolist():
            raw = tuple(col[first_list[g]] for col in key_cols)
            key = tuple(
                _MISSING_KEY if value is None else value for value in raw
            )
            gid = registry.get(key)
            if gid is None:
                gid = len(registry)
                registry[key] = gid
                key_values.append(raw)
            gid_of_local[g] = gid
        lengths = ends - starts
        row_local = np.empty(n, dtype=np.int64)
        row_local[order] = np.repeat(
            np.arange(n_local, dtype=np.int64), lengths
        )
        row_gid = gid_of_local[row_local]
        n_total = len(registry)
        for _, in_name, _, state in specs:
            if state is not None:
                state.update(chunk.column(in_name), row_gid, n_total)
    n_groups = len(registry)
    for i, name in enumerate(names):
        out[name] = [key_values[g][i] for g in range(n_groups)]
    for out_name, in_name, func, state in specs:
        frame.column(in_name)
        kind, callback = _resolve_aggregator(func)
        out[out_name] = state.finalize(n_groups)
    return DataFrame.from_dict(out)

"""CSV / JSON serialization for DataFrames.

CSV is the interchange format the paper's dashboard uses for uploads and for
persisting repaired datasets; JSON is used by DataSheets and the REST API.

``read_csv_chunked`` is the streaming ingestion path: it scans the file
once, packs every ``chunk_size`` rows into typed shard arrays as they
arrive (never materializing the full table as Python rows), folds dtype
inference incrementally over the lattice, and re-coerces already-packed
shards at the array level on the rare widening events — producing a
:class:`~repro.dataframe.chunked.ChunkedFrame` whose values and dtypes
are bit-identical to :func:`read_csv`.

With a spill store (an explicit ``spill=`` argument, or the
``DATALENS_SPILL_BUDGET`` environment override), each packed shard is
written to disk as soon as it is built and the frame's columns come back
as :class:`~repro.dataframe.spill.SpilledChunkedColumn` — the ingest
then holds one chunk of rows plus the store's resident budget, so the
CSV can be far larger than RAM. ``write_csv`` streams chunk by chunk for
the same reason (byte-identical output either way).
"""

from __future__ import annotations

import csv
import io
import json
import logging
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from . import types as _types
from .column import _pack
from .frame import DataFrame

_logger = logging.getLogger(__name__)


def read_csv(
    path: str | Path,
    delimiter: str = ",",
    dtypes: Mapping[str, str] | None = None,
) -> DataFrame:
    """Read a CSV file with a header row into a DataFrame.

    Values are parsed with dtype inference; tokens in
    :data:`repro.dataframe.types.NULL_TOKENS` become missing cells.
    """
    with open(path, "r", newline="", encoding="utf-8") as handle:
        return read_csv_text(handle.read(), delimiter=delimiter, dtypes=dtypes)


def read_csv_text(
    text: str,
    delimiter: str = ",",
    dtypes: Mapping[str, str] | None = None,
) -> DataFrame:
    """Parse CSV content held in a string."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = list(reader)
    if not rows:
        raise ValueError("CSV input is empty (no header row)")
    header = [name.strip() for name in rows[0]]
    parsed = [[_types.parse_token(token) for token in row] for row in rows[1:]]
    return DataFrame.from_rows(parsed, header, dtypes)


class _StreamingColumnBuilder:
    """Accumulates one column's shards during a streaming CSV scan.

    Dtype inference is folded incrementally: the ``saw_*`` flags mirror
    :func:`repro.dataframe.types.infer_dtype` (missing cells never move
    them), so the final dtype equals a whole-column inference pass. Each
    chunk is packed at the fold's current dtype; when a later chunk
    widens it, the already-packed shards are re-coerced array-side —
    coercion composes along the widening lattice (``coerce(coerce(v, d1),
    d2) == coerce(v, d2)`` for the d1 ≤ d2 the fold can produce), so the
    result is identical to coercing the raw parsed values once.
    """

    def __init__(self, name: str, declared: str | None, store=None):
        if declared is not None and declared not in _types.DTYPES:
            raise ValueError(f"unknown dtype {declared!r}")
        self.name = name
        self.declared = declared
        #: (data, mask) pairs, or ShardHandles when spilling to a store.
        self.shards: list = []
        self.store = store
        #: Set to the SpillCapacityError once the disk fills mid-ingest;
        #: the builder then degrades to resident shards (see
        #: :meth:`_normalize_degraded`).
        self.degraded: Exception | None = None
        self.dtype: str | None = declared
        self._saw_bool = False
        self._saw_int = False
        self._saw_float = False
        self._saw_any = False
        self._is_string = False

    def _fold_dtype(self) -> str:
        if self._is_string or not self._saw_any:
            return _types.STRING
        if self._saw_float:
            return _types.FLOAT
        if self._saw_int:
            return _types.INT
        if self._saw_bool:
            return _types.BOOL
        return _types.STRING

    def _observe(self, values: list[Any]) -> None:
        for value in values:
            if _types.is_missing(value):
                continue
            self._saw_any = True
            if isinstance(value, bool):
                self._saw_bool = True
            elif isinstance(value, int):
                self._saw_int = True
            elif isinstance(value, float):
                self._saw_float = True
            else:
                self._is_string = True

    def flush(self, values: list[Any]) -> None:
        """Pack one chunk of parsed values into a shard."""
        if not values:
            return
        if self.declared is None:
            self._observe(values)
            target = self._fold_dtype()
            if self.dtype is None:
                self.dtype = target
            elif target != self.dtype:
                self.shards = [
                    self._convert(shard, target) for shard in self.shards
                ]
                self.dtype = target
        coerced = [_types.coerce(value, self.dtype) for value in values]
        pair = _pack(coerced, self.dtype)
        if self.store is not None:
            self.shards.append(self._maybe_spill(pair))
            self._normalize_degraded()
        else:
            self.shards.append(pair)

    def _maybe_spill(self, pair):
        """Spill one packed pair, degrading to resident on a full disk."""
        from .spill import SpillCapacityError

        if self.degraded is not None:
            return pair
        try:
            return self.store.spill(*pair)
        except SpillCapacityError as error:
            self.degraded = error
            return pair

    def _normalize_degraded(self) -> None:
        """After a capacity failure, pull spilled shards back to resident.

        A degraded builder holds a mix of ShardHandles and raw pairs;
        loading the handles back (and releasing their files, freeing
        disk) restores the all-resident invariant so the column finishes
        as a plain dense ChunkedColumn — ingest survives a full disk at
        the cost of RAM.
        """
        if self.degraded is None:
            return
        from .spill import ShardHandle

        resident = []
        for shard in self.shards:
            if isinstance(shard, ShardHandle):
                data, mask = self.store.load(shard)
                resident.append((np.array(data), np.array(mask)))
                self.store.release(shard)
            else:
                resident.append(shard)
        self.shards = resident
        _logger.warning(
            "spill store full while ingesting column %r; keeping its "
            "shards resident (%s)",
            self.name,
            self.degraded,
        )
        self.store = None

    def _convert(self, shard, target: str):
        """Widen one shard — loading, re-coercing, and re-spilling if spilled."""
        if self.store is None:
            data, mask = shard
            return _convert_shard(data, mask, self.dtype, target)
        from .spill import ShardHandle

        if not isinstance(shard, ShardHandle):
            data, mask = shard
            return self._maybe_spill(
                _convert_shard(data, mask, self.dtype, target)
            )
        data, mask = self.store.load(shard)
        # Copy out of the (possibly mmapped, read-only) loaded arrays
        # before the old files are released.
        converted = _convert_shard(
            np.array(data), np.array(mask), self.dtype, target
        )
        self.store.release(shard)
        return self._maybe_spill(converted)

    def finish(self):
        from .chunked import ChunkedColumn

        if self.dtype is None:  # zero data rows
            self.dtype = _types.STRING
        if self.store is not None:
            from .spill import SpilledChunkedColumn

            return SpilledChunkedColumn.from_handles(
                self.name, self.dtype, self.shards, self.store
            )
        return ChunkedColumn.from_shards(self.name, self.dtype, self.shards)


def _convert_shard(
    data: np.ndarray, mask: np.ndarray, old: str, new: str
) -> tuple[np.ndarray, np.ndarray]:
    """Re-coerce a packed shard to a wider dtype, exactly.

    Native numeric widenings use array casts (``int64 → float64`` and
    ``bool → int64/float64`` round-trip exactly through Python
    semantics); everything else — widening to string, object-backed
    payloads, shards packed while the column was all-missing — rebuilds
    from Python scalars via the shared coercion rules, which is what a
    whole-column pass would have done.
    """
    if data.dtype != object:
        if old == _types.INT and new == _types.FLOAT:
            out = data.astype(np.float64)
            out[mask] = _types.FILL_VALUES[new]
            return out, mask
        if old == _types.BOOL and new == _types.INT:
            out = data.astype(np.int64)
            out[mask] = _types.FILL_VALUES[new]
            return out, mask
        if old == _types.BOOL and new == _types.FLOAT:
            out = data.astype(np.float64)
            out[mask] = _types.FILL_VALUES[new]
            return out, mask
    values = data.tolist()  # Python scalars (object arrays hold them already)
    for index in np.flatnonzero(mask).tolist():
        values[index] = None
    return _pack([_types.coerce(value, new) for value in values], new)


def read_csv_chunked(
    path: str | Path,
    delimiter: str = ",",
    dtypes: Mapping[str, str] | None = None,
    chunk_size: int | None = None,
    spill=None,
):
    """Stream a CSV file into a ChunkedFrame, ``chunk_size`` rows per shard.

    Bit-identical to :func:`read_csv` (same parsing, inference, and
    coercion) but never holds more than one chunk of Python row objects.
    ``spill`` may be a :class:`~repro.dataframe.spill.SpillStore`, True
    (fresh store), False (never spill), or None — the default, which
    spills when ``DATALENS_SPILL_BUDGET`` is set.
    """
    with open(path, "r", newline="", encoding="utf-8") as handle:
        return _read_csv_stream(handle, delimiter, dtypes, chunk_size, spill)


def read_csv_text_chunked(
    text: str,
    delimiter: str = ",",
    dtypes: Mapping[str, str] | None = None,
    chunk_size: int | None = None,
    spill=None,
):
    """Chunked variant of :func:`read_csv_text`."""
    return _read_csv_stream(
        io.StringIO(text), delimiter, dtypes, chunk_size, spill
    )


def read_csv_stream(
    lines: Iterable[str],
    delimiter: str = ",",
    dtypes: Mapping[str, str] | None = None,
    chunk_size: int | None = None,
    spill=None,
):
    """Stream CSV *lines* (any iterable of text) into a ChunkedFrame.

    The network-facing variant of :func:`read_csv_chunked`: the REST
    upload path feeds it the socket body line by line, so a CSV larger
    than RAM is parsed, packed, and (with ``spill``) written to disk one
    chunk at a time. Same parsing/inference/coercion as
    :func:`read_csv`, bit for bit.
    """
    return _read_csv_stream(lines, delimiter, dtypes, chunk_size, spill)


def _read_csv_stream(
    handle: Iterable[str],
    delimiter: str,
    dtypes: Mapping[str, str] | None,
    chunk_size: int | None,
    spill=None,
):
    from .chunked import ChunkedFrame, resolve_chunk_size
    from .spill import _faults, resolve_spill_store

    faults = _faults()
    size = resolve_chunk_size(chunk_size)
    store = resolve_spill_store(spill)
    dtypes = dtypes or {}
    reader = csv.reader(handle, delimiter=delimiter)
    header_row = next(reader, None)
    if header_row is None:
        raise ValueError("CSV input is empty (no header row)")
    header = [name.strip() for name in header_row]
    builders = [
        _StreamingColumnBuilder(name, dtypes.get(name), store=store)
        for name in header
    ]
    buffers: list[list[Any]] = [[] for _ in header]
    buffered = 0
    for row in reader:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} fields, expected {len(header)}"
            )
        for buffer, token in zip(buffers, row):
            buffer.append(_types.parse_token(token))
        buffered += 1
        if buffered == size:
            faults.maybe_fire("ingest.chunk")
            for builder, buffer in zip(builders, buffers):
                builder.flush(buffer)
            buffers = [[] for _ in header]
            buffered = 0
    if buffered:
        faults.maybe_fire("ingest.chunk")
        for builder, buffer in zip(builders, buffers):
            builder.flush(buffer)
    return ChunkedFrame(builder.finish() for builder in builders)


def write_csv(frame: DataFrame, path: str | Path, delimiter: str = ",") -> None:
    """Write a DataFrame to CSV; missing cells become empty fields.

    Streams chunk by chunk (a monolithic frame is one chunk), so a
    spilled frame is persisted without ever materializing — the output
    bytes are identical to :func:`to_csv_text` either way.
    """
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter, lineterminator="\n")
        writer.writerow(frame.column_names)
        for chunk in frame.iter_chunks():
            for i in range(chunk.num_rows):
                writer.writerow([_render(v) for v in chunk.row_tuple(i)])


def to_csv_text(frame: DataFrame, delimiter: str = ",") -> str:
    """Render a DataFrame as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(frame.column_names)
    for i in range(frame.num_rows):
        writer.writerow([_render(v) for v in frame.row_tuple(i)])
    return buffer.getvalue()


def _render(value: Any) -> str:
    if _types.is_missing(value):
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def to_json_records(frame: DataFrame) -> str:
    """Serialize a DataFrame as a JSON list of row objects."""
    return json.dumps(frame.to_records(), default=_json_default)


def from_json_records(text: str) -> DataFrame:
    """Deserialize a frame from :func:`to_json_records` output."""
    records = json.loads(text)
    return DataFrame.from_records(records)


def write_json(frame: DataFrame, path: str | Path) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(to_json_records(frame), encoding="utf-8")


def read_json(path: str | Path) -> DataFrame:
    return from_json_records(Path(path).read_text(encoding="utf-8"))


def _json_default(value: Any) -> Any:
    raise TypeError(f"cannot serialize {type(value).__name__}")

"""CSV / JSON serialization for DataFrames.

CSV is the interchange format the paper's dashboard uses for uploads and for
persisting repaired datasets; JSON is used by DataSheets and the REST API.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Mapping

from . import types as _types
from .frame import DataFrame


def read_csv(
    path: str | Path,
    delimiter: str = ",",
    dtypes: Mapping[str, str] | None = None,
) -> DataFrame:
    """Read a CSV file with a header row into a DataFrame.

    Values are parsed with dtype inference; tokens in
    :data:`repro.dataframe.types.NULL_TOKENS` become missing cells.
    """
    with open(path, "r", newline="", encoding="utf-8") as handle:
        return read_csv_text(handle.read(), delimiter=delimiter, dtypes=dtypes)


def read_csv_text(
    text: str,
    delimiter: str = ",",
    dtypes: Mapping[str, str] | None = None,
) -> DataFrame:
    """Parse CSV content held in a string."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = list(reader)
    if not rows:
        raise ValueError("CSV input is empty (no header row)")
    header = [name.strip() for name in rows[0]]
    parsed = [[_types.parse_token(token) for token in row] for row in rows[1:]]
    return DataFrame.from_rows(parsed, header, dtypes)


def write_csv(frame: DataFrame, path: str | Path, delimiter: str = ",") -> None:
    """Write a DataFrame to CSV; missing cells become empty fields."""
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        handle.write(to_csv_text(frame, delimiter=delimiter))


def to_csv_text(frame: DataFrame, delimiter: str = ",") -> str:
    """Render a DataFrame as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(frame.column_names)
    for i in range(frame.num_rows):
        writer.writerow([_render(v) for v in frame.row_tuple(i)])
    return buffer.getvalue()


def _render(value: Any) -> str:
    if _types.is_missing(value):
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def to_json_records(frame: DataFrame) -> str:
    """Serialize a DataFrame as a JSON list of row objects."""
    return json.dumps(frame.to_records(), default=_json_default)


def from_json_records(text: str) -> DataFrame:
    """Deserialize a frame from :func:`to_json_records` output."""
    records = json.loads(text)
    return DataFrame.from_records(records)


def write_json(frame: DataFrame, path: str | Path) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(to_json_records(frame), encoding="utf-8")


def read_json(path: str | Path) -> DataFrame:
    return from_json_records(Path(path).read_text(encoding="utf-8"))


def _json_default(value: Any) -> Any:
    raise TypeError(f"cannot serialize {type(value).__name__}")

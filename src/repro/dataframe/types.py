"""Type system for the columnar DataFrame substrate.

The frame stores one logical dtype per column.  Missing values are always
represented as ``None`` at the Python level; the storage engine keeps each
column as a typed ``numpy`` array plus a boolean null mask (see
:mod:`repro.dataframe.column` for the full storage contract).

Logical dtype ↔ numpy backing dtype:

===========  =====================  ===========================
logical      numpy backing          fill value at masked slots
===========  =====================  ===========================
``int``      ``int64`` (``object``  ``0``
             when values overflow)
``float``    ``float64``            ``0.0``
``bool``     ``bool_``              ``False``
``string``   ``object``             ``None``
===========  =====================  ===========================

Key semantics under the codes-based relational kernels
(:mod:`repro.dataframe.ops`):

* **Key ordering** — sort order is ``numbers < strings < missing``;
  numbers compare numerically across int/float/bool (exactly, via
  Python semantics — huge object-backed ints never collide through
  float rounding), strings lexicographically. Ties always keep original
  row order (stable), in both sort directions.
* **Null keys, group-by vs join** — grouping treats ``None`` as a value
  (``None`` matches ``None``; every missing cell of a column lands in
  one group, marked by a private sentinel in key tuples); joining
  follows SQL semantics instead (a row whose key tuple contains any
  missing cell matches nothing, on either side).
* **Cross-dtype keys** — join/group equality follows Python ``==``:
  ``2 == 2.0 == True`` matches across numeric columns of different
  dtypes, while strings never equal numbers.

Chunked storage (:mod:`repro.dataframe.chunked`) keeps one logical dtype
per *column*, never per shard: only the numpy backing may differ between
shards of an ``int`` column (int64 vs. object after an overflow), and
concatenation normalizes to object-backed Python ints — the same
representation :func:`repro.dataframe.column._pack` chooses monolithically.
Streaming ingestion folds :func:`infer_dtype` incrementally (the
``saw_*`` flags ignore missing cells, so an all-missing chunk never
forces ``string``) and re-coerces earlier shards on widening; coercion
composes along the lattice (``coerce(coerce(v, d1), d2) ==
coerce(v, d2)`` for fold-reachable ``d1 <= d2``), keeping streamed
columns bit-identical to a whole-table pass.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

INT = "int"
FLOAT = "float"
BOOL = "bool"
STRING = "string"

DTYPES = (INT, FLOAT, BOOL, STRING)

#: Preferred numpy backing dtype per logical dtype (``int`` falls back to
#: ``object`` when a value exceeds the int64 range).
NUMPY_DTYPES = {
    INT: np.dtype(np.int64),
    FLOAT: np.dtype(np.float64),
    BOOL: np.dtype(np.bool_),
    STRING: np.dtype(object),
}

#: Placeholder stored in the data array where the null mask is True.
FILL_VALUES = {INT: 0, FLOAT: 0.0, BOOL: False, STRING: None}


def factorize_objects(values: "np.ndarray | list") -> tuple[np.ndarray, int]:
    """Dense first-seen integer codes for hashable objects (no missing).

    Shared by :meth:`repro.dataframe.Column.codes` and the categorical
    correlation kernels — a dict factorization is ~2.5x faster than
    ``np.unique`` on object arrays, which sorts with Python comparisons.
    """
    materialized = values.tolist() if isinstance(values, np.ndarray) else values
    mapping: dict = {}
    codes = np.array(
        [mapping.setdefault(value, len(mapping)) for value in materialized],
        dtype=np.int64,
    )
    return codes, len(mapping)


def pack_bool_rows(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
    """Pack each row of a boolean matrix into one int64 bit key.

    Returns ``(keys, weights)`` where ``keys[i] = sum(matrix[i] << j)``
    and ``weights[j] = 1 << j`` (for decoding), or None when the matrix
    has more than 62 columns and the keys would overflow int64.
    """
    n_columns = matrix.shape[1]
    if n_columns > 62:
        return None
    weights = np.left_shift(np.int64(1), np.arange(n_columns, dtype=np.int64))
    return matrix.astype(np.int64) @ weights, weights

_TRUE_STRINGS = {"true", "yes", "t", "1"}
_FALSE_STRINGS = {"false", "no", "f", "0"}

#: String tokens commonly used to encode missing values in CSV files.
NULL_TOKENS = {"", "na", "n/a", "nan", "null", "none", "?", "-", "missing"}


def is_missing(value: Any) -> bool:
    """Return True if ``value`` represents a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


def is_null_token(text: str) -> bool:
    """Return True if a raw CSV token should be parsed as missing."""
    return text.strip().lower() in NULL_TOKENS


def infer_dtype(values: Iterable[Any]) -> str:
    """Infer the narrowest dtype that can hold every non-missing value.

    The lattice is ``bool < int < float < string``; any value that cannot
    be interpreted numerically widens the column to ``string``.
    """
    saw_bool = False
    saw_int = False
    saw_float = False
    saw_any = False
    for value in values:
        if is_missing(value):
            continue
        saw_any = True
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, int):
            saw_int = True
        elif isinstance(value, float):
            saw_float = True
        else:
            return STRING
    if not saw_any:
        return STRING
    if saw_float:
        return FLOAT
    if saw_int:
        return INT
    if saw_bool:
        return BOOL
    return STRING


def parse_token(text: str) -> Any:
    """Parse one raw CSV token into ``None``/bool/int/float/str."""
    stripped = text.strip()
    if is_null_token(stripped):
        return None
    lowered = stripped.lower()
    if lowered in _TRUE_STRINGS and lowered in {"true", "t", "yes"}:
        return True
    if lowered in _FALSE_STRINGS and lowered in {"false", "f", "no"}:
        return False
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        value = float(stripped)
    except ValueError:
        return stripped
    return value


def coerce(value: Any, dtype: str) -> Any:
    """Coerce one value to ``dtype``; missing values pass through as None.

    Raises ``ValueError`` when the value cannot be represented.
    """
    if is_missing(value):
        return None
    if dtype == STRING:
        return value if isinstance(value, str) else _format_value(value)
    if dtype == FLOAT:
        return float(value)
    if dtype == INT:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, float):
            if not value.is_integer():
                raise ValueError(f"cannot coerce {value!r} to int")
            return int(value)
        if isinstance(value, int):
            return value
        return int(str(value).strip())
    if dtype == BOOL:
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)) and value in (0, 1):
            return bool(value)
        lowered = str(value).strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise ValueError(f"cannot coerce {value!r} to bool")
    raise ValueError(f"unknown dtype {dtype!r}")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def is_numeric_dtype(dtype: str) -> bool:
    """Return True for dtypes that support arithmetic."""
    return dtype in (INT, FLOAT)


def common_dtype(left: str, right: str) -> str:
    """Return the join of two dtypes on the widening lattice."""
    if left == right:
        return left
    pair = {left, right}
    if pair <= {INT, FLOAT, BOOL}:
        if FLOAT in pair:
            return FLOAT
        return INT
    return STRING

"""Chunked columnar frames — the sharded execution layer.

A :class:`ChunkedColumn` stores its cells as an ordered list of
``(values_array, mask)`` shards instead of one contiguous array pair, and
a :class:`ChunkedFrame` aligns those shards row-wise across columns so the
table can be processed one chunk at a time (streaming ingestion,
per-chunk partial aggregates, thread-parallel profiling).

Chunking contract
-----------------
* **Row order is preserved.** Concatenating the shards in order yields
  exactly the monolithic ``(_data, _mask)`` pair; chunk boundaries are
  invisible to every consumer of the sequence API.
* **The monolithic contract still holds.** ``ChunkedColumn`` subclasses
  :class:`~repro.dataframe.column.Column`; ``values_array()`` / ``mask()``
  lazily concatenate the shards into one dense pair (cached, with the
  shards rebased onto views of it), so any array-native consumer works
  unchanged and bit-identically.
* **Cross-chunk ``codes()``.** Factorization always runs over the whole
  logical column, so equal values in *different* chunks share one code
  and the missing group keeps the single highest code — per-chunk views
  of ``codes()`` are plain slices at the chunk boundaries.
* **Chunks are read-only views.** :meth:`ChunkedColumn.iter_chunks`
  yields Columns wrapping read-only views of the shard storage; mutating
  the parent column (``set`` / ``set_many``) invalidates previously
  yielded chunks, exactly like it invalidates ``codes()``.
* **Merge rules for partial aggregates.** Integer counters (count,
  missing, zeros, negatives, histogram bin counts over shared edges),
  element selections (min/max), first/last boundary values, and Counter
  frequency tables merge across chunks *exactly*. Float reductions
  (sum, mean, variance, quantiles) are **not** chunk-merged — float
  addition is non-associative, and the engine guarantees bit-identical
  results vs. the monolithic kernels — so order/moment statistics are
  computed on the gathered non-missing payload instead (one concatenate
  of the per-chunk compressed shards, which is element-identical to the
  monolithic compression).

Every derived frame (``select``/``take``/in-memory ``sort_by``/...) is
monolithic; chunking is a property of the stored table, not of query
results. The one deliberate exception is the external merge sort
(:mod:`repro.dataframe.sort`): its output is emitted shard-by-shard as a
spill-backed chunked frame, because densifying the result would defeat
sorting a frame that never fit in memory in the first place.

Out-of-core spilling
--------------------
:mod:`repro.dataframe.spill` extends this layer with
:class:`~repro.dataframe.spill.SpilledChunkedColumn`, whose shards live
on disk behind the :meth:`ChunkedColumn._shard_pairs` seam instead of in
RAM. Setting ``DATALENS_SPILL_BUDGET`` (bytes; ``k``/``m``/``g``
suffixes allowed) makes the streaming ingestion paths spill their shards
with that resident byte budget, and ``DATALENS_SPILL_DIR`` overrides
where the spill files go. Spilled columns obey the full chunking
contract above — spilled ≡ resident ≡ monolithic, bit for bit.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from . import types as _types
from .column import Column, _readonly
from .frame import DataFrame

#: Fallback chunk size when neither an explicit value nor the environment
#: override is given: large enough that per-chunk numpy dispatch overhead
#: vanishes, small enough that a chunk of a wide table stays cache-warm.
DEFAULT_CHUNK_SIZE = 65_536

#: Environment variable consulted for the default chunk size.  Setting it
#: (e.g. ``DATALENS_DEFAULT_CHUNK_SIZE=257`` in CI) makes ingestion and
#: ``profile()`` run every dataset through the chunked engine so the whole
#: test suite exercises odd chunk boundaries.
CHUNK_SIZE_ENV = "DATALENS_DEFAULT_CHUNK_SIZE"


def default_chunk_size() -> int | None:
    """Chunk size requested via the environment, or None when unset."""
    raw = os.environ.get(CHUNK_SIZE_ENV, "").strip()
    if not raw:
        return None
    try:
        size = int(raw)
    except ValueError:
        raise ValueError(
            f"{CHUNK_SIZE_ENV} must be an integer chunk size, got {raw!r}"
        ) from None
    if size < 1:
        raise ValueError(f"{CHUNK_SIZE_ENV} must be >= 1, got {size}")
    return size


def resolve_chunk_size(chunk_size: int | None = None) -> int:
    """Explicit size, else the environment override, else the default."""
    if chunk_size is None:
        chunk_size = default_chunk_size()
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def chunk_lengths_for(n_rows: int, chunk_size: int) -> tuple[int, ...]:
    """Shard lengths covering ``n_rows``: full chunks plus one remainder.

    Zero rows means zero chunks — an empty table has no shards.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    full, remainder = divmod(n_rows, chunk_size)
    lengths = [chunk_size] * full
    if remainder:
        lengths.append(remainder)
    return tuple(lengths)


def _concat_payload(shards: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate shard payloads, normalizing mixed int64/object backing.

    An int column can be int64-backed in one shard and object-backed in
    another (huge values); the dense array must then be object-backed with
    *Python* scalars, exactly like :func:`~repro.dataframe.column._pack`
    produces on overflow — ``astype(object)`` performs that boxing.
    """
    if len(shards) == 1:
        return shards[0]
    if any(shard.dtype == object for shard in shards):
        shards = [
            shard if shard.dtype == object else shard.astype(object)
            for shard in shards
        ]
    return np.concatenate(shards)


def compressed_chunks(column: Column) -> list[np.ndarray]:
    """Per-chunk non-missing payloads as float arrays, in row order.

    Concatenating these equals the monolithic compression
    ``values_array()[~mask]`` element for element, because boolean
    selection preserves row order within and across chunks. This is the
    single gather primitive every chunk-aware float kernel (profiling
    stats, histograms, SD/IQR detection) builds on — the bit-identical
    compression invariant lives here and nowhere else.
    """
    parts = []
    for chunk in column.iter_chunks():
        mask = np.asarray(chunk.mask())
        parts.append(chunk.values_array()[~mask].astype(float))
    return parts


def gather_compressed(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-chunk compressed payloads (no copy for one part)."""
    nonempty = [part for part in parts if len(part)]
    if not nonempty:
        return np.empty(0, dtype=float)
    if len(nonempty) == 1:
        return nonempty[0]
    return np.concatenate(nonempty)


class ChunkedColumn(Column):
    """A :class:`Column` stored as an ordered list of (data, mask) shards.

    The shards either live as independently owned arrays (streaming
    ingestion builds the column this way) or, after the first dense
    access, as views into the concatenated ``(_data, _mask)`` pair — so
    in-place mutation through the inherited ``set`` / ``set_many`` stays
    visible to every shard and no state can go stale.
    """

    __slots__ = (
        "_chunk_lengths",
        "_shard_data",
        "_shard_masks",
        "_dense_data",
        "_dense_mask",
    )

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        raise TypeError(
            "build ChunkedColumn via from_column()/from_shards(), "
            "not the constructor"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_column(
        cls, column: Column, chunk_lengths: Sequence[int]
    ) -> "ChunkedColumn":
        """Chunk an existing column at the given shard lengths (copies)."""
        lengths = tuple(int(length) for length in chunk_lengths)
        if sum(lengths) != len(column):
            raise ValueError(
                f"chunk lengths {lengths} cover {sum(lengths)} rows, "
                f"column has {len(column)}"
            )
        if any(length < 1 for length in lengths):
            raise ValueError("chunk lengths must all be >= 1")
        out = cls.__new__(cls)
        out.name = column.name
        out.dtype = column.dtype
        # Re-chunking preserves content row for row, so the source column's
        # content-derived caches stay valid (cross-chunk codes() equal the
        # monolithic factorization by contract; fingerprints are computed
        # over the dense pair either way).
        out._codes_cache = column._codes_cache
        out._fingerprint_cache = column._fingerprint_cache
        out._mask_fingerprint_cache = column._mask_fingerprint_cache
        out._chunk_lengths = lengths
        out._shard_data = None
        out._shard_masks = None
        out._dense_data = np.asarray(column.values_array()).copy()
        out._dense_mask = np.asarray(column.mask()).copy()
        return out

    @classmethod
    def from_shards(
        cls,
        name: str,
        dtype: str,
        shards: Iterable[tuple[np.ndarray, np.ndarray]],
    ) -> "ChunkedColumn":
        """Wrap pre-packed ``(data, mask)`` shard pairs without copying.

        The column takes ownership of the arrays. Every shard must hold
        payloads already coerced to ``dtype`` with the standard fill
        values at masked slots; int shards may mix int64 and object
        backing (the dense view normalizes on materialization).
        """
        if dtype not in _types.DTYPES:
            raise ValueError(f"unknown dtype {dtype!r}")
        pairs = [(data, mask) for data, mask in shards]
        for data, mask in pairs:
            if len(data) != len(mask):
                raise ValueError("shard data and mask lengths differ")
            if len(data) == 0:
                raise ValueError("empty shards are not allowed")
        out = cls.__new__(cls)
        out.name = name
        out.dtype = dtype
        out._codes_cache = None
        out._fingerprint_cache = None
        out._mask_fingerprint_cache = None
        out._chunk_lengths = tuple(len(data) for data, _ in pairs)
        out._shard_data = [data for data, _ in pairs]
        out._shard_masks = [mask for _, mask in pairs]
        out._dense_data = None
        out._dense_mask = None
        return out

    # ------------------------------------------------------------------
    # Dense storage (lazy) — shadows the parent _data/_mask slots so every
    # inherited Column method transparently sees the concatenated arrays.
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        if self._dense_data is not None:
            return
        shards = self._shard_data or []
        masks = self._shard_masks or []
        if not shards:
            self._dense_data = np.empty(
                0, dtype=_types.NUMPY_DTYPES[self.dtype]
            )
            self._dense_mask = np.zeros(0, dtype=bool)
        else:
            self._dense_data = _concat_payload(shards)
            self._dense_mask = (
                masks[0] if len(masks) == 1 else np.concatenate(masks)
            )
        # From here on the shards are views of the dense pair, so in-place
        # writes through the inherited mutators stay consistent.
        self._shard_data = None
        self._shard_masks = None

    @property
    def _data(self) -> np.ndarray:  # type: ignore[override]
        self._materialize()
        return self._dense_data

    @_data.setter
    def _data(self, array: np.ndarray) -> None:
        # Widening/overflow paths in Column.set/set_many replace the whole
        # array (same length); shard views are recomputed on demand.
        self._dense_data = array
        self._shard_data = None

    @property
    def _mask(self) -> np.ndarray:  # type: ignore[override]
        self._materialize()
        return self._dense_mask

    @_mask.setter
    def _mask(self, array: np.ndarray) -> None:
        self._dense_mask = array
        self._shard_masks = None

    # ------------------------------------------------------------------
    # Chunk API
    # ------------------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        return len(self._chunk_lengths)

    @property
    def chunk_lengths(self) -> tuple[int, ...]:
        return self._chunk_lengths

    def _shard_pairs(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield the raw ``(data, mask)`` shard pair per chunk, in order."""
        if self._shard_data is not None:
            yield from zip(self._shard_data, self._shard_masks)
            return
        self._materialize()
        start = 0
        for length in self._chunk_lengths:
            end = start + length
            yield self._dense_data[start:end], self._dense_mask[start:end]
            start = end

    def iter_chunks(self) -> Iterator[Column]:
        """Yield each shard as a read-only monolithic :class:`Column`."""
        for data, mask in self._shard_pairs():
            yield Column._from_arrays(
                self.name, self.dtype, _readonly(data), _readonly(mask)
            )

    def rechunk(self, chunk_size: int | None = None) -> "ChunkedColumn":
        """Return a copy re-sharded at ``chunk_size`` rows per chunk."""
        size = resolve_chunk_size(chunk_size)
        return ChunkedColumn.from_column(self, chunk_lengths_for(len(self), size))

    # ------------------------------------------------------------------
    # Cheap chunk-aware overrides (avoid materializing for metadata)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._chunk_lengths)

    def missing_count(self) -> int:
        if self._dense_mask is not None:
            return int(self._dense_mask.sum())
        return sum(int(mask.sum()) for mask in self._shard_masks or [])

    def value_counts(self):
        """Frequency table via exactly-merged per-chunk counters.

        Integer counts add exactly and sequential chunk scans preserve
        first-seen key order, so the merged Counter — including
        ``most_common`` tie-breaking — is identical to one dense scan.
        """
        from collections import Counter

        counts: Counter = Counter()
        for data, mask in self._shard_pairs():
            counts.update(data[~mask].tolist())
        return counts

    def copy(self) -> "ChunkedColumn":
        return ChunkedColumn.from_column(self, self._chunk_lengths)


class ChunkedFrame(DataFrame):
    """A :class:`DataFrame` whose columns are row-aligned ChunkedColumns.

    All columns must share identical chunk lengths so that chunk ``i`` of
    every column covers the same row range; :meth:`iter_chunks` then
    yields one monolithic (read-only view) DataFrame per chunk.
    """

    def __init__(self, columns: Iterable[Column] = ()):  # noqa: D107
        super().__init__(columns)
        lengths: tuple[int, ...] | None = None
        for name, column in self._columns.items():
            if not isinstance(column, ChunkedColumn):
                raise TypeError(
                    f"ChunkedFrame requires ChunkedColumn, got plain "
                    f"Column {name!r}"
                )
            if lengths is None:
                lengths = column.chunk_lengths
            elif column.chunk_lengths != lengths:
                raise ValueError(
                    f"column {name!r} chunk lengths {column.chunk_lengths} "
                    f"!= {lengths}"
                )
        self._chunk_lengths: tuple[int, ...] = lengths or ()

    # ------------------------------------------------------------------
    @classmethod
    def from_frame(
        cls,
        frame: DataFrame,
        chunk_size: int | None = None,
        spill: Any = None,
    ) -> "ChunkedFrame":
        """Chunk a monolithic frame at ``chunk_size`` rows per chunk.

        ``spill`` (a :class:`~repro.dataframe.spill.SpillStore` or True)
        writes the shards to disk instead of keeping them resident. It is
        explicit-only here — the ``DATALENS_SPILL_BUDGET`` environment
        override applies to the *ingestion* paths, because spilling a
        frame that is already in memory cannot lower its peak RSS.
        """
        size = resolve_chunk_size(chunk_size)
        lengths = chunk_lengths_for(frame.num_rows, size)
        if spill is not None and spill is not False:
            from .spill import SpilledChunkedColumn, resolve_spill_store

            store = resolve_spill_store(spill)
            return cls(
                SpilledChunkedColumn.from_column(
                    frame.column(name), lengths, store
                )
                for name in frame.column_names
            )
        return cls(
            ChunkedColumn.from_column(frame.column(name), lengths)
            for name in frame.column_names
        )

    @property
    def n_chunks(self) -> int:
        return len(self._chunk_lengths)

    @property
    def chunk_lengths(self) -> tuple[int, ...]:
        return self._chunk_lengths

    def iter_chunks(self) -> Iterator[DataFrame]:
        """Yield one read-only monolithic DataFrame per chunk, in order."""
        iterators = {
            name: self._columns[name].iter_chunks() for name in self._columns
        }
        for _ in range(self.n_chunks):
            yield DataFrame(next(iterators[name]) for name in iterators)

    def rechunk(self, chunk_size: int | None = None) -> "ChunkedFrame":
        """Return a copy re-sharded at ``chunk_size`` rows per chunk.

        Dispatches through :meth:`ChunkedColumn.rechunk`, so spilled
        columns re-shard shard-by-shard and stay spilled.
        """
        size = resolve_chunk_size(chunk_size)
        return ChunkedFrame(
            self._columns[name].rechunk(size) for name in self._columns
        )

    def to_chunked(self, chunk_size: int | None = None) -> "ChunkedFrame":
        """Copy, matching :meth:`DataFrame.to_chunked` semantics exactly.

        ``None`` keeps the existing chunk lengths; either way the result
        owns fresh storage, so mutating it never touches this frame.
        """
        if chunk_size is None:
            return self.copy()
        return self.rechunk(chunk_size)

    def to_monolithic(self) -> DataFrame:
        """Consolidate into a plain DataFrame (copies the storage)."""
        return DataFrame(
            Column._from_arrays(
                column.name,
                column.dtype,
                np.asarray(column.values_array()).copy(),
                np.asarray(column.mask()).copy(),
            )
            for column in self._columns.values()
        )

    def copy(self) -> "ChunkedFrame":
        return ChunkedFrame(column.copy() for column in self._columns.values())

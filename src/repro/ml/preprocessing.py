"""Feature preprocessing: encoders, scalers, and frame-to-matrix assembly.

``FrameEncoder`` — the hot feature-assembly path for every optimizer
trial — encodes categorical columns through ``Column.codes()``: the
fitted ``{value: code}`` mapping is applied once per *distinct* value to
build a lookup table, then gathered across rows in one numpy indexing
operation instead of a per-cell dict probe.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

import numpy as np

from ..dataframe import Column, DataFrame


class LabelEncoder:
    """Map hashable labels to contiguous integer codes."""

    def __init__(self) -> None:
        self.classes_: list[Hashable] = []
        self._index: dict[Hashable, int] = {}

    def fit(self, labels: Sequence[Hashable]) -> "LabelEncoder":
        self.classes_ = sorted(set(labels), key=str)
        self._index = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, labels: Sequence[Hashable]) -> np.ndarray:
        try:
            return np.array([self._index[label] for label in labels], dtype=int)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from exc

    def fit_transform(self, labels: Sequence[Hashable]) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, codes: Sequence[int]) -> list[Hashable]:
        return [self.classes_[int(code)] for code in codes]


class OneHotEncoder:
    """Dense one-hot encoding with an explicit unknown-value policy."""

    def __init__(self, handle_unknown: str = "ignore") -> None:
        if handle_unknown not in ("ignore", "error"):
            raise ValueError("handle_unknown must be 'ignore' or 'error'")
        self.handle_unknown = handle_unknown
        self.categories_: list[Any] = []
        self._index: dict[Any, int] = {}

    def fit(self, values: Sequence[Any]) -> "OneHotEncoder":
        self.categories_ = sorted(set(values), key=str)
        self._index = {value: i for i, value in enumerate(self.categories_)}
        return self

    def transform(self, values: Sequence[Any]) -> np.ndarray:
        matrix = np.zeros((len(values), len(self.categories_)), dtype=float)
        for row, value in enumerate(values):
            col = self._index.get(value)
            if col is None:
                if self.handle_unknown == "error":
                    raise ValueError(f"unseen category {value!r}")
                continue
            matrix[row, col] = 1.0
        return matrix

    def fit_transform(self, values: Sequence[Any]) -> np.ndarray:
        return self.fit(values).transform(values)


class StandardScaler:
    """Zero-mean, unit-variance scaling (constant features left centered)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        data = np.asarray(matrix, dtype=float)
        self.mean_ = np.nanmean(data, axis=0)
        scale = np.nanstd(data, axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(matrix, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


class MinMaxScaler:
    """Scale features into [0, 1] (constant features map to 0)."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "MinMaxScaler":
        data = np.asarray(matrix, dtype=float)
        self.min_ = np.nanmin(data, axis=0)
        span = np.nanmax(data, axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.range_ = span
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(matrix, dtype=float) - self.min_) / self.range_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


class FrameEncoder:
    """Encode a DataFrame into a dense numeric matrix for model training.

    Numeric columns pass through (missing → column mean); categorical columns
    are label-encoded (missing → dedicated code). The encoder is fit once on
    training data and can transform compatible frames afterwards.
    """

    _MISSING = "__missing__"

    def __init__(self, columns: Sequence[str] | None = None) -> None:
        self.columns = list(columns) if columns is not None else None
        self._numeric: dict[str, float] = {}
        self._categorical: dict[str, dict[Any, int]] = {}
        self.fitted_columns: list[str] = []

    def fit(self, frame: DataFrame) -> "FrameEncoder":
        names = self.columns if self.columns is not None else frame.column_names
        self.fitted_columns = list(names)
        self._numeric.clear()
        self._categorical.clear()
        for name in names:
            column = frame.column(name)
            if column.is_numeric():
                values = column.non_missing()
                self._numeric[name] = float(np.mean(values)) if values else 0.0
            else:
                levels = sorted(set(column.non_missing()), key=str)
                mapping = {value: i for i, value in enumerate(levels)}
                mapping[self._MISSING] = len(mapping)
                self._categorical[name] = mapping
        return self

    def transform(self, frame: DataFrame) -> np.ndarray:
        if not self.fitted_columns:
            raise RuntimeError("encoder is not fitted")
        columns = []
        for name in self.fitted_columns:
            column = frame.column(name)
            if name in self._numeric:
                fill = self._numeric[name]
                array = column.to_numpy()
                array = np.where(np.isnan(array), fill, array)
                columns.append(array)
            else:
                columns.append(self._encode_categorical(name, column))
        return np.column_stack(columns) if columns else np.empty((frame.num_rows, 0))

    def _encode_categorical(self, name: str, column: Column) -> np.ndarray:
        """Gather the fitted value→code mapping through ``Column.codes``.

        The mapping dict is probed once per distinct value (building a
        per-code lookup table) instead of once per row; missing cells and
        unseen values both map to the dedicated missing/unknown code.
        """
        mapping = self._categorical[name]
        unknown = mapping[self._MISSING]
        codes, n_groups = column.codes()
        if not len(codes):
            return np.empty(0, dtype=float)
        mask = column.mask()
        lookup = np.full(n_groups, float(unknown))
        valid = ~mask
        if valid.any():
            payload = column.values_array()[valid]
            valid_codes = codes[valid]
            _, first_index = np.unique(valid_codes, return_index=True)
            for code, value in enumerate(payload[first_index].tolist()):
                lookup[code] = float(mapping.get(value, unknown))
        # Missing cells share the highest code; it stays at ``unknown``,
        # which is exactly the fitted missing slot.
        return lookup[codes]

    def fit_transform(self, frame: DataFrame) -> np.ndarray:
        return self.fit(frame).transform(frame)

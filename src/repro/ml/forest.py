"""Tree ensembles: random forests and the isolation forest core.

The isolation forest here is the anomaly-scoring engine behind the paper's
"IF" outlier detector; the random forests serve as stronger downstream
models for the iterative-cleaning search space.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np

from .tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseRandomForest:
    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 8,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self._trees: list[Any] = []

    def _make_tree(self, seed: int) -> Any:
        raise NotImplementedError

    def fit(self, features: np.ndarray, target: Sequence[Any]):
        matrix = np.asarray(features, dtype=float)
        labels = list(target)
        if matrix.shape[0] != len(labels):
            raise ValueError("features and target disagree on sample count")
        rng = np.random.default_rng(self.seed)
        n = matrix.shape[0]
        self._trees = []
        for i in range(self.n_estimators):
            indices = rng.integers(0, n, size=n)
            tree = self._make_tree(self.seed + i)
            tree.fit(matrix[indices], [labels[int(j)] for j in indices])
            self._trees.append(tree)
        return self

    def _tree_predictions(self, features: np.ndarray) -> list[list[Any]]:
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        return [tree.predict(features) for tree in self._trees]


class RandomForestClassifier(_BaseRandomForest):
    """Bagged CART classifiers with majority voting."""

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth, max_features=self.max_features, seed=seed
        )

    def predict(self, features: np.ndarray) -> list[Any]:
        votes = self._tree_predictions(features)
        out = []
        for i in range(len(votes[0])):
            counts = Counter(vote[i] for vote in votes)
            best = max(counts.values())
            winners = [label for label, count in counts.items() if count == best]
            out.append(sorted(winners, key=str)[0])
        return out


class RandomForestRegressor(_BaseRandomForest):
    """Bagged CART regressors with mean aggregation."""

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth, max_features=self.max_features, seed=seed
        )

    def predict(self, features: np.ndarray) -> list[float]:
        votes = np.asarray(self._tree_predictions(features), dtype=float)
        return [float(v) for v in votes.mean(axis=0)]


# ----------------------------------------------------------------------
# Isolation forest
# ----------------------------------------------------------------------
class _IsolationNode:
    __slots__ = ("feature", "threshold", "left", "right", "size")

    def __init__(self, size: int) -> None:
        self.feature: int | None = None
        self.threshold: float = 0.0
        self.left: "_IsolationNode | None" = None
        self.right: "_IsolationNode | None" = None
        self.size = size


def _average_path_length(n: int) -> float:
    """Expected path length of an unsuccessful BST search (Liu et al. 2008)."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


class IsolationForest:
    """Isolation forest anomaly scorer.

    ``score_samples`` returns the standard anomaly score in (0, 1]; larger
    means more anomalous. ``predict`` flags the top ``contamination``
    fraction as outliers.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.contamination = contamination
        self.seed = seed
        self._trees: list[_IsolationNode] = []
        self._subsample_size = 0

    def fit(self, matrix: np.ndarray) -> "IsolationForest":
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("matrix must be non-empty and 2-D")
        rng = np.random.default_rng(self.seed)
        n = data.shape[0]
        self._subsample_size = min(self.max_samples, n)
        height_limit = int(np.ceil(np.log2(max(2, self._subsample_size))))
        self._trees = []
        for _ in range(self.n_estimators):
            indices = rng.choice(n, size=self._subsample_size, replace=False)
            self._trees.append(self._grow(data[indices], 0, height_limit, rng))
        return self

    def _grow(
        self,
        data: np.ndarray,
        depth: int,
        height_limit: int,
        rng: np.random.Generator,
    ) -> _IsolationNode:
        node = _IsolationNode(size=data.shape[0])
        if depth >= height_limit or data.shape[0] <= 1:
            return node
        spans = data.max(axis=0) - data.min(axis=0)
        candidates = np.flatnonzero(spans > 0)
        if len(candidates) == 0:
            return node
        feature = int(rng.choice(candidates))
        low = float(data[:, feature].min())
        high = float(data[:, feature].max())
        threshold = float(rng.uniform(low, high))
        mask = data[:, feature] < threshold
        if not mask.any() or mask.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(data[mask], depth + 1, height_limit, rng)
        node.right = self._grow(data[~mask], depth + 1, height_limit, rng)
        return node

    def _path_length(self, row: np.ndarray, node: _IsolationNode, depth: int) -> float:
        while node.feature is not None:
            node = node.left if row[node.feature] < node.threshold else node.right
            depth += 1
        return depth + _average_path_length(node.size)

    def score_samples(self, matrix: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        expected = _average_path_length(self._subsample_size)
        scores = []
        for row in data:
            mean_path = float(
                np.mean([self._path_length(row, tree, 0) for tree in self._trees])
            )
            scores.append(2.0 ** (-mean_path / max(expected, 1e-9)))
        return np.array(scores)

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Boolean outlier mask over the rows of ``matrix``."""
        scores = self.score_samples(matrix)
        threshold = np.quantile(scores, 1.0 - self.contamination)
        return scores > max(threshold, 0.5)

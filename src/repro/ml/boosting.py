"""Gradient boosting — the model family RAHA's original classifiers use.

Binary classification via gradient-boosted regression trees on the
logistic loss; multi-class via one-vs-rest. Regression via least-squares
boosting. Shallow CART regressors are the weak learners.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .tree import DecisionTreeRegressor


class GradientBoostingRegressor:
    """Least-squares gradient boosting with shrinkage."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.seed = seed
        self._base: float = 0.0
        self._trees: list[DecisionTreeRegressor] = []

    def fit(self, features: np.ndarray, target: Sequence[float]):
        matrix = np.asarray(features, dtype=float)
        y = np.asarray(list(target), dtype=float)
        if matrix.shape[0] != y.shape[0]:
            raise ValueError("features and target disagree on sample count")
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        self._base = float(np.mean(y))
        prediction = np.full_like(y, self._base)
        self._trees = []
        for i in range(self.n_estimators):
            residual = y - prediction
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, seed=self.seed + i
            )
            tree.fit(matrix, residual)
            update = np.asarray(tree.predict(matrix), dtype=float)
            prediction = prediction + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> list[float]:
        if not self._trees:
            raise RuntimeError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        prediction = np.full(matrix.shape[0], self._base)
        for tree in self._trees:
            prediction = prediction + self.learning_rate * np.asarray(
                tree.predict(matrix), dtype=float
            )
        return [float(v) for v in prediction]


class GradientBoostingClassifier:
    """Logistic-loss boosting; multi-class handled one-vs-rest."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.seed = seed
        self.classes_: list[Any] = []
        self._base_scores: list[float] = []
        self._ensembles: list[list[DecisionTreeRegressor]] = []

    def fit(self, features: np.ndarray, target: Sequence[Any]):
        matrix = np.asarray(features, dtype=float)
        labels = list(target)
        if matrix.shape[0] != len(labels):
            raise ValueError("features and target disagree on sample count")
        if not labels:
            raise ValueError("cannot fit on zero samples")
        self.classes_ = sorted(set(labels), key=str)
        self._base_scores = []
        self._ensembles = []
        for class_index, label in enumerate(self.classes_):
            y = np.array([1.0 if l == label else 0.0 for l in labels])
            base, trees = self._fit_binary(matrix, y, class_index)
            self._base_scores.append(base)
            self._ensembles.append(trees)
        return self

    def _fit_binary(
        self, matrix: np.ndarray, y: np.ndarray, class_index: int
    ) -> tuple[float, list[DecisionTreeRegressor]]:
        positive_rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        base = float(np.log(positive_rate / (1.0 - positive_rate)))
        score = np.full_like(y, base)
        trees: list[DecisionTreeRegressor] = []
        for i in range(self.n_estimators):
            probability = 1.0 / (1.0 + np.exp(-score))
            residual = y - probability  # negative gradient of log-loss
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                seed=self.seed + class_index * 1000 + i,
            )
            tree.fit(matrix, residual)
            update = np.asarray(tree.predict(matrix), dtype=float)
            score = score + self.learning_rate * update
            trees.append(tree)
        return base, trees

    def _raw_scores(self, matrix: np.ndarray) -> np.ndarray:
        scores = np.zeros((matrix.shape[0], len(self.classes_)))
        for class_index, trees in enumerate(self._ensembles):
            score = np.full(matrix.shape[0], self._base_scores[class_index])
            for tree in trees:
                score = score + self.learning_rate * np.asarray(
                    tree.predict(matrix), dtype=float
                )
            scores[:, class_index] = score
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self._ensembles:
            raise RuntimeError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        raw = self._raw_scores(matrix)
        probabilities = 1.0 / (1.0 + np.exp(-raw))
        totals = probabilities.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return probabilities / totals

    def predict(self, features: np.ndarray) -> list[Any]:
        probabilities = self.predict_proba(features)
        return [self.classes_[int(i)] for i in probabilities.argmax(axis=1)]

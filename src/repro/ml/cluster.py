"""Clustering: k-means and agglomerative — the engines behind RAHA sampling."""

from __future__ import annotations

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ style seeding (deterministic RNG)."""

    def __init__(
        self,
        n_clusters: int = 8,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = float("inf")

    def fit(self, matrix: np.ndarray) -> "KMeans":
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("matrix must be non-empty and 2-D")
        k = min(self.n_clusters, data.shape[0])
        centers = self._seed_centers(data, k)
        labels = np.zeros(data.shape[0], dtype=int)
        for _ in range(self.max_iterations):
            distances = self._pairwise_sq(data, centers)
            labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for cluster in range(k):
                members = data[labels == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centers - centers)))
            centers = new_centers
            if shift < self.tolerance:
                break
        self.centers_ = centers
        self.labels_ = labels
        self.inertia_ = float(
            np.sum(self._pairwise_sq(data, centers)[np.arange(len(labels)), labels])
        )
        return self

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise RuntimeError("model is not fitted")
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        return self._pairwise_sq(data, self.centers_).argmin(axis=1)

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).labels_

    def _seed_centers(self, data: np.ndarray, k: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        first = int(rng.integers(data.shape[0]))
        centers = [data[first]]
        for _ in range(1, k):
            distances = np.min(self._pairwise_sq(data, np.array(centers)), axis=1)
            total = float(distances.sum())
            if total == 0.0:
                centers.append(data[int(rng.integers(data.shape[0]))])
                continue
            probabilities = distances / total
            choice = int(rng.choice(data.shape[0], p=probabilities))
            centers.append(data[choice])
        return np.array(centers)

    @staticmethod
    def _pairwise_sq(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
        return ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)


class AgglomerativeClustering:
    """Bottom-up hierarchical clustering with average linkage.

    RAHA clusters cells of one column by their feature vectors and then
    propagates user labels within each cluster; this class provides the
    dendrogram cut at ``n_clusters``.
    """

    def __init__(self, n_clusters: int = 2, linkage: str = "average") -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if linkage not in ("average", "single", "complete"):
            raise ValueError("linkage must be average, single, or complete")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.labels_: np.ndarray | None = None

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("matrix must be non-empty and 2-D")
        n = data.shape[0]
        k = min(self.n_clusters, n)
        clusters: dict[int, list[int]] = {i: [i] for i in range(n)}
        distances = self._initial_distances(data)
        while len(clusters) > k:
            (a, b), _ = min(distances.items(), key=lambda kv: (kv[1], kv[0]))
            clusters[a] = clusters[a] + clusters[b]
            del clusters[b]
            distances = {
                pair: dist
                for pair, dist in distances.items()
                if b not in pair and pair != (a, b)
            }
            for other in clusters:
                if other == a:
                    continue
                pair = (min(a, other), max(a, other))
                distances[pair] = self._cluster_distance(
                    data, clusters[a], clusters[other]
                )
        labels = np.zeros(n, dtype=int)
        for label, (_, members) in enumerate(sorted(clusters.items())):
            for member in members:
                labels[member] = label
        self.labels_ = labels
        return labels

    def _initial_distances(self, data: np.ndarray) -> dict[tuple[int, int], float]:
        n = data.shape[0]
        diffs = ((data[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
        matrix = np.sqrt(diffs)
        return {
            (i, j): float(matrix[i, j]) for i in range(n) for j in range(i + 1, n)
        }

    def _cluster_distance(
        self, data: np.ndarray, left: list[int], right: list[int]
    ) -> float:
        block = np.sqrt(
            ((data[left][:, None, :] - data[right][None, :, :]) ** 2).sum(axis=2)
        )
        if self.linkage == "single":
            return float(block.min())
        if self.linkage == "complete":
            return float(block.max())
        return float(block.mean())


def cluster_by_vector(matrix: np.ndarray, n_clusters: int) -> np.ndarray:
    """Group identical feature vectors first, then cluster the distinct ones.

    This is the exact trick RAHA uses: cells of a column often share feature
    vectors, so hierarchical clustering runs on the (much smaller) set of
    distinct vectors and the assignment is broadcast back to all cells.
    """
    data = np.asarray(matrix, dtype=float)
    distinct, inverse = np.unique(data, axis=0, return_inverse=True)
    if len(distinct) <= n_clusters:
        return inverse.astype(int)
    model = AgglomerativeClustering(n_clusters=n_clusters)
    distinct_labels = model.fit_predict(distinct)
    return distinct_labels[inverse]

"""Evaluation metrics for regression, classification, and detection.

These back both the iterative-cleaning scoring function (MSE / F1 per the
paper's §4) and the detection-quality measurements of Figure 3.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable, Iterable, Sequence

import numpy as np


def _as_float_arrays(
    y_true: Sequence[float], y_pred: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    true = np.asarray(list(y_true), dtype=float)
    pred = np.asarray(list(y_pred), dtype=float)
    if true.shape != pred.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {pred.shape}")
    if true.size == 0:
        raise ValueError("metrics need at least one sample")
    return true, pred


# ----------------------------------------------------------------------
# Regression
# ----------------------------------------------------------------------
def mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    true, pred = _as_float_arrays(y_true, y_pred)
    return float(np.mean((true - pred) ** 2))


def root_mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    true, pred = _as_float_arrays(y_true, y_pred)
    return float(np.mean(np.abs(true - pred)))


def r2_score(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    true, pred = _as_float_arrays(y_true, y_pred)
    residual = float(np.sum((true - pred) ** 2))
    total = float(np.sum((true - np.mean(true)) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def accuracy_score(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> float:
    true = list(y_true)
    pred = list(y_pred)
    if len(true) != len(pred):
        raise ValueError("length mismatch")
    if not true:
        raise ValueError("metrics need at least one sample")
    return sum(t == p for t, p in zip(true, pred)) / len(true)


def confusion_matrix(
    y_true: Sequence[Hashable], y_pred: Sequence[Hashable]
) -> tuple[list[Hashable], np.ndarray]:
    """Return (sorted labels, matrix[true_index][pred_index])."""
    true = list(y_true)
    pred = list(y_pred)
    labels = sorted(set(true) | set(pred), key=str)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(true, pred):
        matrix[index[t], index[p]] += 1
    return labels, matrix


def _binary_counts(
    y_true: Sequence[Hashable], y_pred: Sequence[Hashable], positive: Hashable
) -> tuple[int, int, int]:
    tp = fp = fn = 0
    for t, p in zip(y_true, y_pred):
        if p == positive and t == positive:
            tp += 1
        elif p == positive:
            fp += 1
        elif t == positive:
            fn += 1
    return tp, fp, fn


def precision_score(
    y_true: Sequence[Hashable], y_pred: Sequence[Hashable], positive: Hashable = True
) -> float:
    tp, fp, _ = _binary_counts(list(y_true), list(y_pred), positive)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(
    y_true: Sequence[Hashable], y_pred: Sequence[Hashable], positive: Hashable = True
) -> float:
    tp, _, fn = _binary_counts(list(y_true), list(y_pred), positive)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(
    y_true: Sequence[Hashable], y_pred: Sequence[Hashable], positive: Hashable = True
) -> float:
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def macro_f1_score(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> float:
    """Unweighted mean of per-class F1 — the multi-class score used for Beers."""
    true = list(y_true)
    pred = list(y_pred)
    labels = sorted(set(true), key=str)
    if not labels:
        raise ValueError("metrics need at least one sample")
    return float(np.mean([f1_score(true, pred, positive=label) for label in labels]))


def micro_f1_score(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> float:
    true = list(y_true)
    pred = list(y_pred)
    labels = set(true) | set(pred)
    tp = fp = fn = 0
    for label in labels:
        ltp, lfp, lfn = _binary_counts(true, pred, label)
        tp += ltp
        fp += lfp
        fn += lfn
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


# ----------------------------------------------------------------------
# Detection (cell-set) metrics — Figure 3 / detection suite
# ----------------------------------------------------------------------
def detection_scores(
    detected: Iterable[Any], actual: Iterable[Any]
) -> dict[str, float]:
    """Precision/recall/F1 of a detected cell set against ground truth."""
    detected_set = set(detected)
    actual_set = set(actual)
    tp = len(detected_set & actual_set)
    precision = tp / len(detected_set) if detected_set else 0.0
    recall = tp / len(actual_set) if actual_set else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return {"precision": precision, "recall": recall, "f1": f1}


def class_distribution(labels: Sequence[Hashable]) -> dict[Hashable, float]:
    """Relative frequency of each label."""
    counts = Counter(labels)
    total = sum(counts.values())
    return {label: count / total for label, count in counts.items()}

"""ML substrate (scikit-learn substitute): models, metrics, preprocessing."""

from .boosting import GradientBoostingClassifier, GradientBoostingRegressor
from .cluster import AgglomerativeClustering, KMeans, cluster_by_vector
from .forest import IsolationForest, RandomForestClassifier, RandomForestRegressor
from .knn import KNeighborsClassifier, KNeighborsRegressor
from .linear import LinearRegression, LogisticRegression
from .metrics import (
    accuracy_score,
    class_distribution,
    confusion_matrix,
    detection_scores,
    f1_score,
    macro_f1_score,
    mean_absolute_error,
    mean_squared_error,
    micro_f1_score,
    precision_score,
    r2_score,
    recall_score,
    root_mean_squared_error,
)
from .model_selection import (
    cross_val_score,
    k_fold_indices,
    train_test_split,
    train_test_split_indices,
)
from .naive_bayes import GaussianNB
from .preprocessing import (
    FrameEncoder,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
)
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "AgglomerativeClustering",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "FrameEncoder",
    "GaussianNB",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "IsolationForest",
    "KMeans",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "LabelEncoder",
    "LinearRegression",
    "LogisticRegression",
    "MinMaxScaler",
    "OneHotEncoder",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "StandardScaler",
    "accuracy_score",
    "class_distribution",
    "cluster_by_vector",
    "confusion_matrix",
    "cross_val_score",
    "detection_scores",
    "f1_score",
    "k_fold_indices",
    "macro_f1_score",
    "mean_absolute_error",
    "mean_squared_error",
    "micro_f1_score",
    "precision_score",
    "r2_score",
    "recall_score",
    "root_mean_squared_error",
    "train_test_split",
    "train_test_split_indices",
]

"""Gaussian naive Bayes — a cheap probabilistic classifier for the tool zoo."""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np


class GaussianNB:
    """Gaussian naive Bayes with per-class feature means/variances."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_: list[Any] = []
        self._priors: np.ndarray | None = None
        self._means: np.ndarray | None = None
        self._variances: np.ndarray | None = None

    def fit(self, features: np.ndarray, target: Sequence[Any]) -> "GaussianNB":
        matrix = np.asarray(features, dtype=float)
        labels = list(target)
        if matrix.shape[0] != len(labels):
            raise ValueError("features and target disagree on sample count")
        if not labels:
            raise ValueError("cannot fit on zero samples")
        counts = Counter(labels)
        self.classes_ = sorted(counts, key=str)
        n_classes = len(self.classes_)
        n_features = matrix.shape[1]
        self._priors = np.array(
            [counts[label] / len(labels) for label in self.classes_]
        )
        self._means = np.zeros((n_classes, n_features))
        self._variances = np.zeros((n_classes, n_features))
        global_var = float(np.var(matrix)) if matrix.size else 1.0
        smoothing = self.var_smoothing * max(global_var, 1e-12)
        for i, label in enumerate(self.classes_):
            rows = matrix[[j for j, l in enumerate(labels) if l == label]]
            self._means[i] = rows.mean(axis=0)
            self._variances[i] = rows.var(axis=0) + smoothing
        return self

    def _log_likelihood(self, matrix: np.ndarray) -> np.ndarray:
        assert self._means is not None and self._variances is not None
        log_prior = np.log(self._priors)
        out = np.zeros((matrix.shape[0], len(self.classes_)))
        for i in range(len(self.classes_)):
            var = self._variances[i]
            diff = matrix - self._means[i]
            out[:, i] = (
                log_prior[i]
                - 0.5 * np.sum(np.log(2.0 * np.pi * var))
                - 0.5 * np.sum(diff**2 / var, axis=1)
            )
        return out

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._means is None:
            raise RuntimeError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        log_like = self._log_likelihood(matrix)
        shifted = log_like - log_like.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> list[Any]:
        probabilities = self.predict_proba(features)
        return [self.classes_[int(i)] for i in probabilities.argmax(axis=1)]

"""Train/test splitting and cross-validation utilities."""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np


def train_test_split_indices(
    n_samples: int, test_size: float = 0.2, seed: int = 0
) -> tuple[list[int], list[int]]:
    """Return deterministic shuffled (train_indices, test_indices)."""
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    if n_samples < 2:
        raise ValueError("need at least two samples to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_size)))
    n_test = min(n_test, n_samples - 1)
    test = sorted(int(i) for i in order[:n_test])
    train = sorted(int(i) for i in order[n_test:])
    return train, test


def train_test_split(
    features: np.ndarray,
    target: Sequence[Any],
    test_size: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, list[Any], list[Any]]:
    """Split a feature matrix and target into train/test portions."""
    matrix = np.asarray(features)
    labels = list(target)
    if matrix.shape[0] != len(labels):
        raise ValueError("features and target disagree on sample count")
    train_idx, test_idx = train_test_split_indices(len(labels), test_size, seed)
    return (
        matrix[train_idx],
        matrix[test_idx],
        [labels[i] for i in train_idx],
        [labels[i] for i in test_idx],
    )


def k_fold_indices(
    n_samples: int, n_folds: int = 5, seed: int = 0
) -> Iterator[tuple[list[int], list[int]]]:
    """Yield (train_indices, test_indices) for each of ``n_folds`` folds."""
    if n_folds < 2:
        raise ValueError("need at least two folds")
    if n_folds > n_samples:
        raise ValueError("more folds than samples")
    rng = np.random.default_rng(seed)
    order = [int(i) for i in rng.permutation(n_samples)]
    fold_sizes = [n_samples // n_folds] * n_folds
    for i in range(n_samples % n_folds):
        fold_sizes[i] += 1
    start = 0
    for size in fold_sizes:
        test = sorted(order[start : start + size])
        train = sorted(order[:start] + order[start + size :])
        yield train, test
        start += size


def cross_val_score(
    model_factory: Callable[[], Any],
    features: np.ndarray,
    target: Sequence[Any],
    scorer: Callable[[Sequence[Any], Sequence[Any]], float],
    n_folds: int = 5,
    seed: int = 0,
) -> list[float]:
    """Fit a fresh model per fold and score its held-out predictions."""
    matrix = np.asarray(features)
    labels = list(target)
    scores = []
    for train_idx, test_idx in k_fold_indices(len(labels), n_folds, seed):
        model = model_factory()
        model.fit(matrix[train_idx], [labels[i] for i in train_idx])
        predictions = model.predict(matrix[test_idx])
        scores.append(scorer([labels[i] for i in test_idx], list(predictions)))
    return scores

"""k-nearest-neighbour models — the paper's categorical imputer.

``predict`` is batched: query blocks compute all pairwise distances by
broadcasting (``(block, n_train, n_features)`` difference cube, summed
over the feature axis with the same reduction the historical per-row
path used, so distances are bit-identical), and the k nearest are
selected with ``np.partition`` plus an explicit stable tie-break —
strictly-closer points first, then boundary ties in ascending train
index order, exactly the membership a stable argsort produces. The
classifier aggregates votes with one ``bincount`` over (row, class)
codes; the regressor gathers neighbour targets in stable distance order
so its means match the historical per-row ``np.mean`` bit-for-bit.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np

#: Element budget for one (block, n_train, n_features) distance cube —
#: small enough to stay cache-friendly (larger cubes measured slower).
_BLOCK_ELEMENTS = 2_000_000


class _BaseKNN:
    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self._train: np.ndarray | None = None
        self._target: list[Any] = []

    def fit(self, features: np.ndarray, target: Sequence[Any]):
        """Memorize the training matrix and targets (lazy learner)."""
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        labels = list(target)
        if matrix.shape[0] != len(labels):
            raise ValueError("features and target disagree on sample count")
        if not labels:
            raise ValueError("cannot fit on zero samples")
        self._train = matrix
        self._target = labels
        self._label_cache: Any = None
        return self

    def _neighbor_labels(self, row: np.ndarray) -> list[Any]:
        assert self._train is not None
        distances = np.sqrt(np.sum((self._train - row) ** 2, axis=1))
        k = min(self.n_neighbors, len(self._target))
        nearest = np.argsort(distances, kind="stable")[:k]
        return [self._target[int(i)] for i in nearest]

    def predict(self, features: np.ndarray) -> list[Any]:
        """Aggregate the k nearest neighbours' targets per query row."""
        if self._train is None:
            raise RuntimeError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        n_queries = matrix.shape[0]
        if n_queries == 0:
            return []
        n_train, n_features = self._train.shape
        k = min(self.n_neighbors, len(self._target))
        block = max(1, int(_BLOCK_ELEMENTS // max(1, n_train * max(1, n_features))))
        out: list[Any] = []
        for start in range(0, n_queries, block):
            queries = matrix[start : start + block]
            diff = self._train[None, :, :] - queries[:, None, :]
            # In-place square and sqrt: bit-identical to the historical
            # ``sqrt(sum((train - row) ** 2))`` without extra cube copies.
            np.multiply(diff, diff, out=diff)
            distances = np.sum(diff, axis=2)
            np.sqrt(distances, out=distances)
            out.extend(self._aggregate_block(distances, k))
        return out

    # ------------------------------------------------------------------
    def _aggregate_block(self, distances: np.ndarray, k: int) -> list[Any]:
        """Aggregate one (block, n_train) distance matrix; overridable."""
        return [
            self._aggregate(self._stable_nearest_labels(row, k))
            for row in distances
        ]

    def _stable_nearest_labels(self, distances: np.ndarray, k: int) -> list[Any]:
        nearest = np.argsort(distances, kind="stable")[:k]
        return [self._target[int(i)] for i in nearest]

    @staticmethod
    def _stable_topk_mask(distances: np.ndarray, k: int) -> np.ndarray:
        """Boolean (block, n_train) membership of the stable k nearest.

        Strictly closer points are always in; ties at the k-th distance
        are taken in ascending train-index order until k is reached —
        the same set a stable argsort's first k indices select.
        """
        kth = np.partition(distances, k - 1, axis=1)[:, k - 1 : k]
        closer = distances < kth
        need = k - closer.sum(axis=1)
        tied = distances == kth
        take_tied = tied & (np.cumsum(tied, axis=1) <= need[:, None])
        return closer | take_tied

    def _aggregate(self, labels: list[Any]) -> Any:
        raise NotImplementedError


class KNeighborsClassifier(_BaseKNN):
    """Majority vote over the k nearest training points."""

    def _aggregate(self, labels: list[Any]) -> Any:
        counts = Counter(labels)
        best_count = max(counts.values())
        tied = sorted(
            (label for label, count in counts.items() if count == best_count),
            key=str,
        )
        return tied[0]

    def _class_codes(self) -> tuple[list[Any], np.ndarray]:
        """Distinct labels in str order plus one code per train row."""
        if getattr(self, "_label_cache", None) is None:
            classes = sorted(set(self._target), key=str)
            index = {label: i for i, label in enumerate(classes)}
            codes = np.fromiter(
                (index[label] for label in self._target),
                dtype=np.int64,
                count=len(self._target),
            )
            self._label_cache = (classes, codes)
        return self._label_cache

    def _aggregate_block(self, distances: np.ndarray, k: int) -> list[Any]:
        if np.isnan(distances).any():
            # NaN distances defeat the partition tie-break; fall back to
            # the per-row stable argsort (NaN sorts last either way).
            return super()._aggregate_block(distances, k)
        mask = self._stable_topk_mask(distances, k)
        classes, codes = self._class_codes()
        n_classes = len(classes)
        row_idx, train_idx = np.nonzero(mask)
        votes = np.bincount(
            row_idx * n_classes + codes[train_idx],
            minlength=distances.shape[0] * n_classes,
        ).reshape(distances.shape[0], n_classes)
        # classes are in str order, so the first maximum is the Counter
        # tie-break (smallest str among the most common labels).
        best = votes.argmax(axis=1)
        return [classes[i] for i in best.tolist()]


class KNeighborsRegressor(_BaseKNN):
    """Mean of the k nearest targets."""

    def _aggregate(self, labels: list[Any]) -> float:
        return float(np.mean([float(label) for label in labels]))

    def _target_floats(self) -> np.ndarray:
        if getattr(self, "_label_cache", None) is None:
            self._label_cache = np.asarray(
                [float(label) for label in self._target], dtype=float
            )
        return self._label_cache

    def _aggregate_block(self, distances: np.ndarray, k: int) -> list[Any]:
        order = np.argsort(distances, axis=1, kind="stable")[:, :k]
        gathered = self._target_floats()[order]
        return [float(v) for v in np.mean(gathered, axis=1)]

"""k-nearest-neighbour models — the paper's categorical imputer."""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np


class _BaseKNN:
    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self._train: np.ndarray | None = None
        self._target: list[Any] = []

    def fit(self, features: np.ndarray, target: Sequence[Any]):
        """Memorize the training matrix and targets (lazy learner)."""
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        labels = list(target)
        if matrix.shape[0] != len(labels):
            raise ValueError("features and target disagree on sample count")
        if not labels:
            raise ValueError("cannot fit on zero samples")
        self._train = matrix
        self._target = labels
        return self

    def _neighbor_labels(self, row: np.ndarray) -> list[Any]:
        assert self._train is not None
        distances = np.sqrt(np.sum((self._train - row) ** 2, axis=1))
        k = min(self.n_neighbors, len(self._target))
        nearest = np.argsort(distances, kind="stable")[:k]
        return [self._target[int(i)] for i in nearest]

    def predict(self, features: np.ndarray) -> list[Any]:
        """Aggregate the k nearest neighbours' targets per query row."""
        if self._train is None:
            raise RuntimeError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        return [self._aggregate(self._neighbor_labels(row)) for row in matrix]

    def _aggregate(self, labels: list[Any]) -> Any:
        raise NotImplementedError


class KNeighborsClassifier(_BaseKNN):
    """Majority vote over the k nearest training points."""

    def _aggregate(self, labels: list[Any]) -> Any:
        counts = Counter(labels)
        best_count = max(counts.values())
        tied = sorted(
            (label for label, count in counts.items() if count == best_count),
            key=str,
        )
        return tied[0]


class KNeighborsRegressor(_BaseKNN):
    """Mean of the k nearest targets."""

    def _aggregate(self, labels: list[Any]) -> float:
        return float(np.mean([float(label) for label in labels]))

"""CART decision trees — the paper's downstream model and numeric imputer.

The implementation is a straightforward CART: greedy binary splits chosen
by impurity reduction (Gini for classification, variance for regression),
with depth / minimum-samples stopping rules. Split-point candidates are
midpoints between sorted unique feature values, subsampled for speed on
large columns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

_MAX_SPLIT_CANDIDATES = 32


@dataclass
class _Node:
    feature: int | None = None
    threshold: float | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: Any = None

    def is_leaf(self) -> bool:
        return self.feature is None


class _BaseDecisionTree:
    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._rng = np.random.default_rng(seed)

    # -- subclass hooks -------------------------------------------------
    def _leaf_prediction(self, target: np.ndarray) -> Any:
        raise NotImplementedError

    def _impurity(self, target: np.ndarray) -> float:
        raise NotImplementedError

    def _prepare_target(self, target: Sequence[Any]) -> np.ndarray:
        raise NotImplementedError

    # -- API -------------------------------------------------------------
    def fit(self, features: np.ndarray, target: Sequence[Any]):
        """Grow the tree on an (n_samples, n_features) matrix and target."""
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        prepared = self._prepare_target(target)
        if matrix.shape[0] != prepared.shape[0]:
            raise ValueError("features and target disagree on sample count")
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        self._root = self._build(matrix, prepared, depth=0)
        return self

    def predict(self, features: np.ndarray) -> list[Any]:
        """Predict one value per row (1-D input treated as a single row).

        Batched: rows are routed through the tree as index frontiers —
        one vectorized threshold comparison per node over the rows that
        reach it — instead of one Python descent per row. Comparison
        semantics (``<=`` goes left, NaN goes right) and outputs are
        identical to :meth:`_predict_row`.
        """
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        out = np.empty(matrix.shape[0], dtype=object)
        frontier: list[tuple[_Node | None, np.ndarray]] = [
            (self._root, np.arange(matrix.shape[0], dtype=np.intp))
        ]
        while frontier:
            node, indices = frontier.pop()
            if indices.size == 0:
                continue
            if node is None or node.is_leaf():
                prediction = None if node is None else node.prediction
                if isinstance(prediction, (list, tuple, np.ndarray)):
                    for i in indices.tolist():
                        out[i] = prediction
                else:
                    out[indices] = prediction
                continue
            left = matrix[indices, node.feature] <= node.threshold
            frontier.append((node.left, indices[left]))
            frontier.append((node.right, indices[~left]))
        return out.tolist()

    def _predict_row(self, row: np.ndarray) -> Any:
        node = self._root
        while node is not None and not node.is_leaf():
            if row[node.feature] <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node.prediction if node is not None else None

    def depth(self) -> int:
        """Actual depth of the fitted tree (leaf-only tree has depth 0)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf():
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    # -- construction ----------------------------------------------------
    def _build(self, matrix: np.ndarray, target: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=self._leaf_prediction(target))
        if (
            depth >= self.max_depth
            or len(target) < self.min_samples_split
            or self._impurity(target) == 0.0
        ):
            return node
        split = self._best_split(matrix, target)
        if split is None:
            return node
        feature, threshold, left_mask = split
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(matrix[left_mask], target[left_mask], depth + 1)
        node.right = self._build(matrix[~left_mask], target[~left_mask], depth + 1)
        return node

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(
        self, matrix: np.ndarray, target: np.ndarray
    ) -> tuple[int, float, np.ndarray] | None:
        parent_impurity = self._impurity(target)
        n = len(target)
        best_gain = -1.0
        best: tuple[int, float, np.ndarray] | None = None
        for feature in self._candidate_features(matrix.shape[1]):
            column = matrix[:, feature]
            values = np.unique(column[~np.isnan(column)])
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            if len(thresholds) > _MAX_SPLIT_CANDIDATES:
                picks = np.linspace(
                    0, len(thresholds) - 1, _MAX_SPLIT_CANDIDATES
                ).astype(int)
                thresholds = thresholds[picks]
            for threshold in thresholds:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                if (
                    n_left < self.min_samples_leaf
                    or n - n_left < self.min_samples_leaf
                ):
                    continue
                impurity_left = self._impurity(target[left_mask])
                impurity_right = self._impurity(target[~left_mask])
                child = (n_left * impurity_left + (n - n_left) * impurity_right) / n
                gain = parent_impurity - child
                # Zero-gain splits are accepted (CART behaviour): they can
                # unlock informative splits deeper down, e.g. XOR targets.
                if gain > best_gain + 1e-15:
                    best_gain = gain
                    best = (int(feature), float(threshold), left_mask)
        if best_gain < -1e-12:
            return None
        return best


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classifier with Gini impurity."""

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.classes_: list[Any] = []

    def _prepare_target(self, target: Sequence[Any]) -> np.ndarray:
        labels = list(target)
        self.classes_ = sorted(set(labels), key=str)
        index = {label: i for i, label in enumerate(self.classes_)}
        return np.array([index[label] for label in labels], dtype=int)

    def _leaf_prediction(self, target: np.ndarray) -> Any:
        counts = Counter(int(code) for code in target)
        code, _ = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
        return self.classes_[code]

    def _impurity(self, target: np.ndarray) -> float:
        if len(target) == 0:
            return 0.0
        _, counts = np.unique(target, return_counts=True)
        proportions = counts / len(target)
        return float(1.0 - np.sum(proportions**2))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Degenerate probabilities from hard leaf predictions."""
        predictions = self.predict(features)
        index = {label: i for i, label in enumerate(self.classes_)}
        proba = np.zeros((len(predictions), len(self.classes_)))
        for row, label in enumerate(predictions):
            proba[row, index[label]] = 1.0
        return proba


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regressor with variance impurity and mean-leaf prediction."""

    def _prepare_target(self, target: Sequence[Any]) -> np.ndarray:
        return np.asarray(list(target), dtype=float)

    def _leaf_prediction(self, target: np.ndarray) -> float:
        return float(np.mean(target))

    def _impurity(self, target: np.ndarray) -> float:
        if len(target) == 0:
            return 0.0
        return float(np.var(target))

"""Linear models: least-squares regression and logistic classification."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


class LinearRegression:
    """Ordinary least squares via the pseudo-inverse (stable on rank-deficient X)."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray, target: Sequence[float]) -> "LinearRegression":
        matrix = np.asarray(features, dtype=float)
        y = np.asarray(list(target), dtype=float)
        if matrix.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if matrix.shape[0] != y.shape[0]:
            raise ValueError("features and target disagree on sample count")
        design = (
            np.column_stack([np.ones(matrix.shape[0]), matrix])
            if self.fit_intercept
            else matrix
        )
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, features: np.ndarray) -> list[float]:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        return [float(v) for v in matrix @ self.coef_ + self.intercept_]


class LogisticRegression:
    """Multinomial logistic regression fitted with batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iterations: int = 300,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.seed = seed
        self.classes_: list[Any] = []
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, features: np.ndarray, target: Sequence[Any]) -> "LogisticRegression":
        matrix = np.asarray(features, dtype=float)
        labels = list(target)
        if matrix.shape[0] != len(labels):
            raise ValueError("features and target disagree on sample count")
        self.classes_ = sorted(set(labels), key=str)
        index = {label: i for i, label in enumerate(self.classes_)}
        codes = np.array([index[label] for label in labels])

        self._mean = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        standardized = (matrix - self._mean) / self._scale
        design = np.column_stack([np.ones(standardized.shape[0]), standardized])

        n_classes = len(self.classes_)
        onehot = np.zeros((len(codes), n_classes))
        onehot[np.arange(len(codes)), codes] = 1.0
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(0.0, 0.01, size=(design.shape[1], n_classes))
        for _ in range(self.n_iterations):
            probabilities = self._softmax(design @ weights)
            gradient = design.T @ (probabilities - onehot) / len(codes)
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
        self._weights = weights
        return self

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        standardized = (matrix - self._mean) / self._scale
        design = np.column_stack([np.ones(standardized.shape[0]), standardized])
        return self._softmax(design @ self._weights)

    def predict(self, features: np.ndarray) -> list[Any]:
        probabilities = self.predict_proba(features)
        return [self.classes_[int(i)] for i in probabilities.argmax(axis=1)]

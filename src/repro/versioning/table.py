"""Delta-Lake-style versioned tables.

A :class:`DeltaTable` is a directory holding immutable data snapshots plus
an append-only transaction log (``_delta_log/<version>.json``). Every
write produces a new version; history is never rewritten; any version can
be read back ("time travel") and ``restore`` simply commits an old
snapshot as the newest version — matching the semantics the paper relies
on for dataset version control (§5).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..dataframe import DataFrame, read_csv, write_csv

LOG_DIR = "_delta_log"
DATA_DIR = "data"


class VersionNotFoundError(KeyError):
    """Requested version does not exist in the transaction log."""


@dataclass(frozen=True)
class Commit:
    """One entry of the transaction log."""

    version: int
    timestamp: float
    operation: str
    data_file: str
    num_rows: int
    num_columns: int
    metadata: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "timestamp": self.timestamp,
            "operation": self.operation,
            "data_file": self.data_file,
            "num_rows": self.num_rows,
            "num_columns": self.num_columns,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Commit":
        return cls(
            version=int(data["version"]),
            timestamp=float(data["timestamp"]),
            operation=str(data["operation"]),
            data_file=str(data["data_file"]),
            num_rows=int(data["num_rows"]),
            num_columns=int(data["num_columns"]),
            metadata=dict(data.get("metadata", {})),
        )


class DeltaTable:
    """Append-only versioned table rooted at a directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        (self.root / LOG_DIR).mkdir(parents=True, exist_ok=True)
        (self.root / DATA_DIR).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @classmethod
    def exists(cls, root: str | Path) -> bool:
        log_dir = Path(root) / LOG_DIR
        return log_dir.exists() and any(log_dir.glob("*.json"))

    def history(self) -> list[Commit]:
        """All commits in version order."""
        commits = []
        for path in sorted((self.root / LOG_DIR).glob("*.json")):
            commits.append(
                Commit.from_dict(json.loads(path.read_text(encoding="utf-8")))
            )
        commits.sort(key=lambda commit: commit.version)
        return commits

    def latest_version(self) -> int | None:
        commits = self.history()
        return commits[-1].version if commits else None

    def commit_for(self, version: int) -> Commit:
        for commit in self.history():
            if commit.version == version:
                return commit
        raise VersionNotFoundError(f"version {version} not found")

    # ------------------------------------------------------------------
    def write(
        self,
        frame: DataFrame,
        operation: str = "write",
        metadata: dict[str, Any] | None = None,
    ) -> int:
        """Append ``frame`` as a new version; returns the version number."""
        latest = self.latest_version()
        version = 0 if latest is None else latest + 1
        data_file = f"{DATA_DIR}/part-{version:05d}.csv"
        write_csv(frame, self.root / data_file)
        commit = Commit(
            version=version,
            timestamp=time.time(),
            operation=operation,
            data_file=data_file,
            num_rows=frame.num_rows,
            num_columns=frame.num_columns,
            metadata=dict(metadata or {}),
        )
        log_path = self.root / LOG_DIR / f"{version:020d}.json"
        log_path.write_text(json.dumps(commit.to_dict()), encoding="utf-8")
        return version

    def read(self, version: int | None = None) -> DataFrame:
        """Read a version (default: latest) back as a DataFrame."""
        if version is None:
            version = self.latest_version()
            if version is None:
                raise VersionNotFoundError("table has no committed versions")
        commit = self.commit_for(version)
        return read_csv(self.root / commit.data_file)

    def restore(self, version: int) -> int:
        """Re-commit an old snapshot as the newest version (rollback)."""
        frame = self.read(version)
        return self.write(
            frame, operation="restore", metadata={"restored_from": version}
        )

    def versions(self) -> list[int]:
        return [commit.version for commit in self.history()]

    def __len__(self) -> int:
        return len(self.history())

"""Dataset version control (Delta Lake substitute)."""

from .table import Commit, DeltaTable, VersionNotFoundError

__all__ = ["Commit", "DeltaTable", "VersionNotFoundError"]

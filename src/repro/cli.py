"""Command-line interface for the DataLens pipeline.

Usage (after ``pip install -e .``)::

    python -m repro profile data.csv
    python -m repro detect data.csv --tools iqr sd mv_detector
    python -m repro repair data.csv --tools union_broad --repairer ml_imputer \
        --output repaired.csv
    python -m repro rules data.csv --max-lhs 1 --algorithm approximate
    python -m repro sort data.csv --by city price --descending \
        --spill-budget 64m --output sorted.csv
    python -m repro datasheet replay sheet.json data.csv --output fixed.csv
    python -m repro datasets                # list preloaded datasets
    python -m repro serve ./workspace --port 8080   # async REST server
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core import DataSheet, make_detector, make_repairer
from .dataframe import (
    SpillStore,
    parse_byte_size,
    read_csv,
    read_csv_chunked,
    write_csv,
)
from .detection import DetectionContext, merge_results
from .fd import approximate_fds, discover_fds, discover_fds_hyfd
from .ingestion import PRELOADED, load_clean
from .profiling import profile


def _load_frame(args: argparse.Namespace, attr: str = "data"):
    source = Path(getattr(args, attr))
    if not source.exists() and source.stem in PRELOADED:
        return load_clean(source.stem)
    chunk_size = getattr(args, "chunk_size", None)
    spill_budget = getattr(args, "spill_budget", None)
    spill_dir = getattr(args, "spill_dir", None)
    if chunk_size is None and spill_budget is None and spill_dir is None:
        return read_csv(source)
    spill = None  # environment default (DATALENS_SPILL_BUDGET)
    if spill_budget is not None or spill_dir is not None:
        spill = SpillStore(
            budget_bytes=(
                parse_byte_size(spill_budget, "--spill-budget")
                if spill_budget is not None
                else None
            ),
            directory=spill_dir,
        )
    return read_csv_chunked(source, chunk_size=chunk_size, spill=spill)


def _add_scale_options(command: argparse.ArgumentParser) -> None:
    """Chunking/spilling flags shared by the frame-loading commands."""
    command.add_argument(
        "--chunk-size",
        type=int,
        help="stream the CSV into shards of this many rows",
    )
    command.add_argument(
        "--spill-budget",
        help="spill shards to disk, keeping at most this many bytes "
        "resident (k/m/g suffixes allowed); implies chunked loading",
    )
    command.add_argument(
        "--spill-dir", help="directory for spill files (default: temp dir)"
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    frame = _load_frame(args)
    report = profile(frame)
    if args.json:
        print(report.to_json())
        return 0
    overview = report.overview
    print(f"rows={overview['rows']} columns={overview['columns']} "
          f"missing={overview['missing_cells']} "
          f"({overview['missing_fraction']:.1%}) "
          f"duplicates={overview['duplicate_rows']}")
    for column in report.columns:
        stats = column["statistics"]
        head = (
            f"mean={stats.get('mean', 0):.4g} std={stats.get('std', 0):.4g}"
            if column["is_numeric"]
            else f"distinct={stats.get('distinct', 0)} "
                 f"mode={stats.get('mode', '')!r}"
        )
        print(f"  {column['name']:24s} {column['dtype']:7s} "
              f"missing={column['missing_fraction']:.1%} {head}")
    for alert in report.alerts:
        print(f"  ALERT: {alert.message}")
    return 0


def _run_detection(frame, tools: list[str]):
    context = DetectionContext()
    results = [make_detector(name).detect(frame, context) for name in tools]
    return results, merge_results(results)


def _cmd_detect(args: argparse.Namespace) -> int:
    frame = _load_frame(args)
    results, cells = _run_detection(frame, args.tools)
    for result in results:
        print(f"{result.tool:18s} {len(result.cells):6d} cells "
              f"in {result.runtime_seconds:.3f}s")
    print(f"{'consolidated':18s} {len(cells):6d} cells")
    if args.output:
        payload = [{"row": row, "column": column} for row, column in sorted(cells)]
        Path(args.output).write_text(json.dumps(payload), encoding="utf-8")
        print(f"cells written to {args.output}")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    frame = _load_frame(args)
    _, cells = _run_detection(frame, args.tools)
    repairer = make_repairer(args.repairer)
    result = repairer.repair(frame, cells)
    repaired = result.apply_to(frame)
    print(f"detected {len(cells)} cells; repaired {len(result.repairs)} "
          f"with {args.repairer}")
    if args.output:
        write_csv(repaired, args.output)
        print(f"repaired table written to {args.output}")
    return 0


def _cmd_refcheck(args: argparse.Namespace) -> int:
    from .detection import ReferentialIntegrityDetector

    child = _load_frame(args)
    parent = _load_frame(args, attr="parent")
    detector = ReferentialIntegrityDetector(
        on=args.on,
        parent=parent,
        parent_on=args.parent_on,
        strategy=args.strategy,
    )
    result = detector.detect(child, DetectionContext())
    meta = result.metadata
    print(f"checked {meta['checked_rows']} of {child.num_rows} rows "
          f"against {meta['parent_rows']} parent rows on {meta['keys']}: "
          f"{meta['violating_rows']} violating row(s), "
          f"{len(result.cells)} cells in {result.runtime_seconds:.3f}s")
    if args.output:
        payload = [{"row": row, "column": column}
                   for row, column in sorted(result.cells)]
        Path(args.output).write_text(json.dumps(payload), encoding="utf-8")
        print(f"cells written to {args.output}")
    return 1 if meta["violating_rows"] and args.strict else 0


def _cmd_sort(args: argparse.Namespace) -> int:
    """Sort a CSV by one or more key columns.

    With ``--spill-budget`` (or ``DATALENS_SORT_STRATEGY=external``) the
    sort runs out-of-core: spilled runs are merged shard-by-shard and the
    result stays spilled until written out, so peak resident bytes stay
    within the spill budget.
    """
    from .dataframe import sort_by

    frame = _load_frame(args)
    result = sort_by(
        frame, args.by, descending=args.descending, strategy=args.strategy
    )
    print(f"sorted {result.num_rows} rows by {args.by} "
          f"({'descending' if args.descending else 'ascending'})")
    if args.output:
        write_csv(result, args.output)
        print(f"sorted table written to {args.output}")
    else:
        preview = result.head(10)
        print(",".join(preview.column_names))
        for row in preview.to_records():
            print(",".join("" if row[name] is None else str(row[name])
                           for name in preview.column_names))
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    frame = _load_frame(args)
    if args.algorithm == "tane":
        rules = discover_fds(frame, max_lhs_size=args.max_lhs)
    elif args.algorithm == "hyfd":
        rules = discover_fds_hyfd(frame, max_lhs_size=args.max_lhs)
    else:
        rules = approximate_fds(
            frame, tolerance=args.tolerance, max_lhs_size=args.max_lhs
        )
    for rule in rules:
        print(rule)
    print(f"({len(rules)} rules, algorithm={args.algorithm})")
    return 0


def _cmd_datasheet(args: argparse.Namespace) -> int:
    if args.action != "replay":
        print("only 'replay' is supported", file=sys.stderr)
        return 2
    sheet = DataSheet.load(args.sheet)
    frame = _load_frame(args)
    repaired = sheet.replay(frame)
    print(f"replayed {len(sheet.detection_tools)} detector(s) + "
          f"{len(sheet.repair_tools)} repairer(s) from {args.sheet}")
    if args.output:
        write_csv(repaired, args.output)
        print(f"replayed table written to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the async REST server over a workspace directory."""
    from .api import create_app, serve
    from .core import DataLens

    lens = DataLens(
        args.workspace,
        seed=args.seed,
        chunk_size=args.chunk_size,
        spill_budget=(
            parse_byte_size(args.spill_budget, "--spill-budget")
            if args.spill_budget is not None
            else None
        ),
        spill_dir=args.spill_dir,
    )
    router = create_app(lens, workers=args.workers)
    server = serve(
        router, host=args.host, port=args.port, max_workers=args.workers,
        request_timeout=args.request_timeout,
    )
    host, port = server.server_address
    # flush: with --port 0 this line is how supervisors learn the bound
    # port, and stdout is block-buffered when piped.
    print(f"serving DataLens workspace {args.workspace!r} "
          f"on http://{host}:{port} "
          f"({router.job_queue.workers} workers)", flush=True)
    if args.smoke_test:
        # Boot, answer one in-process health check, and exit — used by
        # tests and CI to validate the command without a long-running
        # process.
        import urllib.request

        with urllib.request.urlopen(
            f"http://{host}:{port}/health", timeout=10
        ) as response:
            ok = response.status == 200
        server.shutdown(drain_timeout=args.drain_timeout)
        router.job_queue.shutdown(drain_timeout=args.drain_timeout)
        print("smoke test passed" if ok else "smoke test failed")
        return 0 if ok else 1
    try:
        import threading

        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown(drain_timeout=args.drain_timeout)
        router.job_queue.shutdown(drain_timeout=args.drain_timeout)
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name in sorted(PRELOADED):
        frame = load_clean(name)
        print(f"{name:10s} {frame.num_rows:5d} rows x "
              f"{frame.num_columns} columns")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DataLens data-quality pipeline CLI"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    profile_cmd = commands.add_parser("profile", help="profile a CSV")
    profile_cmd.add_argument("data")
    profile_cmd.add_argument("--json", action="store_true")
    _add_scale_options(profile_cmd)
    profile_cmd.set_defaults(func=_cmd_profile)

    detect_cmd = commands.add_parser("detect", help="run detection tools")
    detect_cmd.add_argument("data")
    detect_cmd.add_argument("--tools", nargs="+", default=["iqr", "mv_detector"])
    detect_cmd.add_argument("--output")
    _add_scale_options(detect_cmd)
    detect_cmd.set_defaults(func=_cmd_detect)

    repair_cmd = commands.add_parser("repair", help="detect then repair")
    repair_cmd.add_argument("data")
    repair_cmd.add_argument("--tools", nargs="+", default=["union_broad"])
    repair_cmd.add_argument("--repairer", default="ml_imputer")
    repair_cmd.add_argument("--output")
    _add_scale_options(repair_cmd)
    repair_cmd.set_defaults(func=_cmd_repair)

    refcheck_cmd = commands.add_parser(
        "refcheck", help="cross-table referential-integrity check"
    )
    refcheck_cmd.add_argument("data", help="child CSV (holds the foreign key)")
    refcheck_cmd.add_argument("parent", help="parent CSV (holds the referenced key)")
    refcheck_cmd.add_argument("--on", nargs="+", required=True,
                              help="key column(s) in the child table")
    refcheck_cmd.add_argument("--parent-on", nargs="+",
                              help="key column(s) in the parent table "
                              "(default: same names as --on)")
    refcheck_cmd.add_argument(
        "--strategy",
        choices=("auto", "memory", "partitioned", "merge", "sortmerge"),
        help="force a join strategy (default: planner decides)",
    )
    refcheck_cmd.add_argument("--strict", action="store_true",
                              help="exit 1 when violations are found")
    refcheck_cmd.add_argument("--output", help="write violating cells as JSON")
    _add_scale_options(refcheck_cmd)
    refcheck_cmd.set_defaults(func=_cmd_refcheck)

    sort_cmd = commands.add_parser(
        "sort", help="sort a CSV by key columns (spill-aware)"
    )
    sort_cmd.add_argument("data")
    sort_cmd.add_argument("--by", nargs="+", required=True,
                          help="key column(s), highest priority first")
    sort_cmd.add_argument("--descending", action="store_true")
    sort_cmd.add_argument(
        "--strategy", choices=("auto", "memory", "external"),
        help="force a sort strategy (default: DATALENS_SORT_STRATEGY, "
        "else external iff the input is spilled)",
    )
    sort_cmd.add_argument("--output", help="write the sorted table as CSV")
    _add_scale_options(sort_cmd)
    sort_cmd.set_defaults(func=_cmd_sort)

    rules_cmd = commands.add_parser("rules", help="discover FD rules")
    rules_cmd.add_argument("data")
    rules_cmd.add_argument(
        "--algorithm", choices=("tane", "hyfd", "approximate"), default="tane"
    )
    rules_cmd.add_argument("--max-lhs", type=int, default=2)
    rules_cmd.add_argument("--tolerance", type=float, default=0.1)
    rules_cmd.set_defaults(func=_cmd_rules)

    sheet_cmd = commands.add_parser("datasheet", help="replay a DataSheet")
    sheet_cmd.add_argument("action", choices=("replay",))
    sheet_cmd.add_argument("sheet")
    sheet_cmd.add_argument("data")
    sheet_cmd.add_argument("--output")
    sheet_cmd.set_defaults(func=_cmd_datasheet)

    serve_cmd = commands.add_parser(
        "serve", help="run the async REST server over a workspace"
    )
    serve_cmd.add_argument("workspace", help="workspace directory")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8080,
                           help="TCP port (0 picks a free one)")
    serve_cmd.add_argument(
        "--workers", type=int,
        help="thread-pool size for handlers and jobs "
        "(default: DATALENS_SERVER_WORKERS or 4)",
    )
    serve_cmd.add_argument("--seed", type=int, default=0)
    serve_cmd.add_argument(
        "--request-timeout", type=float, default=None,
        help="per-request deadline in seconds; exceeded requests get "
        "503 + Retry-After (default: DATALENS_REQUEST_TIMEOUT or none)",
    )
    serve_cmd.add_argument(
        "--drain-timeout", type=float, default=None,
        help="seconds to wait for in-flight requests and queued jobs "
        "on shutdown (default: hard stop)",
    )
    serve_cmd.add_argument(
        "--smoke-test", action="store_true",
        help="boot, self-check /health, and exit",
    )
    _add_scale_options(serve_cmd)
    serve_cmd.set_defaults(func=_cmd_serve)

    datasets_cmd = commands.add_parser("datasets", help="list preloaded data")
    datasets_cmd.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

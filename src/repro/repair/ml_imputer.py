"""ML-based imputation — decision trees for numerics, k-NN for categoricals.

Exactly the paper's split (§3): "the system employs Decision Tree
algorithms for numerical columns and k-nearest Neighbors (k-NN) for
categorical columns". Each corrupted column gets its own model trained on
the rows whose cell in that column is trusted, using every other column
(encoded numerically) as features.

The engine is batched end to end: every column is encoded **once** (the
historical path re-encoded all features for every target, an
O(columns²) tax), per-target feature matrices are assembled by stacking
those shared encodings, and predictions run through the vectorized
``predict`` paths of :class:`~repro.ml.tree._BaseDecisionTree` and
:class:`~repro.ml.knn._BaseKNN` — no per-row Python on the proposal hot
path. ``n_jobs`` fits/predicts the per-column models on a thread pool
(the PR-3 executor pattern; numpy releases the GIL in the distance and
split kernels), with results merged deterministically per column —
outputs are bit-identical to the serial path.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np

from ..dataframe import Cell, DataFrame
from ..ml import DecisionTreeRegressor, FrameEncoder, KNeighborsClassifier
from ..profiling.report import resolve_jobs
from .base import Repairer, group_cells_by_column, mask_cells


class MLImputer(Repairer):
    """Per-column model-based imputation over masked detected cells."""

    name = "ml_imputer"

    def __init__(
        self,
        tree_depth: int = 8,
        n_neighbors: int = 5,
        min_train_rows: int = 10,
        seed: int = 0,
        n_jobs: int | None = None,
    ) -> None:
        super().__init__(
            tree_depth=tree_depth,
            n_neighbors=n_neighbors,
            min_train_rows=min_train_rows,
            seed=seed,
            n_jobs=n_jobs,
        )
        self.tree_depth = tree_depth
        self.n_neighbors = n_neighbors
        self.min_train_rows = min_train_rows
        self.seed = seed
        self.n_jobs = n_jobs

    def _repair(
        self, frame: DataFrame, cells: set[Cell], store: Any = None
    ) -> tuple:
        masked = mask_cells(frame, cells)
        grouped = group_cells_by_column(cells)
        names = frame.column_names
        tasks = [
            (column_name, rows)
            for column_name, rows in grouped.items()
            if len(names) > 1
        ]
        # One encoding per column, shared by every target's feature matrix.
        encoded: dict[str, np.ndarray] = {}
        if tasks:
            for name in names:
                encoded[name] = FrameEncoder([name]).fit_transform(masked)

        def impute_column(task: tuple[str, list[int]]):
            column_name, rows = task
            target_column = masked.column(column_name)
            train_rows = np.flatnonzero(~target_column.mask()).tolist()
            if len(train_rows) < self.min_train_rows:
                fallback = self._fallback(target_column)
                return column_name, rows, [fallback] * len(rows), "fallback_constant"
            feature_names = [n for n in names if n != column_name]
            matrix = np.column_stack([encoded[n] for n in feature_names])
            target_list = target_column.values()
            target_values = [target_list[row] for row in train_rows]
            if target_column.is_numeric():
                model: Any = DecisionTreeRegressor(
                    max_depth=self.tree_depth, seed=self.seed
                )
                model_name = "decision_tree"
                train_targets: list[Any] = [float(v) for v in target_values]
            else:
                model = KNeighborsClassifier(n_neighbors=self.n_neighbors)
                model_name = "knn"
                train_targets = target_values
            model.fit(matrix[train_rows], train_targets)
            predictions = model.predict(matrix[rows])
            column_values: list[Any] = []
            for prediction in predictions:
                value = prediction
                if target_column.dtype == "int" and value is not None:
                    value = int(round(float(value)))
                column_values.append(value)
            return column_name, rows, column_values, model_name

        workers = resolve_jobs(self.n_jobs)
        if workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                outcomes = list(executor.map(impute_column, tasks))
        else:
            outcomes = [impute_column(task) for task in tasks]

        repairs: dict[Cell, Any] = {}
        patches: dict[str, tuple[list[int], list[Any]]] = {}
        models_used: dict[str, str] = {}
        for column_name, rows, column_values, model_name in outcomes:
            models_used[column_name] = model_name
            patches[column_name] = (rows, column_values)
            for row, value in zip(rows, column_values):
                repairs[(row, column_name)] = value
        return repairs, {"models": models_used}, patches

    @staticmethod
    def _fallback(column: Any) -> Any:
        mask = np.asarray(column.mask())
        valid = ~mask
        count = int(valid.sum())
        if count == 0:
            return 0.0 if column.is_numeric() else "Dummy"
        if column.is_numeric():
            data = np.asarray(column.values_array())[valid].astype(float)
            # cumsum reproduces the historical left-to-right Python sum
            # bit-for-bit (np.sum's pairwise accumulation does not).
            total = np.cumsum(np.concatenate(([0.0], data)))[-1]
            return float(total / count)
        return column.value_counts().most_common(1)[0][0]

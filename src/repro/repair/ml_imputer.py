"""ML-based imputation — decision trees for numerics, k-NN for categoricals.

Exactly the paper's split (§3): "the system employs Decision Tree
algorithms for numerical columns and k-nearest Neighbors (k-NN) for
categorical columns". Each corrupted column gets its own model trained on
the rows whose cell in that column is trusted, using every other column
(encoded numerically) as features.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Cell, DataFrame
from ..ml import DecisionTreeRegressor, FrameEncoder, KNeighborsClassifier
from .base import Repairer, group_cells_by_column, mask_cells


class MLImputer(Repairer):
    """Per-column model-based imputation over masked detected cells."""

    name = "ml_imputer"

    def __init__(
        self,
        tree_depth: int = 8,
        n_neighbors: int = 5,
        min_train_rows: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__(
            tree_depth=tree_depth,
            n_neighbors=n_neighbors,
            min_train_rows=min_train_rows,
            seed=seed,
        )
        self.tree_depth = tree_depth
        self.n_neighbors = n_neighbors
        self.min_train_rows = min_train_rows
        self.seed = seed

    def _repair(self, frame: DataFrame, cells: set[Cell]) -> tuple:
        masked = mask_cells(frame, cells)
        repairs: dict[Cell, Any] = {}
        patches: dict[str, tuple[list[int], list[Any]]] = {}
        models_used: dict[str, str] = {}
        for column_name, rows in group_cells_by_column(cells).items():
            target_column = masked.column(column_name)
            feature_names = [n for n in frame.column_names if n != column_name]
            if not feature_names:
                continue
            encoder = FrameEncoder(feature_names)
            matrix = encoder.fit_transform(masked)
            train_rows = np.flatnonzero(~target_column.mask()).tolist()
            if len(train_rows) < self.min_train_rows:
                models_used[column_name] = "fallback_constant"
                fallback = self._fallback(target_column)
                patches[column_name] = (rows, [fallback] * len(rows))
                for row in rows:
                    repairs[(row, column_name)] = fallback
                continue
            target_list = target_column.values()
            target_values = [target_list[row] for row in train_rows]
            if target_column.is_numeric():
                model: Any = DecisionTreeRegressor(
                    max_depth=self.tree_depth, seed=self.seed
                )
                models_used[column_name] = "decision_tree"
                train_targets = [float(v) for v in target_values]
            else:
                model = KNeighborsClassifier(n_neighbors=self.n_neighbors)
                models_used[column_name] = "knn"
                train_targets = target_values
            model.fit(matrix[train_rows], train_targets)
            predictions = model.predict(matrix[rows])
            column_values: list[Any] = []
            for row, prediction in zip(rows, predictions):
                value = prediction
                if target_column.dtype == "int" and value is not None:
                    value = int(round(float(value)))
                column_values.append(value)
                repairs[(row, column_name)] = value
            patches[column_name] = (rows, column_values)
        return repairs, {"models": models_used}, patches

    @staticmethod
    def _fallback(column: Any) -> Any:
        values = column.non_missing()
        if not values:
            return 0.0 if column.is_numeric() else "Dummy"
        if column.is_numeric():
            return float(sum(float(v) for v in values) / len(values))
        return column.value_counts().most_common(1)[0][0]

"""Automated error repair tools (§3 of the paper)."""

from .base import (
    RepairResult,
    Repairer,
    apply_patches,
    group_cells_by_column,
    mask_cells,
)
from .holoclean_repair import HoloCleanRepairer
from .ml_imputer import MLImputer
from .standard import DUMMY_VALUE, StandardImputer

__all__ = [
    "DUMMY_VALUE",
    "HoloCleanRepairer",
    "MLImputer",
    "RepairResult",
    "Repairer",
    "StandardImputer",
    "apply_patches",
    "group_cells_by_column",
    "mask_cells",
]

"""Standard imputation: column mean for numerics, "Dummy" for categoricals.

This is the paper's baseline repair strategy (§3, "Automated Data Repair"):
"the arithmetic mean for numerical columns and a predefined 'Dummy' value
for categorical columns". Median/mode variants are provided for the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Cell, DataFrame
from .base import Repairer, group_cells_by_column, mask_cells

DUMMY_VALUE = "Dummy"


class StandardImputer(Repairer):
    """Mean / median numeric imputation and constant / mode categorical."""

    name = "standard_imputer"

    def __init__(
        self,
        numeric_strategy: str = "mean",
        categorical_strategy: str = "dummy",
        dummy_value: str = DUMMY_VALUE,
    ) -> None:
        if numeric_strategy not in ("mean", "median"):
            raise ValueError("numeric_strategy must be 'mean' or 'median'")
        if categorical_strategy not in ("dummy", "mode"):
            raise ValueError("categorical_strategy must be 'dummy' or 'mode'")
        super().__init__(
            numeric_strategy=numeric_strategy,
            categorical_strategy=categorical_strategy,
            dummy_value=dummy_value,
        )
        self.numeric_strategy = numeric_strategy
        self.categorical_strategy = categorical_strategy
        self.dummy_value = dummy_value

    def _repair(
        self, frame: DataFrame, cells: set[Cell], store: Any = None
    ) -> tuple:
        masked = mask_cells(frame, cells)
        repairs: dict[Cell, Any] = {}
        patches: dict[str, tuple[list[int], list[Any]]] = {}
        fills: dict[str, Any] = {}
        for column_name, rows in group_cells_by_column(cells).items():
            column = masked.column(column_name)
            if column.is_numeric():
                valid = ~column.mask()
                if valid.any():
                    numbers = column.values_array()[valid].astype(float)
                    fill = (
                        float(np.mean(numbers))
                        if self.numeric_strategy == "mean"
                        else float(np.median(numbers))
                    )
                else:
                    fill = 0.0
            else:
                values = column.non_missing()
                if self.categorical_strategy == "dummy" or not values:
                    fill = self.dummy_value
                else:
                    fill = column.value_counts().most_common(1)[0][0]
            fills[column_name] = fill
            patches[column_name] = (rows, [fill] * len(rows))
            for row in rows:
                repairs[(row, column_name)] = fill
        return (
            repairs,
            {"fill_values": {k: str(v) for k, v in fills.items()}},
            patches,
        )

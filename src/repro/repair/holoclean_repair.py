"""HoloClean-style probabilistic repair via co-occurrence inference.

Reuses the detector's co-occurrence model: for every detected cell the
candidate value with the highest smoothed posterior given the row's other
attributes is chosen. Numeric columns are repaired with the mean of the
winning quantile bin.

The proposal stage is an array program over the integer token codes
emitted by :meth:`~repro.detection.holoclean.HoloCleanDetector.tokenize`:
one :meth:`~repro.detection.holoclean.CooccurrenceModel.score_matrix`
call per repaired column yields the ``(n_cells, domain)`` log-posterior
matrix, and a row-wise ``argmax`` (over candidates in str order, first
maximum wins) picks each repair — bit-identical to the historical
per-candidate ``log_score`` loop, including tie-breaking. With an
artifact ``store``, tokens and the fitted model are content-addressed
(``repair:tokens`` / ``repair:cooccurrence``), so repairing cells that
are already null reuses the model the detector just fitted.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..dataframe import Cell, DataFrame
from ..detection.holoclean import HoloCleanDetector, TokenColumn
from .base import Repairer, group_cells_by_column, mask_cells


class HoloCleanRepairer(Repairer):
    """Argmax-posterior repair over the co-occurrence model."""

    name = "holoclean_repair"

    def __init__(self, n_bins: int = 12, alpha: float = 1.0) -> None:
        super().__init__(n_bins=n_bins, alpha=alpha)
        self.n_bins = n_bins
        self.alpha = alpha

    def _repair(
        self, frame: DataFrame, cells: set[Cell], store: Any = None
    ) -> tuple:
        masked = mask_cells(frame, cells)
        tokenizer = HoloCleanDetector(n_bins=self.n_bins, alpha=self.alpha)
        tokens = tokenizer.tokenize(masked, store=store)
        model = tokenizer.fitted_model(masked, tokens, store=store)
        bin_values = self._bin_representatives(masked, tokens)
        repairs: dict[Cell, Any] = {}
        patches: dict[str, tuple[list[int], list[Any]]] = {}
        domain_sizes: dict[str, int] = {}
        for column_name, rows in group_cells_by_column(cells).items():
            column = masked.column(column_name)
            tcol = tokens[column_name]
            n_domain = len(tcol.tokens)
            domain_sizes[column_name] = n_domain
            if n_domain == 0:
                value = self._fallback(column)
                column_values: list[Any] = [value] * len(rows)
            else:
                order = sorted(
                    range(n_domain), key=lambda c: str(tcol.tokens[c])
                )
                best = self._argmax_scores(model, column_name, rows, order)
                numeric = column.is_numeric()
                int_dtype = column.dtype == "int"
                fallback: Any = None
                have_fallback = False
                column_values = []
                for pick in best:
                    token = tcol.tokens[order[pick]]
                    if not numeric:
                        column_values.append(token)
                        continue
                    value = bin_values.get((column_name, token))
                    if value is None:
                        if not have_fallback:
                            fallback = self._fallback(column)
                            have_fallback = True
                        column_values.append(fallback)
                    elif int_dtype:
                        column_values.append(int(round(value)))
                    else:
                        column_values.append(value)
            for row, value in zip(rows, column_values):
                repairs[(row, column_name)] = value
            patches[column_name] = (rows, column_values)
        return repairs, {"domain_sizes": domain_sizes}, patches

    #: Element budget for one (rows, domain) score-matrix block; blocks
    #: bound peak memory on high-cardinality domains (the score matrix
    #: plus its joint/count/log temporaries all scale with rows x domain).
    _SCORE_BLOCK_ELEMENTS = 2_000_000

    def _argmax_scores(
        self, model: Any, column_name: str, rows: list[int], order: list[int]
    ) -> list[int]:
        """Row-blocked ``argmax`` over the full-domain score matrix.

        Each block computes its ``(block, domain)`` log-posterior matrix
        and reduces it to per-row argmax positions immediately, so peak
        memory stays bounded no matter how large the domain is. The
        per-row computation (and the first-maximum tie-break over the
        str-ordered candidates) is unchanged.
        """
        candidate_codes = np.asarray(order, dtype=np.int64)
        block = max(1, self._SCORE_BLOCK_ELEMENTS // max(1, len(order)))
        best: list[int] = []
        for start in range(0, len(rows), block):
            chunk = np.asarray(rows[start : start + block], dtype=np.intp)
            scores = model.score_matrix(column_name, chunk, candidate_codes)
            best.extend(np.argmax(scores, axis=1).tolist())
        return best

    # ------------------------------------------------------------------
    def _bin_representatives(
        self, frame: DataFrame, tokens: dict[str, TokenColumn]
    ) -> dict[tuple[str, Hashable], float]:
        """Mean observed value per (numeric column, bin token).

        Each bin's observations are gathered with a stable sort (row
        order preserved) over the token codes and averaged with
        ``np.mean``, so the representatives are bit-identical to the
        historical per-row list appends.
        """
        representatives: dict[tuple[str, Hashable], float] = {}
        for name in frame.numeric_column_names():
            column = frame.column(name)
            tcol = tokens[name]
            codes = tcol.codes
            valid = codes != tcol.missing_code
            if not valid.any():
                continue
            data = np.asarray(column.values_array())[valid].astype(float)
            bin_codes = codes[valid]
            order = np.argsort(bin_codes, kind="stable")
            sorted_data = data[order]
            sorted_codes = bin_codes[order]
            boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
            starts = np.concatenate(([0], boundaries)).tolist()
            ends = np.concatenate((boundaries, [len(sorted_codes)])).tolist()
            for start, end in zip(starts, ends):
                token = tcol.tokens[int(sorted_codes[start])]
                representatives[(name, token)] = float(
                    np.mean(sorted_data[start:end])
                )
        return representatives

    @staticmethod
    def _fallback(column: Any) -> Any:
        mask = np.asarray(column.mask())
        if not (~mask).any():
            return 0.0 if column.is_numeric() else "Dummy"
        if column.is_numeric():
            data = np.asarray(column.values_array())[~mask].astype(float)
            return float(np.mean(data))
        return column.value_counts().most_common(1)[0][0]

"""HoloClean-style probabilistic repair via co-occurrence inference.

Reuses the detector's co-occurrence model: for every detected cell the
candidate value with the highest smoothed posterior given the row's other
attributes is chosen. Numeric columns are repaired with the mean of the
winning quantile bin.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..dataframe import Cell, DataFrame
from ..detection.holoclean import CooccurrenceModel, HoloCleanDetector, _MISSING
from .base import Repairer, group_cells_by_column, mask_cells


class HoloCleanRepairer(Repairer):
    """Argmax-posterior repair over the co-occurrence model."""

    name = "holoclean_repair"

    def __init__(self, n_bins: int = 12, alpha: float = 1.0) -> None:
        super().__init__(n_bins=n_bins, alpha=alpha)
        self.n_bins = n_bins
        self.alpha = alpha

    def _repair(self, frame: DataFrame, cells: set[Cell]) -> tuple:
        masked = mask_cells(frame, cells)
        tokenizer = HoloCleanDetector(n_bins=self.n_bins, alpha=self.alpha)
        tokens = tokenizer.tokenize(masked)
        model = CooccurrenceModel(alpha=self.alpha).fit(tokens)
        bin_values = self._bin_representatives(masked, tokens)
        repairs: dict[Cell, Any] = {}
        patches: dict[str, tuple[list[int], list[Any]]] = {}
        for column_name, rows in group_cells_by_column(cells).items():
            column = masked.column(column_name)
            domain = sorted(model.domain(column_name), key=str)
            column_values: list[Any] = []
            for row in rows:
                if not domain:
                    value = self._fallback(column)
                else:
                    row_tokens = {
                        name: tokens[name][row] for name in frame.column_names
                    }
                    best = max(
                        domain,
                        key=lambda candidate: model.log_score(
                            column_name, candidate, row_tokens
                        ),
                    )
                    value = self._materialize(
                        column_name, column, best, bin_values
                    )
                column_values.append(value)
                repairs[(row, column_name)] = value
            patches[column_name] = (rows, column_values)
        return repairs, {"domain_sizes": {}}, patches

    # ------------------------------------------------------------------
    def _bin_representatives(
        self, frame: DataFrame, tokens: dict[str, list[Hashable]]
    ) -> dict[tuple[str, Hashable], float]:
        """Mean observed value per (numeric column, bin token).

        Tokens are factorized once per column; each bin's observations
        are gathered with a stable sort (row order preserved) and
        averaged with ``np.mean``, so the representatives are
        bit-identical to the historical per-row list appends.
        """
        representatives: dict[tuple[str, Hashable], float] = {}
        for name in frame.numeric_column_names():
            column = frame.column(name)
            column_tokens = tokens[name]
            index: dict[Hashable, int] = {}
            codes = np.fromiter(
                (index.setdefault(t, len(index)) for t in column_tokens),
                dtype=np.int64,
                count=len(column_tokens),
            )
            valid = ~column.mask()
            if _MISSING in index:
                valid &= codes != index[_MISSING]
            if not valid.any():
                continue
            data = column.values_array()[valid].astype(float)
            bin_codes = codes[valid]
            order = np.argsort(bin_codes, kind="stable")
            sorted_data = data[order]
            sorted_codes = bin_codes[order]
            boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
            starts = np.concatenate(([0], boundaries)).tolist()
            ends = np.concatenate((boundaries, [len(sorted_codes)])).tolist()
            code_to_token = {code: token for token, code in index.items()}
            for start, end in zip(starts, ends):
                token = code_to_token[int(sorted_codes[start])]
                representatives[(name, token)] = float(
                    np.mean(sorted_data[start:end])
                )
        return representatives

    def _materialize(
        self,
        column_name: str,
        column: Any,
        token: Hashable,
        bin_values: dict[tuple[str, Hashable], float],
    ) -> Any:
        if not column.is_numeric():
            return token
        value = bin_values.get((column_name, token))
        if value is None:
            return self._fallback(column)
        if column.dtype == "int":
            return int(round(value))
        return value

    @staticmethod
    def _fallback(column: Any) -> Any:
        values = column.non_missing()
        if not values:
            return 0.0 if column.is_numeric() else "Dummy"
        if column.is_numeric():
            return float(np.mean([float(v) for v in values]))
        return column.value_counts().most_common(1)[0][0]

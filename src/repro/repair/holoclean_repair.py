"""HoloClean-style probabilistic repair via co-occurrence inference.

Reuses the detector's co-occurrence model: for every detected cell the
candidate value with the highest smoothed posterior given the row's other
attributes is chosen. Numeric columns are repaired with the mean of the
winning quantile bin.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..dataframe import Cell, DataFrame
from ..detection.holoclean import CooccurrenceModel, HoloCleanDetector, _MISSING
from .base import Repairer, group_cells_by_column, mask_cells


class HoloCleanRepairer(Repairer):
    """Argmax-posterior repair over the co-occurrence model."""

    name = "holoclean_repair"

    def __init__(self, n_bins: int = 12, alpha: float = 1.0) -> None:
        super().__init__(n_bins=n_bins, alpha=alpha)
        self.n_bins = n_bins
        self.alpha = alpha

    def _repair(
        self, frame: DataFrame, cells: set[Cell]
    ) -> tuple[dict[Cell, Any], dict[str, Any]]:
        masked = mask_cells(frame, cells)
        tokenizer = HoloCleanDetector(n_bins=self.n_bins, alpha=self.alpha)
        tokens = tokenizer.tokenize(masked)
        model = CooccurrenceModel(alpha=self.alpha).fit(tokens)
        bin_values = self._bin_representatives(masked, tokens)
        repairs: dict[Cell, Any] = {}
        for column_name, rows in group_cells_by_column(cells).items():
            column = masked.column(column_name)
            domain = sorted(model.domain(column_name), key=str)
            for row in rows:
                if not domain:
                    repairs[(row, column_name)] = self._fallback(column)
                    continue
                row_tokens = {
                    name: tokens[name][row] for name in frame.column_names
                }
                best = max(
                    domain,
                    key=lambda candidate: model.log_score(
                        column_name, candidate, row_tokens
                    ),
                )
                repairs[(row, column_name)] = self._materialize(
                    column_name, column, best, bin_values
                )
        return repairs, {"domain_sizes": {}}

    # ------------------------------------------------------------------
    def _bin_representatives(
        self, frame: DataFrame, tokens: dict[str, list[Hashable]]
    ) -> dict[tuple[str, Hashable], float]:
        """Mean observed value per (numeric column, bin token)."""
        representatives: dict[tuple[str, Hashable], list[float]] = {}
        for name in frame.numeric_column_names():
            values = frame.column(name).values()
            for row, token in enumerate(tokens[name]):
                if token == _MISSING or values[row] is None:
                    continue
                representatives.setdefault((name, token), []).append(
                    float(values[row])
                )
        return {
            key: float(np.mean(group)) for key, group in representatives.items()
        }

    def _materialize(
        self,
        column_name: str,
        column: Any,
        token: Hashable,
        bin_values: dict[tuple[str, Hashable], float],
    ) -> Any:
        if not column.is_numeric():
            return token
        value = bin_values.get((column_name, token))
        if value is None:
            return self._fallback(column)
        if column.dtype == "int":
            return int(round(value))
        return value

    @staticmethod
    def _fallback(column: Any) -> Any:
        values = column.non_missing()
        if not values:
            return 0.0 if column.is_numeric() else "Dummy"
        if column.is_numeric():
            return float(np.mean([float(v) for v in values]))
        return column.value_counts().most_common(1)[0][0]

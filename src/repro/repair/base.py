"""Repair interfaces: tools map detected cells to replacement values."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..dataframe import Cell, DataFrame


@dataclass
class RepairResult:
    """Proposed (and appliable) corrections for a set of detected cells."""

    tool: str
    repairs: dict[Cell, Any]
    config: dict[str, Any] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.repairs)

    def apply_to(self, frame: DataFrame) -> DataFrame:
        """Return a copy of ``frame`` with the repairs written in."""
        repaired = frame.copy()
        for (row, column), value in self.repairs.items():
            if 0 <= row < frame.num_rows and column in frame:
                repaired.set_at(row, column, value)
        return repaired

    def to_dict(self) -> dict[str, Any]:
        return {
            "tool": self.tool,
            "config": self.config,
            "num_repairs": len(self.repairs),
            "runtime_seconds": self.runtime_seconds,
            "metadata": self.metadata,
        }


class Repairer:
    """Base class: subclasses implement ``_repair`` and set ``name``."""

    name = "repairer"

    def __init__(self, **config: Any) -> None:
        self.config: dict[str, Any] = dict(config)

    def repair(self, frame: DataFrame, cells: Iterable[Cell]) -> RepairResult:
        """Propose replacement values for each detected cell."""
        wanted = {
            (row, column)
            for row, column in cells
            if 0 <= row < frame.num_rows and column in frame
        }
        start = time.perf_counter()
        repairs, metadata = self._repair(frame, wanted)
        elapsed = time.perf_counter() - start
        return RepairResult(
            tool=self.name,
            repairs=repairs,
            config=dict(self.config),
            runtime_seconds=elapsed,
            metadata=metadata,
        )

    def _repair(
        self, frame: DataFrame, cells: set[Cell]
    ) -> tuple[dict[Cell, Any], dict[str, Any]]:
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "config": dict(self.config)}


def mask_cells(frame: DataFrame, cells: Iterable[Cell]) -> DataFrame:
    """Copy of ``frame`` with the given cells blanked to missing.

    Repair tools call this first so that corrupted values never leak into
    the statistics or models used to compute replacements.
    """
    masked = frame.copy()
    for row, column in cells:
        if 0 <= row < frame.num_rows and column in frame:
            masked.set_at(row, column, None)
    return masked


def group_cells_by_column(cells: Iterable[Cell]) -> dict[str, list[int]]:
    grouped: dict[str, list[int]] = {}
    for row, column in cells:
        grouped.setdefault(column, []).append(row)
    for rows in grouped.values():
        rows.sort()
    return grouped

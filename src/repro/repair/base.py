"""Repair interfaces: tools map detected cells to replacement values.

Application is batched: proposed repairs are grouped per column into
``(row_indices, values)`` patch pairs and written through
:func:`apply_patches` → :meth:`DataFrame.set_cells` as whole array
slices, never per-cell ``set_at`` loops. Semantics (coercion, dtype
widening, out-of-range filtering) match the historical per-cell
application exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..dataframe import Cell, DataFrame

#: Per-column batched patches: ``{column_name: (row_indices, values)}``.
Patches = Mapping[str, tuple[Sequence[int], Sequence[Any]]]


def apply_patches(frame: DataFrame, patches: Patches) -> None:
    """Write batched per-column patches into ``frame`` in place.

    Each column's cells are written in one vectorized slice assignment.
    Row indices must be in range; callers filter first (see
    :meth:`RepairResult.to_patches`).
    """
    for column_name, (rows, values) in patches.items():
        frame.set_cells(column_name, rows, values)


@dataclass
class RepairResult:
    """Proposed (and appliable) corrections for a set of detected cells.

    ``repairs`` (cell → value) is the public record; ``patches`` is the
    same information pre-grouped per column by the producing
    :class:`Repairer` so application skips re-parsing the cell dict.
    """

    tool: str
    repairs: dict[Cell, Any]
    config: dict[str, Any] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)
    patches: dict[str, tuple[list[int], list[Any]]] | None = None

    def __len__(self) -> int:
        return len(self.repairs)

    def to_patches(self, frame: DataFrame) -> dict[str, tuple[list[int], list[Any]]]:
        """Group the repairs into per-column batched patches.

        Cells outside ``frame`` are dropped (matching the historical
        per-cell guard). Cell keys are unique, so write order within a
        column cannot change the result.
        """
        num_rows = frame.num_rows
        names = set(frame.column_names)
        rows_by: dict[str, list[int]] = {}
        values_by: dict[str, list[Any]] = {}
        for (row, column), value in self.repairs.items():
            if column in names and 0 <= row < num_rows:
                rows = rows_by.get(column)
                if rows is None:
                    rows = rows_by[column] = []
                    values_by[column] = []
                rows.append(row)
                values_by[column].append(value)
        return {name: (rows_by[name], values_by[name]) for name in rows_by}

    def _patches_fit(self, frame: DataFrame) -> bool:
        """Can the precomputed patches be written to ``frame`` as-is?"""
        if self.patches is None:
            return False
        for column, (rows, _) in self.patches.items():
            if column not in frame:
                return False
            if rows and (min(rows) < 0 or max(rows) >= frame.num_rows):
                return False
        return True

    def apply_to(self, frame: DataFrame) -> DataFrame:
        """Return a copy of ``frame`` with the repairs written in.

        Repairs are applied as batched per-column array writes; the
        result is identical to the historical per-cell ``set_at`` loop.
        The producer's precomputed patches are used when they fit the
        frame; otherwise the cell dict is regrouped (and out-of-range
        cells dropped, as before).
        """
        repaired = frame.copy()
        patches = (
            self.patches
            if self._patches_fit(frame)
            else self.to_patches(frame)
        )
        apply_patches(repaired, patches)
        return repaired

    def to_dict(self) -> dict[str, Any]:
        return {
            "tool": self.tool,
            "config": self.config,
            "num_repairs": len(self.repairs),
            "runtime_seconds": self.runtime_seconds,
            "metadata": self.metadata,
        }


class Repairer:
    """Base class: subclasses implement ``_repair`` and set ``name``."""

    name = "repairer"

    def __init__(self, **config: Any) -> None:
        self.config: dict[str, Any] = dict(config)

    def repair(
        self, frame: DataFrame, cells: Iterable[Cell], store: Any = None
    ) -> RepairResult:
        """Propose replacement values for each detected cell.

        ``store`` is an optional content-addressed artifact cache
        (duck-typed :class:`~repro.core.artifacts.ArtifactStore`):
        repairers that derive models from frame content — tokenizations,
        co-occurrence statistics — publish and reuse them keyed by
        column fingerprints, so a detect → repair cycle over identical
        content fits each model once. A disabled store is falsy and is
        normalized to ``None`` here, keeping the kill-switch path free
        of fingerprint hashing.
        """
        wanted = {
            (row, column)
            for row, column in cells
            if 0 <= row < frame.num_rows and column in frame
        }
        start = time.perf_counter()
        outcome = self._repair(frame, wanted, store=store if store else None)
        repairs, metadata = outcome[0], outcome[1]
        patches = outcome[2] if len(outcome) == 3 else None
        elapsed = time.perf_counter() - start
        return RepairResult(
            tool=self.name,
            repairs=repairs,
            config=dict(self.config),
            runtime_seconds=elapsed,
            metadata=metadata,
            patches=patches,
        )

    def _repair(
        self, frame: DataFrame, cells: set[Cell], store: Any = None
    ) -> tuple:
        """Return ``(repairs, metadata)`` or ``(repairs, metadata, patches)``.

        Subclasses that already group their work per column should return
        the third element — ``{column: (rows, values)}`` — so application
        skips regrouping the cell dict. ``store`` is the (already
        normalized, enabled-or-None) artifact cache from :meth:`repair`.
        """
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "config": dict(self.config)}


def mask_cells(frame: DataFrame, cells: Iterable[Cell]) -> DataFrame:
    """Copy of ``frame`` with the given cells blanked to missing.

    Repair tools call this first so that corrupted values never leak into
    the statistics or models used to compute replacements. Cells are
    blanked per column in one batched mask write.
    """
    masked = frame.copy()
    grouped: dict[str, list[int]] = {}
    for row, column in cells:
        if 0 <= row < frame.num_rows and column in frame:
            grouped.setdefault(column, []).append(row)
    for column, rows in grouped.items():
        masked.set_cells(column, rows, [None] * len(rows))
    return masked


def group_cells_by_column(cells: Iterable[Cell]) -> dict[str, list[int]]:
    grouped: dict[str, list[int]] = {}
    for row, column in cells:
        grouped.setdefault(column, []).append(row)
    for rows in grouped.values():
        rows.sort()
    return grouped

"""Correlation measures between columns (numeric and categorical).

The matrix builders accept an optional executor (any object with a
``map(fn, iterable)`` preserving input order, e.g. a
``concurrent.futures.ThreadPoolExecutor``): per-column preparation and
per-pair correlation tasks then run concurrently. Each pair is computed
independently with the same kernel on the same arrays, and results are
written back in deterministic pair order, so parallel output is
bit-identical to serial output.

With a ``store`` (:class:`~repro.core.artifacts.ArtifactStore`), pair
values are cached by the two columns' content fingerprints and Spearman
full-column ranks are cached per column — after a repair dirties one
column, only the pairs (and the one rank vector) touching it recompute;
per-column preparation (numpy export, validity masks) runs only for the
columns that still appear in an uncached pair. Cached values replay the
same kernels' output for identical content, so the matrix stays
bit-identical to a cold run.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..dataframe import DataFrame
from ..dataframe.types import factorize_objects


class _SerialExecutor:
    """Fallback executor: plain in-thread map."""

    def map(self, fn: Callable, *iterables: Iterable):
        return map(fn, *iterables)


def _ordered_map(executor, fn: Callable, items: Sequence) -> list:
    """Run ``fn`` over ``items`` (possibly in parallel), preserving order."""
    return list((executor or _SerialExecutor()).map(fn, items))


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation over pairwise-complete observations."""
    mask = ~(np.isnan(x) | np.isnan(y))
    if mask.sum() < 2:
        return 0.0
    xs = x[mask]
    ys = y[mask]
    std_x = np.std(xs)
    std_y = np.std(ys)
    if std_x == 0.0 or std_y == 0.0:
        return 0.0
    return float(np.mean((xs - xs.mean()) * (ys - ys.mean())) / (std_x * std_y))


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their rank block), vectorized."""
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=float)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=is_start[1:])
    group_ids = np.cumsum(is_start) - 1
    starts = np.flatnonzero(is_start)
    ends = np.append(starts[1:], n)
    # Block of tied positions [start, end) shares rank (start+end-1)/2 + 1.
    block_rank = (starts + ends - 1) / 2.0 + 1.0
    ranks = np.empty(n, dtype=float)
    ranks[order] = block_rank[group_ids]
    return ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation over pairwise-complete observations."""
    mask = ~(np.isnan(x) | np.isnan(y))
    if mask.sum() < 2:
        return 0.0
    return pearson(_rank(x[mask]), _rank(y[mask]))


def cramers_v(left: list, right: list) -> float:
    """Cramér's V between two categorical columns (bias-corrected).

    The contingency table is built with one factorization per side and a
    single ``bincount`` over composite codes; chi-square is permutation
    invariant, so level order does not matter.
    """
    left_arr = np.asarray(left, dtype=object)
    right_arr = np.asarray(right, dtype=object)
    keep = np.fromiter(
        (l is not None and r is not None for l, r in zip(left, right)),
        dtype=bool,
        count=len(left_arr),
    )
    if int(keep.sum()) < 2:
        return 0.0
    left_codes, n_left = factorize_objects(left_arr[keep])
    right_codes, n_right = factorize_objects(right_arr[keep])
    return _cramers_from_codes(left_codes, n_left, right_codes, n_right)


def _cramers_from_codes(
    left_codes: np.ndarray, n_left: int, right_codes: np.ndarray, n_right: int
) -> float:
    """Bias-corrected Cramér's V from dense level codes (no missing)."""
    if n_left < 2 or n_right < 2:
        return 0.0
    table = (
        np.bincount(left_codes * n_right + right_codes, minlength=n_left * n_right)
        .reshape(n_left, n_right)
        .astype(float)
    )
    n = table.sum()
    expected = np.outer(table.sum(axis=1), table.sum(axis=0)) / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(
            np.where(expected > 0, (table - expected) ** 2 / expected, 0.0)
        )
    phi2 = chi2 / n
    rows, cols = table.shape
    phi2_corrected = max(0.0, phi2 - (rows - 1) * (cols - 1) / (n - 1))
    rows_corrected = rows - (rows - 1) ** 2 / (n - 1)
    cols_corrected = cols - (cols - 1) ** 2 / (n - 1)
    denominator = min(rows_corrected - 1, cols_corrected - 1)
    if denominator <= 0:
        return 0.0
    return float(np.sqrt(phi2_corrected / denominator))


def _compress_codes(codes: np.ndarray, n_groups: int) -> tuple[np.ndarray, int]:
    """Re-densify codes after filtering may have emptied some levels."""
    counts = np.bincount(codes, minlength=n_groups)
    present = counts > 0
    remap = np.cumsum(present) - 1
    return remap[codes], int(present.sum())


def _pearson_core(xs: np.ndarray, ys: np.ndarray) -> float:
    """Pearson over already-aligned, nan-free samples."""
    std_x = np.std(xs)
    std_y = np.std(ys)
    if std_x == 0.0 or std_y == 0.0:
        return 0.0
    return float(np.mean((xs - xs.mean()) * (ys - ys.mean())) / (std_x * std_y))


def _float_samples(column) -> np.ndarray:
    """Column as a float array with nan at missing slots, copy-free when safe.

    A complete float64 column is returned as its read-only backing view
    (the pair kernels only read); anything else takes the same
    ``to_numpy`` copy-and-nan path as before. Values are identical
    either way, so pair results are unchanged. Multi-shard and spilled
    columns go straight to ``to_numpy`` so shards are gathered without
    pinning dense storage on the column.
    """
    if getattr(column, "n_chunks", 1) > 1 or getattr(column, "spilled", False):
        return column.to_numpy()
    data = column.values_array()
    if data.dtype == np.float64 and not np.asarray(column.mask()).any():
        return np.asarray(data)
    return column.to_numpy()


def _all_pairs(names: list[str]) -> list[tuple[str, str]]:
    return [
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i + 1, len(names))
    ]


def _split_cached_pairs(
    store, kind: str, pairs: list, fingerprints: dict[str, str]
) -> tuple[dict, list]:
    """Partition ``pairs`` into cached values and a to-compute list."""
    resolved: dict = {}
    todo: list = []
    for a, b in pairs:
        hit, value = store.get(kind, (fingerprints[a], fingerprints[b]), ())
        if hit:
            resolved[(a, b)] = value
        else:
            todo.append((a, b))
    return resolved, todo


def _assemble_matrix(
    names: list[str], values_by_pair: dict
) -> tuple[list[str], np.ndarray]:
    matrix = np.eye(len(names))
    index = {name: position for position, name in enumerate(names)}
    for (a, b), value in values_by_pair.items():
        if value != 0.0:
            matrix[index[a], index[b]] = value
            matrix[index[b], index[a]] = value
    return names, matrix


def correlation_matrix(
    frame: DataFrame, method: str = "pearson", executor=None, store=None
) -> tuple[list[str], np.ndarray]:
    """Numeric correlation matrix by Pearson or Spearman.

    Validity masks are computed once per column, and Spearman ranks are
    reused for every pair without missing values — only pairwise-
    incomplete pairs pay for a re-rank. With ``executor``, column
    preparation and pair correlations run concurrently. With ``store``,
    pair values are served by content fingerprint and full-column ranks
    persist across calls; preparation is lazy, touching only columns
    that appear in an uncached pair.
    """
    if method not in ("pearson", "spearman"):
        raise ValueError("method must be 'pearson' or 'spearman'")
    names = frame.numeric_column_names()
    pairs = _all_pairs(names)
    values_by_pair: dict = {}
    todo = pairs
    fingerprints: dict[str, str] = {}
    if store:  # falsy when disabled: cold path, no fingerprint hashing
        fingerprints = {
            name: frame.column(name).fingerprint() for name in names
        }
        values_by_pair, todo = _split_cached_pairs(
            store, f"corr:{method}", pairs, fingerprints
        )
    needed = list(dict.fromkeys(name for pair in todo for name in pair))
    arrays = dict(
        zip(
            needed,
            _ordered_map(
                executor,
                lambda name: _float_samples(frame.column(name)),
                needed,
            ),
        )
    )
    valid = {name: ~np.isnan(arrays[name]) for name in needed}
    full_ranks: dict[str, np.ndarray] = {}
    if method == "spearman":
        complete_names = [name for name in needed if bool(valid[name].all())]
        if store:
            ranked = []
            for name in complete_names:
                hit, value = store.get("corr:rank", (fingerprints[name],), ())
                if hit:
                    full_ranks[name] = value
                else:
                    ranked.append(name)
        else:
            ranked = complete_names
        computed_ranks = _ordered_map(
            executor, lambda name: _rank(arrays[name]), ranked
        )
        for name, ranks in zip(ranked, computed_ranks):
            full_ranks[name] = ranks
            if store:
                store.put("corr:rank", (fingerprints[name],), (), ranks)

    def _pair_value(pair: tuple[str, str]) -> float:
        a, b = pair
        mask = valid[a] & valid[b]
        if int(mask.sum()) < 2:
            return 0.0
        if method == "pearson":
            return _pearson_core(arrays[a][mask], arrays[b][mask])
        if bool(mask.all()):
            return _pearson_core(full_ranks[a], full_ranks[b])
        return _pearson_core(_rank(arrays[a][mask]), _rank(arrays[b][mask]))

    values = _ordered_map(executor, _pair_value, todo)
    for (a, b), value in zip(todo, values):
        values_by_pair[(a, b)] = value
        if store:
            store.put(
                f"corr:{method}", (fingerprints[a], fingerprints[b]), (), value
            )
    return _assemble_matrix(names, values_by_pair)


def categorical_association_matrix(
    frame: DataFrame, executor=None, store=None
) -> tuple[list[str], np.ndarray]:
    """Cramér's V matrix across categorical columns.

    Runs on the columns' cached integer codes and null masks; each pair
    costs one boolean filter, two code compressions, and one bincount.
    With ``executor``, pairs are computed concurrently; with ``store``,
    pair values are served by content fingerprint and codes/masks are
    pulled only for columns appearing in an uncached pair.
    """
    names = frame.categorical_column_names()
    pairs = _all_pairs(names)
    values_by_pair: dict = {}
    todo = pairs
    fingerprints: dict[str, str] = {}
    if store:  # falsy when disabled: cold path, no fingerprint hashing
        fingerprints = {
            name: frame.column(name).fingerprint() for name in names
        }
        values_by_pair, todo = _split_cached_pairs(
            store, "corr:cramers_v", pairs, fingerprints
        )
    needed = list(dict.fromkeys(name for pair in todo for name in pair))
    codes = {name: frame.column(name).codes() for name in needed}
    masks = {name: np.asarray(frame.column(name).mask()) for name in needed}

    def _pair_value(pair: tuple[str, str]) -> float:
        a, b = pair
        keep = ~(masks[a] | masks[b])
        if int(keep.sum()) < 2:
            return 0.0
        left_codes, n_left = _compress_codes(codes[a][0][keep], codes[a][1])
        right_codes, n_right = _compress_codes(codes[b][0][keep], codes[b][1])
        return _cramers_from_codes(left_codes, n_left, right_codes, n_right)

    values = _ordered_map(executor, _pair_value, todo)
    for (a, b), value in zip(todo, values):
        values_by_pair[(a, b)] = value
        if store:
            store.put(
                "corr:cramers_v", (fingerprints[a], fingerprints[b]), (), value
            )
    return _assemble_matrix(names, values_by_pair)


def pairs_from_matrix(
    names: list[str], matrix: np.ndarray, threshold: float
) -> list[tuple[str, str, float]]:
    """Column pairs of an existing correlation matrix with |r| >= threshold."""
    pairs = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if abs(matrix[i, j]) >= threshold:
                pairs.append((names[i], names[j], float(matrix[i, j])))
    return pairs


def highly_correlated_pairs(
    frame: DataFrame, threshold: float = 0.9, method: str = "pearson"
) -> list[tuple[str, str, float]]:
    """Column pairs whose |correlation| meets the threshold."""
    names, matrix = correlation_matrix(frame, method)
    return pairs_from_matrix(names, matrix, threshold)

"""Correlation measures between columns (numeric and categorical)."""

from __future__ import annotations

import numpy as np

from ..dataframe import DataFrame


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation over pairwise-complete observations."""
    mask = ~(np.isnan(x) | np.isnan(y))
    if mask.sum() < 2:
        return 0.0
    xs = x[mask]
    ys = y[mask]
    std_x = np.std(xs)
    std_y = np.std(ys)
    if std_x == 0.0 or std_y == 0.0:
        return 0.0
    return float(np.mean((xs - xs.mean()) * (ys - ys.mean())) / (std_x * std_y))


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their rank block)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    i = 0
    while i < len(values):
        j = i
        while (
            j + 1 < len(values)
            and values[order[j + 1]] == values[order[i]]
        ):
            j += 1
        average = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation over pairwise-complete observations."""
    mask = ~(np.isnan(x) | np.isnan(y))
    if mask.sum() < 2:
        return 0.0
    return pearson(_rank(x[mask]), _rank(y[mask]))


def cramers_v(left: list, right: list) -> float:
    """Cramér's V between two categorical columns (bias-corrected)."""
    pairs = [
        (l, r) for l, r in zip(left, right) if l is not None and r is not None
    ]
    if len(pairs) < 2:
        return 0.0
    left_levels = sorted({l for l, _ in pairs}, key=str)
    right_levels = sorted({r for _, r in pairs}, key=str)
    if len(left_levels) < 2 or len(right_levels) < 2:
        return 0.0
    left_index = {level: i for i, level in enumerate(left_levels)}
    right_index = {level: i for i, level in enumerate(right_levels)}
    table = np.zeros((len(left_levels), len(right_levels)))
    for l, r in pairs:
        table[left_index[l], right_index[r]] += 1
    n = table.sum()
    expected = np.outer(table.sum(axis=1), table.sum(axis=0)) / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(
            np.where(expected > 0, (table - expected) ** 2 / expected, 0.0)
        )
    phi2 = chi2 / n
    rows, cols = table.shape
    phi2_corrected = max(0.0, phi2 - (rows - 1) * (cols - 1) / (n - 1))
    rows_corrected = rows - (rows - 1) ** 2 / (n - 1)
    cols_corrected = cols - (cols - 1) ** 2 / (n - 1)
    denominator = min(rows_corrected - 1, cols_corrected - 1)
    if denominator <= 0:
        return 0.0
    return float(np.sqrt(phi2_corrected / denominator))


def correlation_matrix(
    frame: DataFrame, method: str = "pearson"
) -> tuple[list[str], np.ndarray]:
    """Numeric correlation matrix by Pearson or Spearman."""
    if method not in ("pearson", "spearman"):
        raise ValueError("method must be 'pearson' or 'spearman'")
    names = frame.numeric_column_names()
    measure = pearson if method == "pearson" else spearman
    arrays = {name: frame.column(name).to_numpy() for name in names}
    matrix = np.eye(len(names))
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            if j <= i:
                continue
            value = measure(arrays[a], arrays[b])
            matrix[i, j] = value
            matrix[j, i] = value
    return names, matrix


def categorical_association_matrix(
    frame: DataFrame,
) -> tuple[list[str], np.ndarray]:
    """Cramér's V matrix across categorical columns."""
    names = frame.categorical_column_names()
    columns = {name: frame.column(name).values() for name in names}
    matrix = np.eye(len(names))
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            if j <= i:
                continue
            value = cramers_v(columns[a], columns[b])
            matrix[i, j] = value
            matrix[j, i] = value
    return names, matrix


def highly_correlated_pairs(
    frame: DataFrame, threshold: float = 0.9, method: str = "pearson"
) -> list[tuple[str, str, float]]:
    """Column pairs whose |correlation| meets the threshold."""
    names, matrix = correlation_matrix(frame, method)
    pairs = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if abs(matrix[i, j]) >= threshold:
                pairs.append((names[i], names[j], float(matrix[i, j])))
    return pairs

"""Missing-data analysis: counts, patterns, and co-missingness."""

from __future__ import annotations

from collections import Counter
from typing import Any

import numpy as np

from ..dataframe import DataFrame


def missing_summary(frame: DataFrame) -> dict[str, Any]:
    """Overall and per-column missing-cell statistics."""
    per_column = {
        name: frame.column(name).missing_count() for name in frame.column_names
    }
    total_cells = frame.num_rows * frame.num_columns
    total_missing = sum(per_column.values())
    rows_with_missing = sum(
        1
        for i in range(frame.num_rows)
        if any(frame.at(i, name) is None for name in frame.column_names)
    )
    return {
        "total_cells": total_cells,
        "missing_cells": total_missing,
        "missing_fraction": total_missing / total_cells if total_cells else 0.0,
        "per_column": per_column,
        "per_column_fraction": {
            name: count / frame.num_rows if frame.num_rows else 0.0
            for name, count in per_column.items()
        },
        "rows_with_missing": rows_with_missing,
        "complete_rows": frame.num_rows - rows_with_missing,
    }


def missing_patterns(frame: DataFrame, top_k: int = 10) -> list[dict[str, Any]]:
    """Most frequent row-level missingness patterns.

    A pattern is the tuple of column names missing in a row; the empty
    pattern (complete rows) is included.
    """
    patterns: Counter = Counter()
    for i in range(frame.num_rows):
        missing = tuple(
            name for name in frame.column_names if frame.at(i, name) is None
        )
        patterns[missing] += 1
    return [
        {"missing_columns": list(pattern), "rows": count}
        for pattern, count in patterns.most_common(top_k)
    ]


def co_missingness(frame: DataFrame) -> tuple[list[str], np.ndarray]:
    """Matrix of co-occurring missingness between column pairs.

    Entry (i, j) counts rows where both columns are missing; the diagonal
    holds each column's missing count.
    """
    names = frame.column_names
    masks = {name: np.array(frame.column(name).is_missing()) for name in names}
    matrix = np.zeros((len(names), len(names)), dtype=int)
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            matrix[i, j] = int(np.sum(masks[a] & masks[b]))
    return names, matrix

"""Missing-data analysis: counts, patterns, and co-missingness.

Everything here is computed from the columns' boolean null masks
(:meth:`~repro.dataframe.Column.mask`) stacked into one matrix — no
per-cell Python loops. The kernels iterate the frame's row chunks
(:meth:`~repro.dataframe.DataFrame.iter_chunks`; a monolithic frame is
one chunk) and merge per-chunk partials exactly: missing counts and
co-missingness matrices are integer sums, and pattern tables merge
``(packed key → count, first row)`` pairs with summed counts and the
minimum global row index, which reproduces the monolithic ranking
(count desc, first occurrence asc) bit for bit.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import DataFrame
from ..dataframe.types import pack_bool_rows


def _mask_matrix(frame: DataFrame) -> np.ndarray:
    """(n_rows, n_columns) boolean matrix of missing cells."""
    if not frame.num_columns:
        return np.zeros((frame.num_rows, 0), dtype=bool)
    return np.column_stack(
        [np.asarray(frame.column(name).mask()) for name in frame.column_names]
    )


def missing_summary(frame: DataFrame) -> dict[str, Any]:
    """Overall and per-column missing-cell statistics."""
    column_counts = np.zeros(frame.num_columns, dtype=np.int64)
    rows_with_missing = 0
    for chunk in frame.iter_chunks():
        matrix = _mask_matrix(chunk)
        column_counts += matrix.sum(axis=0, dtype=np.int64)
        rows_with_missing += int(matrix.any(axis=1).sum())
    per_column = {
        name: int(count)
        for name, count in zip(frame.column_names, column_counts)
    }
    total_cells = frame.num_rows * frame.num_columns
    total_missing = int(column_counts.sum())
    return {
        "total_cells": total_cells,
        "missing_cells": total_missing,
        "missing_fraction": total_missing / total_cells if total_cells else 0.0,
        "per_column": per_column,
        "per_column_fraction": {
            name: count / frame.num_rows if frame.num_rows else 0.0
            for name, count in per_column.items()
        },
        "rows_with_missing": rows_with_missing,
        "complete_rows": frame.num_rows - rows_with_missing,
    }


def missing_patterns(frame: DataFrame, top_k: int = 10) -> list[dict[str, Any]]:
    """Most frequent row-level missingness patterns.

    A pattern is the tuple of column names missing in a row; the empty
    pattern (complete rows) is included. Patterns are ranked by count,
    ties broken by first occurrence — the same order a Counter built row
    by row would produce.
    """
    if frame.num_rows == 0:
        return []
    if frame.num_columns and frame.num_columns <= 62:
        return _missing_patterns_packed(frame, top_k)
    # Wide-table fallback: int64 bit keys would overflow, group raw rows.
    matrix = _mask_matrix(frame)
    patterns, inverse, counts = np.unique(
        matrix, axis=0, return_inverse=True, return_counts=True
    )
    inverse = inverse.reshape(-1)
    first_seen = np.full(len(patterns), frame.num_rows, dtype=np.int64)
    np.minimum.at(first_seen, inverse, np.arange(frame.num_rows))
    order = np.lexsort((first_seen, -counts))
    names = np.array(frame.column_names, dtype=object)
    return [
        {
            "missing_columns": list(names[patterns[index]]),
            "rows": int(counts[index]),
        }
        for index in order[:top_k]
    ]


def _missing_patterns_packed(
    frame: DataFrame, top_k: int
) -> list[dict[str, Any]]:
    """Pattern table via per-chunk int64 bit keys, merged exactly.

    Each chunk contributes ``(key → count, first global row)`` pairs;
    counts add and first-seen rows take the minimum, so the final
    ranking is identical to one whole-table pass.
    """
    merged: dict[int, list[int]] = {}
    weights: np.ndarray | None = None
    offset = 0
    for chunk in frame.iter_chunks():
        matrix = _mask_matrix(chunk)
        packed = pack_bool_rows(matrix)
        assert packed is not None  # caller guarantees <= 62 columns
        keys, weights = packed
        pattern_keys, first_index, counts = np.unique(
            keys, return_index=True, return_counts=True
        )
        for key, first, count in zip(
            pattern_keys.tolist(), first_index.tolist(), counts.tolist()
        ):
            entry = merged.get(key)
            if entry is None:
                merged[key] = [count, offset + first]
            else:
                entry[0] += count
        offset += chunk.num_rows
    names = np.array(frame.column_names, dtype=object)
    ranked = sorted(
        merged.items(), key=lambda item: (-item[1][0], item[1][1])
    )
    results = []
    for key, (count, _) in ranked[:top_k]:
        pattern = (np.int64(key) & weights).astype(bool)
        results.append(
            {"missing_columns": list(names[pattern]), "rows": int(count)}
        )
    return results


def co_missingness(frame: DataFrame) -> tuple[list[str], np.ndarray]:
    """Matrix of co-occurring missingness between column pairs.

    Entry (i, j) counts rows where both columns are missing; the diagonal
    holds each column's missing count. Per-chunk Gram matrices are
    integer sums, so the chunked merge is exact.
    """
    names = frame.column_names
    total = np.zeros((len(names), len(names)), dtype=np.int64)
    for chunk in frame.iter_chunks():
        matrix = _mask_matrix(chunk).astype(np.int64)
        total += matrix.T @ matrix
    return names, total

"""Missing-data analysis: counts, patterns, and co-missingness.

Everything here is computed from the columns' boolean null masks
(:meth:`~repro.dataframe.Column.mask`) stacked into one matrix — no
per-cell Python loops.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import DataFrame
from ..dataframe.types import pack_bool_rows


def _mask_matrix(frame: DataFrame) -> np.ndarray:
    """(n_rows, n_columns) boolean matrix of missing cells."""
    if not frame.num_columns:
        return np.zeros((frame.num_rows, 0), dtype=bool)
    return np.column_stack(
        [frame.column(name).mask() for name in frame.column_names]
    )


def missing_summary(frame: DataFrame) -> dict[str, Any]:
    """Overall and per-column missing-cell statistics."""
    matrix = _mask_matrix(frame)
    column_counts = matrix.sum(axis=0)
    per_column = {
        name: int(count)
        for name, count in zip(frame.column_names, column_counts)
    }
    total_cells = frame.num_rows * frame.num_columns
    total_missing = int(column_counts.sum())
    rows_with_missing = int(matrix.any(axis=1).sum())
    return {
        "total_cells": total_cells,
        "missing_cells": total_missing,
        "missing_fraction": total_missing / total_cells if total_cells else 0.0,
        "per_column": per_column,
        "per_column_fraction": {
            name: count / frame.num_rows if frame.num_rows else 0.0
            for name, count in per_column.items()
        },
        "rows_with_missing": rows_with_missing,
        "complete_rows": frame.num_rows - rows_with_missing,
    }


def missing_patterns(frame: DataFrame, top_k: int = 10) -> list[dict[str, Any]]:
    """Most frequent row-level missingness patterns.

    A pattern is the tuple of column names missing in a row; the empty
    pattern (complete rows) is included. Patterns are ranked by count,
    ties broken by first occurrence — the same order a Counter built row
    by row would produce.
    """
    matrix = _mask_matrix(frame)
    if frame.num_rows == 0:
        return []
    packed = pack_bool_rows(matrix) if frame.num_columns else None
    if packed is not None:
        # Pack each row's pattern into one int64 — much faster to group
        # than np.unique over matrix rows.
        keys, weights = packed
        pattern_keys, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )
        patterns = (
            pattern_keys[:, None] & weights[None, :]
        ).astype(bool)
    else:
        patterns, inverse, counts = np.unique(
            matrix, axis=0, return_inverse=True, return_counts=True
        )
    inverse = inverse.reshape(-1)
    first_seen = np.full(len(patterns), frame.num_rows, dtype=np.int64)
    np.minimum.at(first_seen, inverse, np.arange(frame.num_rows))
    order = np.lexsort((first_seen, -counts))
    names = np.array(frame.column_names, dtype=object)
    return [
        {
            "missing_columns": list(names[patterns[index]]),
            "rows": int(counts[index]),
        }
        for index in order[:top_k]
    ]


def co_missingness(frame: DataFrame) -> tuple[list[str], np.ndarray]:
    """Matrix of co-occurring missingness between column pairs.

    Entry (i, j) counts rows where both columns are missing; the diagonal
    holds each column's missing count.
    """
    names = frame.column_names
    matrix = _mask_matrix(frame).astype(np.int64)
    return names, matrix.T @ matrix

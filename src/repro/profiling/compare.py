"""Profile comparison — drift between two dataset versions.

The paper's introduction motivates *ongoing* quality management: "It
requires ongoing monitoring and adjustment as new data comes in, as the
nature of the data changes". This module diffs two profile reports (or two
frames) and surfaces schema changes, distribution shift per column, and
missingness/quality movement — the signal a monitoring loop alerts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..dataframe import DataFrame

SCHEMA_ADDED = "column_added"
SCHEMA_REMOVED = "column_removed"
DTYPE_CHANGED = "dtype_changed"
MISSINGNESS_SHIFT = "missingness_shift"
DISTRIBUTION_SHIFT = "distribution_shift"
CARDINALITY_SHIFT = "cardinality_shift"


@dataclass
class DriftFinding:
    """One detected difference between the baseline and current data."""

    kind: str
    column: str | None
    severity: float  # 0..1, larger = more drift
    message: str
    details: dict[str, Any] = field(default_factory=dict)


def population_stability_index(
    baseline: np.ndarray, current: np.ndarray, bins: int = 10
) -> float:
    """PSI between two numeric samples (industry drift measure).

    PSI < 0.1 is stable, 0.1-0.25 moderate shift, > 0.25 major shift.
    """
    baseline = baseline[~np.isnan(baseline)]
    current = current[~np.isnan(current)]
    if len(baseline) < 2 or len(current) < 2:
        return 0.0
    edges = np.unique(np.quantile(baseline, np.linspace(0, 1, bins + 1)))
    if len(edges) < 3:
        return 0.0
    edges[0] = min(edges[0], float(current.min())) - 1e-9
    edges[-1] = max(edges[-1], float(current.max())) + 1e-9
    base_counts, _ = np.histogram(baseline, bins=edges)
    curr_counts, _ = np.histogram(current, bins=edges)
    base_frac = np.clip(base_counts / base_counts.sum(), 1e-6, None)
    curr_frac = np.clip(curr_counts / curr_counts.sum(), 1e-6, None)
    return float(np.sum((curr_frac - base_frac) * np.log(curr_frac / base_frac)))


def categorical_shift(baseline: list, current: list) -> float:
    """Total-variation distance between category distributions (0..1)."""
    base_values = [v for v in baseline if v is not None]
    curr_values = [v for v in current if v is not None]
    if not base_values or not curr_values:
        return 0.0
    levels = set(base_values) | set(curr_values)
    distance = 0.0
    for level in levels:
        base_frac = base_values.count(level) / len(base_values)
        curr_frac = curr_values.count(level) / len(curr_values)
        distance += abs(base_frac - curr_frac)
    return distance / 2.0


def compare_frames(
    baseline: DataFrame,
    current: DataFrame,
    psi_threshold: float = 0.1,
    missing_threshold: float = 0.05,
    categorical_threshold: float = 0.1,
) -> list[DriftFinding]:
    """Diff two frames and return drift findings sorted by severity."""
    findings: list[DriftFinding] = []
    base_columns = set(baseline.column_names)
    curr_columns = set(current.column_names)

    for name in sorted(curr_columns - base_columns):
        findings.append(
            DriftFinding(SCHEMA_ADDED, name, 1.0, f"column {name!r} appeared")
        )
    for name in sorted(base_columns - curr_columns):
        findings.append(
            DriftFinding(SCHEMA_REMOVED, name, 1.0, f"column {name!r} vanished")
        )

    for name in sorted(base_columns & curr_columns):
        base_col = baseline.column(name)
        curr_col = current.column(name)
        if base_col.dtype != curr_col.dtype:
            findings.append(
                DriftFinding(
                    DTYPE_CHANGED,
                    name,
                    0.9,
                    f"{name} changed dtype {base_col.dtype} -> {curr_col.dtype}",
                    {"from": base_col.dtype, "to": curr_col.dtype},
                )
            )
            continue
        base_missing = base_col.missing_count() / max(1, len(base_col))
        curr_missing = curr_col.missing_count() / max(1, len(curr_col))
        delta = abs(curr_missing - base_missing)
        if delta >= missing_threshold:
            findings.append(
                DriftFinding(
                    MISSINGNESS_SHIFT,
                    name,
                    min(1.0, delta * 4),
                    f"{name} missingness moved "
                    f"{base_missing:.1%} -> {curr_missing:.1%}",
                    {"before": base_missing, "after": curr_missing},
                )
            )
        if base_col.is_numeric():
            psi = population_stability_index(
                base_col.to_numpy(), curr_col.to_numpy()
            )
            if psi >= psi_threshold:
                findings.append(
                    DriftFinding(
                        DISTRIBUTION_SHIFT,
                        name,
                        min(1.0, psi / 0.5),
                        f"{name} distribution shifted (PSI {psi:.2f})",
                        {"psi": psi},
                    )
                )
        else:
            shift = categorical_shift(base_col.values(), curr_col.values())
            if shift >= categorical_threshold:
                findings.append(
                    DriftFinding(
                        CARDINALITY_SHIFT,
                        name,
                        min(1.0, shift * 2),
                        f"{name} category mix shifted "
                        f"(total variation {shift:.2f})",
                        {"total_variation": shift},
                    )
                )
    findings.sort(key=lambda finding: -finding.severity)
    return findings


def drift_report(
    baseline: DataFrame, current: DataFrame, **thresholds: float
) -> dict[str, Any]:
    """Structured drift report for dashboards / the REST layer."""
    findings = compare_frames(baseline, current, **thresholds)
    return {
        "baseline_shape": list(baseline.shape),
        "current_shape": list(current.shape),
        "num_findings": len(findings),
        "max_severity": max((f.severity for f in findings), default=0.0),
        "findings": [
            {
                "kind": f.kind,
                "column": f.column,
                "severity": round(f.severity, 3),
                "message": f.message,
                "details": f.details,
            }
            for f in findings
        ],
    }

"""The profile report object — DataLens's "Data Profile" tab payload.

``profile()`` is chunk-aware and optionally thread-parallel: frames are
profiled through their chunk iterator (with the
``DATALENS_DEFAULT_CHUNK_SIZE`` environment override auto-chunking plain
frames), per-column summaries/histograms and correlation pairs are
submitted to a ``ThreadPoolExecutor`` when ``n_jobs`` asks for more than
one worker, and every result is assembled in deterministic column/pair
order — parallel output is bit-identical to serial output.

With a ``store`` (an :class:`~repro.core.artifacts.ArtifactStore`),
profiling becomes *incremental*: per-column sections, correlation pairs,
the missing tables, and the duplicate-row artifact are looked up by
column content fingerprints before computing and published afterwards,
so re-profiling after a repair recomputes only the artifacts that touch
a patched column. The cached path returns bit-identical reports — the
store only ever replays what the same kernels produced for identical
column content.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from html import escape
from typing import Any

import numpy as np

from ..dataframe import DataFrame
from ..dataframe.chunked import default_chunk_size
from .alerts import CORRELATION_ALERT_THRESHOLD, Alert, generate_alerts
from .correlations import (
    categorical_association_matrix,
    correlation_matrix,
    pairs_from_matrix,
)
from .histogram import histogram
from .missing import missing_patterns, missing_summary
from .stats import column_summary


@dataclass
class ProfileReport:
    """Aggregated dataset profile: overview, columns, correlations, alerts."""

    overview: dict[str, Any]
    columns: list[dict[str, Any]]
    correlations: dict[str, Any]
    missing: dict[str, Any]
    alerts: list[Alert] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "overview": self.overview,
            "columns": self.columns,
            "correlations": self.correlations,
            "missing": self.missing,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_html(self) -> str:
        """Minimal standalone HTML rendering of the profile."""
        parts = ["<section class='profile'>", "<h2>Data Profile</h2>"]
        overview_rows = "".join(
            f"<tr><th>{escape(str(key))}</th><td>{escape(str(value))}</td></tr>"
            for key, value in self.overview.items()
        )
        parts.append(f"<table class='overview'>{overview_rows}</table>")
        if self.alerts:
            items = "".join(
                f"<li class='alert alert-{escape(alert.kind)}'>"
                f"{escape(alert.message)}</li>"
                for alert in self.alerts
            )
            parts.append(f"<h3>Alerts</h3><ul>{items}</ul>")
        parts.append("<h3>Columns</h3>")
        for column in self.columns:
            parts.append(_column_html(column))
        parts.append("</section>")
        return "".join(parts)

    def alert_kinds(self) -> set[str]:
        return {alert.kind for alert in self.alerts}


def _column_html(column: dict[str, Any]) -> str:
    stats = column["statistics"]
    rows = "".join(
        f"<tr><th>{escape(str(key))}</th><td>{escape(str(value))}</td></tr>"
        for key, value in stats.items()
        if not isinstance(value, (list, dict))
    )
    return (
        f"<div class='column'><h4>{escape(str(column['name']))} "
        f"<small>({escape(str(column['dtype']))})</small></h4>"
        f"<p>missing: {column['missing']} "
        f"({column['missing_fraction']:.1%}), "
        f"distinct: {column['distinct']}</p>"
        f"<table>{rows}</table></div>"
    )


def duplicate_row_artifact(frame: DataFrame, store) -> tuple[int, ...]:
    """Duplicate-row indices via the shared ``frame:duplicates`` entry.

    The single definition of this artifact's key and payload shape —
    profiling and quality scoring (:mod:`repro.core.quality`) both call
    it, so one session store serves one entry to both subsystems. Stored
    as an immutable tuple with ``copy=False``: cache hits cost nothing,
    and consumers needing a list take a shallow copy.

    The compute path is itself incremental: the per-column row codes are
    cached under ``frame:rowcodes`` keyed on each column's content
    fingerprint, and combined exactly like
    :meth:`DataFrame.column_codes(dense=False)
    <repro.dataframe.frame.DataFrame.column_codes>`. Repairing one
    column therefore re-encodes only that column — the other partials
    replay from cache and the recombination is pure numpy arithmetic.
    """

    def compute() -> tuple[int, ...]:
        if frame.num_rows == 0 or frame.num_columns == 0:
            return ()
        codes: np.ndarray | None = None
        span = 0
        for name in frame.column_names:
            column = frame.column(name)
            extra, extra_span = store.cached(
                "frame:rowcodes",
                (column.fingerprint(),),
                (),
                column.codes,
            )
            if codes is None:
                codes, span = extra, extra_span
                continue
            if extra_span and span > (2**62) // max(extra_span, 1):
                # Composite key would overflow int64 — re-densify first,
                # mirroring DataFrame.column_codes exactly so the result
                # stays bit-identical to the monolithic kernel.
                uniques, inverse = np.unique(codes, return_inverse=True)
                codes = inverse.astype(np.int64, copy=False)
                span = len(uniques)
            codes = codes * extra_span + extra
            span = span * extra_span
        _, first_index = np.unique(codes, return_index=True)
        is_first = np.zeros(frame.num_rows, dtype=bool)
        is_first[first_index] = True
        return tuple(np.flatnonzero(~is_first).tolist())

    return store.cached(
        "frame:duplicates", frame.column_fingerprints(), (), compute
    )


def resolve_jobs(n_jobs: int | None) -> int:
    """Worker count: None/0/1 → serial, -1 → all cores, n → n.

    Public seam of the PR-3 executor pattern — shared by every consumer
    that offers thread-parallel per-column work (profiling, ML repair).
    """
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs < 0:
        return os.cpu_count() or 1
    return n_jobs


def profile(
    frame: DataFrame,
    histogram_bins: int = 20,
    n_jobs: int | None = None,
    store=None,
) -> ProfileReport:
    """Profile a frame: the automated data profiling module of Figure 1.

    With ``n_jobs`` > 1 (or ``-1`` for all cores), per-column work and
    correlation pairs run on a thread pool; numpy releases the GIL in
    the reduction/sort kernels that dominate, so wide or chunked frames
    profile in parallel. Results are identical to the serial path.

    ``store`` enables incremental profiling through a content-addressed
    :class:`~repro.core.artifacts.ArtifactStore`: unchanged columns (and
    pairs of unchanged columns) are served from cache bit-identically.
    """
    env_chunk = default_chunk_size()
    if env_chunk is not None and frame.n_chunks == 1 and frame.num_rows:
        # A disabled store is falsy (ArtifactStore.__bool__): every store
        # check below is a truthiness check, so the kill-switch path is
        # the true cold path — no fingerprint hashing at all.
        if store:
            # Warm the fingerprint caches on the caller's columns first:
            # to_chunked carries them over, so repeated profile() calls on
            # a session frame hash each column once, not once per call.
            frame.column_fingerprints()
        frame = frame.to_chunked(env_chunk)
    workers = resolve_jobs(n_jobs)
    if workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as executor:
            return _build_report(frame, histogram_bins, executor, store)
    return _build_report(frame, histogram_bins, None, store)


def _build_report(
    frame: DataFrame, histogram_bins: int, executor, store=None
) -> ProfileReport:
    def _column_section(name: str) -> dict[str, Any]:
        summary = column_summary(frame.column(name))
        summary["histogram"] = histogram(frame.column(name), bins=histogram_bins)
        return summary

    names = frame.column_names
    sections: dict[str, dict[str, Any]] = {}
    todo = list(names)
    if store:
        todo = []
        for name in names:
            hit, value = store.get(
                "profile:column",
                (frame.column(name).fingerprint(),),
                (histogram_bins,),
            )
            if hit:
                sections[name] = value
            else:
                todo.append(name)
    if executor is not None:
        computed = list(executor.map(_column_section, todo))
    else:
        computed = [_column_section(name) for name in todo]
    for name, summary in zip(todo, computed):
        if store:
            store.put(
                "profile:column",
                (frame.column(name).fingerprint(),),
                (histogram_bins,),
                summary,
                copy=True,
            )
        sections[name] = summary
    columns = [sections[name] for name in names]
    summaries_by_name = dict(zip(names, columns))

    pearson_names, pearson_matrix = correlation_matrix(
        frame, "pearson", executor=executor, store=store
    )
    spearman_names, spearman_matrix = correlation_matrix(
        frame, "spearman", executor=executor, store=store
    )
    cramers_names, cramers_matrix = categorical_association_matrix(
        frame, executor=executor, store=store
    )
    if store:
        # Alerts expect the historical list, so take a shallow copy of
        # the immutable shared artifact.
        duplicates = list(duplicate_row_artifact(frame, store))
        # Missing tables depend only on null masks, so they key on the
        # mask fingerprints: value-only repairs keep them cached.
        missing_section = store.cached(
            "frame:missing",
            frame.mask_fingerprints(),
            (),
            lambda: {
                "summary": missing_summary(frame),
                "patterns": missing_patterns(frame),
            },
            copy=True,
        )
    else:
        duplicates = frame.duplicate_row_indices()
        missing_section = {
            "summary": missing_summary(frame),
            "patterns": missing_patterns(frame),
        }
    correlation_pairs = pairs_from_matrix(
        pearson_names, pearson_matrix, CORRELATION_ALERT_THRESHOLD
    )

    overview = {
        "rows": frame.num_rows,
        "columns": frame.num_columns,
        "missing_cells": frame.missing_count(),
        "missing_fraction": (
            frame.missing_count() / (frame.num_rows * frame.num_columns)
            if frame.num_rows and frame.num_columns
            else 0.0
        ),
        "duplicate_rows": len(duplicates),
        "numeric_columns": len(frame.numeric_column_names()),
        "categorical_columns": len(frame.categorical_column_names()),
    }
    return ProfileReport(
        overview=overview,
        columns=columns,
        correlations={
            "pearson": {
                "columns": pearson_names,
                "matrix": [[float(v) for v in row] for row in pearson_matrix],
            },
            "spearman": {
                "columns": spearman_names,
                "matrix": [[float(v) for v in row] for row in spearman_matrix],
            },
            "cramers_v": {
                "columns": cramers_names,
                "matrix": [[float(v) for v in row] for row in cramers_matrix],
            },
        },
        missing=missing_section,
        alerts=generate_alerts(
            frame,
            column_summaries=summaries_by_name,
            duplicate_rows=duplicates,
            correlation_pairs=correlation_pairs,
        ),
    )

"""The profile report object — DataLens's "Data Profile" tab payload."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from html import escape
from typing import Any

from ..dataframe import DataFrame
from .alerts import CORRELATION_ALERT_THRESHOLD, Alert, generate_alerts
from .correlations import (
    categorical_association_matrix,
    correlation_matrix,
    pairs_from_matrix,
)
from .histogram import histogram
from .missing import missing_patterns, missing_summary
from .stats import column_summary


@dataclass
class ProfileReport:
    """Aggregated dataset profile: overview, columns, correlations, alerts."""

    overview: dict[str, Any]
    columns: list[dict[str, Any]]
    correlations: dict[str, Any]
    missing: dict[str, Any]
    alerts: list[Alert] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "overview": self.overview,
            "columns": self.columns,
            "correlations": self.correlations,
            "missing": self.missing,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_html(self) -> str:
        """Minimal standalone HTML rendering of the profile."""
        parts = ["<section class='profile'>", "<h2>Data Profile</h2>"]
        overview_rows = "".join(
            f"<tr><th>{escape(str(key))}</th><td>{escape(str(value))}</td></tr>"
            for key, value in self.overview.items()
        )
        parts.append(f"<table class='overview'>{overview_rows}</table>")
        if self.alerts:
            items = "".join(
                f"<li class='alert alert-{escape(alert.kind)}'>"
                f"{escape(alert.message)}</li>"
                for alert in self.alerts
            )
            parts.append(f"<h3>Alerts</h3><ul>{items}</ul>")
        parts.append("<h3>Columns</h3>")
        for column in self.columns:
            parts.append(_column_html(column))
        parts.append("</section>")
        return "".join(parts)

    def alert_kinds(self) -> set[str]:
        return {alert.kind for alert in self.alerts}


def _column_html(column: dict[str, Any]) -> str:
    stats = column["statistics"]
    rows = "".join(
        f"<tr><th>{escape(str(key))}</th><td>{escape(str(value))}</td></tr>"
        for key, value in stats.items()
        if not isinstance(value, (list, dict))
    )
    return (
        f"<div class='column'><h4>{escape(str(column['name']))} "
        f"<small>({escape(str(column['dtype']))})</small></h4>"
        f"<p>missing: {column['missing']} "
        f"({column['missing_fraction']:.1%}), "
        f"distinct: {column['distinct']}</p>"
        f"<table>{rows}</table></div>"
    )


def profile(frame: DataFrame, histogram_bins: int = 20) -> ProfileReport:
    """Profile a frame: the automated data profiling module of Figure 1."""
    columns = []
    summaries_by_name: dict[str, dict[str, Any]] = {}
    for name in frame.column_names:
        summary = column_summary(frame.column(name))
        summaries_by_name[name] = summary
        summary["histogram"] = histogram(frame.column(name), bins=histogram_bins)
        columns.append(summary)

    pearson_names, pearson_matrix = correlation_matrix(frame, "pearson")
    spearman_names, spearman_matrix = correlation_matrix(frame, "spearman")
    cramers_names, cramers_matrix = categorical_association_matrix(frame)
    duplicates = frame.duplicate_row_indices()
    correlation_pairs = pairs_from_matrix(
        pearson_names, pearson_matrix, CORRELATION_ALERT_THRESHOLD
    )

    overview = {
        "rows": frame.num_rows,
        "columns": frame.num_columns,
        "missing_cells": frame.missing_count(),
        "missing_fraction": (
            frame.missing_count() / (frame.num_rows * frame.num_columns)
            if frame.num_rows and frame.num_columns
            else 0.0
        ),
        "duplicate_rows": len(duplicates),
        "numeric_columns": len(frame.numeric_column_names()),
        "categorical_columns": len(frame.categorical_column_names()),
    }
    return ProfileReport(
        overview=overview,
        columns=columns,
        correlations={
            "pearson": {
                "columns": pearson_names,
                "matrix": [[float(v) for v in row] for row in pearson_matrix],
            },
            "spearman": {
                "columns": spearman_names,
                "matrix": [[float(v) for v in row] for row in spearman_matrix],
            },
            "cramers_v": {
                "columns": cramers_names,
                "matrix": [[float(v) for v in row] for row in cramers_matrix],
            },
        },
        missing={
            "summary": missing_summary(frame),
            "patterns": missing_patterns(frame),
        },
        alerts=generate_alerts(
            frame,
            column_summaries=summaries_by_name,
            duplicate_rows=duplicates,
            correlation_pairs=correlation_pairs,
        ),
    )

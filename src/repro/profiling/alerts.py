"""Data-quality alerts — the "potential data quality issues" flags the
profile report raises (ydata-profiling style)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..dataframe import DataFrame
from .correlations import highly_correlated_pairs
from .stats import column_summary

HIGH_MISSING = "high_missing"
CONSTANT = "constant"
HIGH_CARDINALITY = "high_cardinality"
UNIQUE = "unique"
SKEWED = "skewed"
ZEROS = "many_zeros"
HIGH_CORRELATION = "high_correlation"
DUPLICATE_ROWS = "duplicate_rows"
IMBALANCE = "class_imbalance"
SUSPICIOUS_SENTINEL = "suspicious_sentinel"

#: Numeric values that frequently disguise missing data.
SENTINEL_VALUES = (-1.0, 0.0, 9999.0, 99999.0)

#: Default |r| above which two columns are flagged as highly correlated —
#: shared with profile(), which precomputes the pairs from its own matrix.
CORRELATION_ALERT_THRESHOLD = 0.95


@dataclass(frozen=True)
class Alert:
    """One quality finding: the kind, affected column, and evidence."""

    kind: str
    column: str | None
    message: str
    details: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "column": self.column,
            "message": self.message,
            "details": self.details,
        }


def generate_alerts(
    frame: DataFrame,
    missing_threshold: float = 0.2,
    cardinality_threshold: float = 0.5,
    skew_threshold: float = 3.0,
    zeros_threshold: float = 0.25,
    correlation_threshold: float = CORRELATION_ALERT_THRESHOLD,
    imbalance_threshold: float = 0.9,
    sentinel_threshold: float = 0.01,
    column_summaries: dict[str, dict[str, Any]] | None = None,
    duplicate_rows: list[int] | None = None,
    correlation_pairs: list[tuple[str, str, float]] | None = None,
) -> list[Alert]:
    """Scan a frame and produce quality alerts.

    ``column_summaries`` / ``duplicate_rows`` let callers that already
    profiled the frame (e.g. :func:`repro.profiling.report.profile`) skip
    recomputing them.
    """
    alerts: list[Alert] = []
    thresholds = dict(locals())
    for name in frame.column_names:
        if column_summaries is not None and name in column_summaries:
            summary = column_summaries[name]
        else:
            summary = column_summary(frame.column(name))
        alerts.extend(_column_alerts(name, summary, frame.num_rows, thresholds))

    duplicates = (
        duplicate_rows
        if duplicate_rows is not None
        else frame.duplicate_row_indices()
    )
    if duplicates:
        alerts.append(
            Alert(
                DUPLICATE_ROWS,
                None,
                f"{len(duplicates)} duplicate rows",
                {"rows": duplicates[:50], "count": len(duplicates)},
            )
        )
    if correlation_pairs is None:
        correlation_pairs = highly_correlated_pairs(
            frame, threshold=correlation_threshold
        )
    for left, right, value in correlation_pairs:
        alerts.append(
            Alert(
                HIGH_CORRELATION,
                left,
                f"{left} and {right} are highly correlated ({value:.2f})",
                {"other_column": right, "correlation": value},
            )
        )
    return alerts


def _column_alerts(
    name: str, summary: dict[str, Any], n_rows: int, thresholds: dict[str, Any]
) -> list[Alert]:
    alerts: list[Alert] = []
    missing_fraction = summary["missing_fraction"]
    if missing_fraction >= thresholds["missing_threshold"]:
        alerts.append(
            Alert(
                HIGH_MISSING,
                name,
                f"{name} is missing in {missing_fraction:.0%} of rows",
                {"missing_fraction": missing_fraction},
            )
        )
    distinct = summary["distinct"]
    non_missing = summary["rows"] - summary["missing"]
    if non_missing > 0 and distinct <= 1:
        alerts.append(
            Alert(CONSTANT, name, f"{name} is constant", {"distinct": distinct})
        )
    statistics = summary["statistics"]
    if summary["is_numeric"]:
        if statistics.get("count", 0) >= 3 and abs(
            statistics.get("skewness", 0.0)
        ) >= thresholds["skew_threshold"]:
            alerts.append(
                Alert(
                    SKEWED,
                    name,
                    f"{name} is highly skewed "
                    f"(skewness {statistics['skewness']:.2f})",
                    {"skewness": statistics["skewness"]},
                )
            )
        if statistics.get("zeros_fraction", 0.0) >= thresholds["zeros_threshold"]:
            alerts.append(
                Alert(
                    ZEROS,
                    name,
                    f"{name} has {statistics['zeros_fraction']:.0%} zeros",
                    {"zeros_fraction": statistics["zeros_fraction"]},
                )
            )
        alerts.extend(_sentinel_alerts(name, statistics, thresholds))
    else:
        if non_missing > 0 and distinct == non_missing and distinct > 1:
            alerts.append(
                Alert(
                    UNIQUE,
                    name,
                    f"{name} has unique values (possible identifier)",
                    {"distinct": distinct},
                )
            )
        elif (
            non_missing > 0
            and distinct / non_missing >= thresholds["cardinality_threshold"]
            and distinct > 20
        ):
            alerts.append(
                Alert(
                    HIGH_CARDINALITY,
                    name,
                    f"{name} has high cardinality ({distinct} levels)",
                    {"distinct": distinct},
                )
            )
        mode_fraction = statistics.get("mode_fraction", 0.0)
        if distinct > 1 and mode_fraction >= thresholds["imbalance_threshold"]:
            alerts.append(
                Alert(
                    IMBALANCE,
                    name,
                    f"{name} is dominated by one level "
                    f"({mode_fraction:.0%} of rows)",
                    {"mode_fraction": mode_fraction},
                )
            )
    return alerts


def _sentinel_alerts(
    name: str, statistics: dict[str, Any], thresholds: dict[str, Any]
) -> list[Alert]:
    """Flag suspicious repeated sentinel values (FAHES-style hint)."""
    alerts = []
    count = statistics.get("count", 0)
    if count == 0:
        return alerts
    minimum = statistics.get("min")
    maximum = statistics.get("max")
    for sentinel in SENTINEL_VALUES:
        if sentinel == 0.0:
            fraction = statistics.get("zeros_fraction", 0.0)
        elif minimum is not None and sentinel in (minimum, maximum):
            # Sentinel sits exactly at the domain boundary — suspicious when
            # it is far from the bulk of the data.
            q25 = statistics.get("q25", 0.0)
            q75 = statistics.get("q75", 0.0)
            iqr = statistics.get("iqr", 0.0) or 1.0
            outside = sentinel < q25 - 3 * iqr or sentinel > q75 + 3 * iqr
            fraction = thresholds["sentinel_threshold"] if outside else 0.0
        else:
            continue
        if fraction >= thresholds["sentinel_threshold"] and sentinel != 0.0:
            alerts.append(
                Alert(
                    SUSPICIOUS_SENTINEL,
                    name,
                    f"{name} repeats the sentinel value {sentinel}",
                    {"sentinel": sentinel},
                )
            )
    return alerts

"""Automated data profiling (ydata-profiling substitute)."""

from .alerts import (
    Alert,
    CONSTANT,
    DUPLICATE_ROWS,
    HIGH_CARDINALITY,
    HIGH_CORRELATION,
    HIGH_MISSING,
    IMBALANCE,
    SKEWED,
    SUSPICIOUS_SENTINEL,
    UNIQUE,
    ZEROS,
    generate_alerts,
)
from .compare import (
    DriftFinding,
    categorical_shift,
    compare_frames,
    drift_report,
    population_stability_index,
)
from .correlations import (
    categorical_association_matrix,
    correlation_matrix,
    cramers_v,
    highly_correlated_pairs,
    pearson,
    spearman,
)
from .histogram import categorical_histogram, histogram, numeric_histogram
from .missing import co_missingness, missing_patterns, missing_summary
from .report import ProfileReport, profile
from .stats import categorical_summary, column_summary, numeric_summary

__all__ = [
    "Alert",
    "CONSTANT",
    "DUPLICATE_ROWS",
    "DriftFinding",
    "HIGH_CARDINALITY",
    "HIGH_CORRELATION",
    "HIGH_MISSING",
    "IMBALANCE",
    "ProfileReport",
    "SKEWED",
    "SUSPICIOUS_SENTINEL",
    "UNIQUE",
    "ZEROS",
    "categorical_association_matrix",
    "categorical_histogram",
    "categorical_shift",
    "categorical_summary",
    "co_missingness",
    "compare_frames",
    "drift_report",
    "population_stability_index",
    "column_summary",
    "correlation_matrix",
    "cramers_v",
    "generate_alerts",
    "highly_correlated_pairs",
    "histogram",
    "missing_patterns",
    "missing_summary",
    "numeric_histogram",
    "numeric_summary",
    "pearson",
    "profile",
    "spearman",
]

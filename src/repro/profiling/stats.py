"""Per-column descriptive statistics for the Data Profile tab.

All numeric measures are computed directly from the column's typed
backing arrays (:meth:`~repro.dataframe.Column.values_array` plus null
mask) — no per-cell Python casts on the hot path.

The kernels are chunk-aware: they iterate
:meth:`~repro.dataframe.Column.iter_chunks` (a monolithic column is one
chunk), merging per-chunk partial aggregates *exactly* where float
arithmetic allows it — integer counters (count, zeros, negatives),
element selections (min/max), and monotonicity with boundary diffs — and
gathering the per-chunk compressed payloads into one array for the
order/moment statistics (quantiles, sum, variance, skew, kurtosis),
whose values must stay bit-identical to the monolithic engine and
therefore cannot be re-associated across chunk boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..dataframe import Column
from ..dataframe.chunked import compressed_chunks, gather_compressed

__all__ = [
    "NumericPartial",
    "categorical_summary",
    "column_summary",
    "compressed_chunks",
    "gather_compressed",
    "merged_numeric_partial",
    "numeric_summary",
]


@dataclass
class NumericPartial:
    """Exactly-mergeable per-chunk aggregate of non-missing float values.

    Every field merges across chunks without float re-association:
    counts add as ints, min/max select existing elements, and the
    monotonic flags combine the within-chunk verdict with the boundary
    difference (computed exactly like ``np.diff`` across the seam).
    """

    count: int
    zeros: int
    negatives: int
    minimum: float
    maximum: float
    first: float
    last: float
    monotonic_inc: bool
    monotonic_dec: bool

    @classmethod
    def from_values(cls, values: np.ndarray) -> "NumericPartial | None":
        """Partial for one chunk's compressed values (None when empty)."""
        if len(values) == 0:
            return None
        diffs = np.diff(values)
        return cls(
            count=int(len(values)),
            zeros=int(np.sum(values == 0.0)),
            negatives=int(np.sum(values < 0.0)),
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
            first=float(values[0]),
            last=float(values[-1]),
            monotonic_inc=bool(np.all(diffs >= 0)),
            monotonic_dec=bool(np.all(diffs <= 0)),
        )

    def merge(self, other: "NumericPartial") -> "NumericPartial":
        """Exact merge with a partial covering the *next* row range."""
        seam = other.first - self.last  # np.diff across the chunk seam
        return NumericPartial(
            count=self.count + other.count,
            zeros=self.zeros + other.zeros,
            negatives=self.negatives + other.negatives,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            first=self.first,
            last=other.last,
            monotonic_inc=(
                self.monotonic_inc and other.monotonic_inc and seam >= 0
            ),
            monotonic_dec=(
                self.monotonic_dec and other.monotonic_dec and seam <= 0
            ),
        )


def merged_numeric_partial(parts: list[np.ndarray]) -> NumericPartial | None:
    """Fold per-chunk partials left to right (None when all chunks empty)."""
    merged: NumericPartial | None = None
    for part in parts:
        partial = NumericPartial.from_values(part)
        if partial is None:
            continue
        merged = partial if merged is None else merged.merge(partial)
    return merged


def numeric_summary(column: Column) -> dict[str, Any]:
    """Descriptive statistics for a numeric column.

    Includes the measures ydata-profiling reports: central tendency,
    dispersion, quantiles, shape (skew/kurtosis), zeros and negatives.
    """
    parts = compressed_chunks(column)
    partial = merged_numeric_partial(parts)
    if partial is None:
        return {"count": 0}
    values = gather_compressed(parts)
    count = partial.count
    quantiles = np.quantile(values, [0.05, 0.25, 0.5, 0.75, 0.95])
    total = float(np.sum(values))
    mean = total / count
    centered = values - mean
    pop_variance = float(np.mean(centered**2))
    pop_std = pop_variance**0.5
    # ddof=1 needs two observations; a lone value has zero dispersion.
    std = (pop_variance * count / (count - 1)) ** 0.5 if count > 1 else 0.0
    return {
        "count": count,
        "mean": mean,
        "std": std,
        "variance": float(std**2),
        "min": partial.minimum,
        "max": partial.maximum,
        "range": partial.maximum - partial.minimum,
        "q05": float(quantiles[0]),
        "q25": float(quantiles[1]),
        "median": float(quantiles[2]),
        "q75": float(quantiles[3]),
        "q95": float(quantiles[4]),
        "iqr": float(quantiles[3] - quantiles[1]),
        "skewness": _skewness(centered, pop_std),
        "kurtosis": _kurtosis(centered, pop_std),
        "sum": total,
        "zeros": partial.zeros,
        "zeros_fraction": partial.zeros / count,
        "negatives": partial.negatives,
        "coefficient_of_variation": _coefficient_of_variation(mean, std),
        "monotonic_increasing": partial.monotonic_inc,
        "monotonic_decreasing": partial.monotonic_dec,
    }


def _coefficient_of_variation(mean: float, std: float) -> float:
    """std/mean — 0.0 for dispersion-free data (even all-zero columns).

    A zero mean with zero spread means every value is identical, which is
    the *least* variable a column can be; only genuine spread around a
    zero mean is unbounded relative variation.
    """
    if mean:
        return std / mean
    return 0.0 if std == 0.0 else float("inf")


def _skewness(centered: np.ndarray, pop_std: float) -> float:
    if len(centered) < 3 or pop_std == 0.0:
        return 0.0
    return float(np.mean((centered / pop_std) ** 3))


def _kurtosis(centered: np.ndarray, pop_std: float) -> float:
    """Excess kurtosis (normal distribution scores 0)."""
    if len(centered) < 4 or pop_std == 0.0:
        return 0.0
    return float(np.mean((centered / pop_std) ** 4) - 3.0)


def categorical_summary(column: Column, top_k: int = 10) -> dict[str, Any]:
    """Descriptive statistics for a string/bool column.

    ``value_counts`` is the chunk-merge point: a chunked column folds
    per-chunk Counters (exact integer addition, first-seen key order
    preserved across sequential chunks), so ``most_common`` tie-breaking
    matches the monolithic scan bit for bit.
    """
    counts = column.value_counts()
    total = sum(counts.values())
    if total == 0:
        return {"count": 0, "distinct": 0}
    mode, mode_count = counts.most_common(1)[0]
    # Length stats need one len() per distinct level, not per cell.
    level_lengths = {value: len(str(value)) for value in counts}
    length_sum = sum(
        length * counts[value] for value, length in level_lengths.items()
    )
    return {
        "count": total,
        "distinct": len(counts),
        "distinct_fraction": len(counts) / total,
        "mode": mode,
        "mode_count": mode_count,
        "mode_fraction": mode_count / total,
        "top_frequencies": [
            {"value": value, "count": count}
            for value, count in counts.most_common(top_k)
        ],
        "min_length": min(level_lengths.values()),
        "max_length": max(level_lengths.values()),
        "mean_length": length_sum / total,
        "entropy": _entropy(list(counts.values())),
    }


def _entropy(counts: list[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    proportions = np.array(counts, dtype=float) / total
    nonzero = proportions[proportions > 0]
    return float(-np.sum(nonzero * np.log2(nonzero)))


def column_summary(column: Column) -> dict[str, Any]:
    """Full per-column profile section (type, missingness, stats)."""
    total = len(column)
    missing = column.missing_count()
    base = {
        "name": column.name,
        "dtype": column.dtype,
        "rows": total,
        "missing": missing,
        "missing_fraction": missing / total if total else 0.0,
        "distinct": len(column.unique()),
        "is_numeric": column.is_numeric(),
    }
    if column.is_numeric():
        base["statistics"] = numeric_summary(column)
    else:
        base["statistics"] = categorical_summary(column)
    return base

"""Per-column descriptive statistics for the Data Profile tab."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Column


def numeric_summary(column: Column) -> dict[str, Any]:
    """Descriptive statistics for a numeric column.

    Includes the measures ydata-profiling reports: central tendency,
    dispersion, quantiles, shape (skew/kurtosis), zeros and negatives.
    """
    values = np.array([float(v) for v in column.non_missing()], dtype=float)
    if len(values) == 0:
        return {"count": 0}
    quantiles = np.quantile(values, [0.05, 0.25, 0.5, 0.75, 0.95])
    mean = float(np.mean(values))
    std = float(np.std(values, ddof=1)) if len(values) > 1 else 0.0
    return {
        "count": int(len(values)),
        "mean": mean,
        "std": std,
        "variance": float(std**2),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
        "range": float(np.max(values) - np.min(values)),
        "q05": float(quantiles[0]),
        "q25": float(quantiles[1]),
        "median": float(quantiles[2]),
        "q75": float(quantiles[3]),
        "q95": float(quantiles[4]),
        "iqr": float(quantiles[3] - quantiles[1]),
        "skewness": _skewness(values),
        "kurtosis": _kurtosis(values),
        "sum": float(np.sum(values)),
        "zeros": int(np.sum(values == 0.0)),
        "zeros_fraction": float(np.mean(values == 0.0)),
        "negatives": int(np.sum(values < 0.0)),
        "coefficient_of_variation": float(std / mean) if mean else float("inf"),
        "monotonic_increasing": bool(np.all(np.diff(values) >= 0)),
        "monotonic_decreasing": bool(np.all(np.diff(values) <= 0)),
    }


def _skewness(values: np.ndarray) -> float:
    if len(values) < 3:
        return 0.0
    std = np.std(values)
    if std == 0.0:
        return 0.0
    return float(np.mean(((values - np.mean(values)) / std) ** 3))


def _kurtosis(values: np.ndarray) -> float:
    """Excess kurtosis (normal distribution scores 0)."""
    if len(values) < 4:
        return 0.0
    std = np.std(values)
    if std == 0.0:
        return 0.0
    return float(np.mean(((values - np.mean(values)) / std) ** 4) - 3.0)


def categorical_summary(column: Column, top_k: int = 10) -> dict[str, Any]:
    """Descriptive statistics for a string/bool column."""
    values = column.non_missing()
    counts = column.value_counts()
    if not values:
        return {"count": 0, "distinct": 0}
    mode, mode_count = counts.most_common(1)[0]
    lengths = [len(str(v)) for v in values]
    return {
        "count": len(values),
        "distinct": len(counts),
        "distinct_fraction": len(counts) / len(values),
        "mode": mode,
        "mode_count": mode_count,
        "mode_fraction": mode_count / len(values),
        "top_frequencies": [
            {"value": value, "count": count}
            for value, count in counts.most_common(top_k)
        ],
        "min_length": min(lengths),
        "max_length": max(lengths),
        "mean_length": float(np.mean(lengths)),
        "entropy": _entropy(list(counts.values())),
    }


def _entropy(counts: list[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    proportions = np.array(counts, dtype=float) / total
    nonzero = proportions[proportions > 0]
    return float(-np.sum(nonzero * np.log2(nonzero)))


def column_summary(column: Column) -> dict[str, Any]:
    """Full per-column profile section (type, missingness, stats)."""
    total = len(column)
    missing = column.missing_count()
    base = {
        "name": column.name,
        "dtype": column.dtype,
        "rows": total,
        "missing": missing,
        "missing_fraction": missing / total if total else 0.0,
        "distinct": len(column.unique()),
        "is_numeric": column.is_numeric(),
    }
    if column.is_numeric():
        base["statistics"] = numeric_summary(column)
    else:
        base["statistics"] = categorical_summary(column)
    return base

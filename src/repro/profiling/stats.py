"""Per-column descriptive statistics for the Data Profile tab.

All numeric measures are computed directly from the column's typed
backing array (:meth:`~repro.dataframe.Column.values_array` plus null
mask) — no per-cell Python casts on the hot path.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Column


def numeric_summary(column: Column) -> dict[str, Any]:
    """Descriptive statistics for a numeric column.

    Includes the measures ydata-profiling reports: central tendency,
    dispersion, quantiles, shape (skew/kurtosis), zeros and negatives.
    """
    mask = column.mask()
    values = column.values_array()[~mask].astype(float)
    if len(values) == 0:
        return {"count": 0}
    count = len(values)
    quantiles = np.quantile(values, [0.05, 0.25, 0.5, 0.75, 0.95])
    total = float(np.sum(values))
    mean = total / count
    centered = values - mean
    pop_variance = float(np.mean(centered**2))
    pop_std = pop_variance**0.5
    # ddof=1 needs two observations; a lone value has zero dispersion.
    std = (pop_variance * count / (count - 1)) ** 0.5 if count > 1 else 0.0
    minimum = float(np.min(values))
    maximum = float(np.max(values))
    diffs = np.diff(values)
    zeros = int(np.sum(values == 0.0))
    return {
        "count": int(count),
        "mean": mean,
        "std": std,
        "variance": float(std**2),
        "min": minimum,
        "max": maximum,
        "range": maximum - minimum,
        "q05": float(quantiles[0]),
        "q25": float(quantiles[1]),
        "median": float(quantiles[2]),
        "q75": float(quantiles[3]),
        "q95": float(quantiles[4]),
        "iqr": float(quantiles[3] - quantiles[1]),
        "skewness": _skewness(centered, pop_std),
        "kurtosis": _kurtosis(centered, pop_std),
        "sum": total,
        "zeros": zeros,
        "zeros_fraction": zeros / count,
        "negatives": int(np.sum(values < 0.0)),
        "coefficient_of_variation": _coefficient_of_variation(mean, std),
        "monotonic_increasing": bool(np.all(diffs >= 0)),
        "monotonic_decreasing": bool(np.all(diffs <= 0)),
    }


def _coefficient_of_variation(mean: float, std: float) -> float:
    """std/mean — 0.0 for dispersion-free data (even all-zero columns).

    A zero mean with zero spread means every value is identical, which is
    the *least* variable a column can be; only genuine spread around a
    zero mean is unbounded relative variation.
    """
    if mean:
        return std / mean
    return 0.0 if std == 0.0 else float("inf")


def _skewness(centered: np.ndarray, pop_std: float) -> float:
    if len(centered) < 3 or pop_std == 0.0:
        return 0.0
    return float(np.mean((centered / pop_std) ** 3))


def _kurtosis(centered: np.ndarray, pop_std: float) -> float:
    """Excess kurtosis (normal distribution scores 0)."""
    if len(centered) < 4 or pop_std == 0.0:
        return 0.0
    return float(np.mean((centered / pop_std) ** 4) - 3.0)


def categorical_summary(column: Column, top_k: int = 10) -> dict[str, Any]:
    """Descriptive statistics for a string/bool column."""
    counts = column.value_counts()
    total = sum(counts.values())
    if total == 0:
        return {"count": 0, "distinct": 0}
    mode, mode_count = counts.most_common(1)[0]
    # Length stats need one len() per distinct level, not per cell.
    level_lengths = {value: len(str(value)) for value in counts}
    length_sum = sum(
        length * counts[value] for value, length in level_lengths.items()
    )
    return {
        "count": total,
        "distinct": len(counts),
        "distinct_fraction": len(counts) / total,
        "mode": mode,
        "mode_count": mode_count,
        "mode_fraction": mode_count / total,
        "top_frequencies": [
            {"value": value, "count": count}
            for value, count in counts.most_common(top_k)
        ],
        "min_length": min(level_lengths.values()),
        "max_length": max(level_lengths.values()),
        "mean_length": length_sum / total,
        "entropy": _entropy(list(counts.values())),
    }


def _entropy(counts: list[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    proportions = np.array(counts, dtype=float) / total
    nonzero = proportions[proportions > 0]
    return float(-np.sum(nonzero * np.log2(nonzero)))


def column_summary(column: Column) -> dict[str, Any]:
    """Full per-column profile section (type, missingness, stats)."""
    total = len(column)
    missing = column.missing_count()
    base = {
        "name": column.name,
        "dtype": column.dtype,
        "rows": total,
        "missing": missing,
        "missing_fraction": missing / total if total else 0.0,
        "distinct": len(column.unique()),
        "is_numeric": column.is_numeric(),
    }
    if column.is_numeric():
        base["statistics"] = numeric_summary(column)
    else:
        base["statistics"] = categorical_summary(column)
    return base

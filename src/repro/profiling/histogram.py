"""Histogram computation for the profile report's distribution plots."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Column


def numeric_histogram(column: Column, bins: int = 20) -> dict[str, Any]:
    """Equal-width histogram of a numeric column's non-missing values."""
    values = column.values_array()[~column.mask()].astype(float)
    if len(values) == 0:
        return {"bin_edges": [], "counts": []}
    if bins < 1:
        raise ValueError("bins must be >= 1")
    counts, edges = np.histogram(values, bins=bins)
    return {
        "bin_edges": [float(edge) for edge in edges],
        "counts": [int(count) for count in counts],
    }


def categorical_histogram(column: Column, top_k: int = 15) -> dict[str, Any]:
    """Frequency bars for the most common categories (+ grouped remainder)."""
    counts = column.value_counts()
    common = counts.most_common(top_k)
    other = sum(counts.values()) - sum(count for _, count in common)
    labels = [str(value) for value, _ in common]
    values = [int(count) for _, count in common]
    if other > 0:
        labels.append("(other)")
        values.append(int(other))
    return {"labels": labels, "counts": values}


def histogram(column: Column, bins: int = 20, top_k: int = 15) -> dict[str, Any]:
    """Type-appropriate histogram for one column."""
    if column.is_numeric():
        return {"kind": "numeric", **numeric_histogram(column, bins)}
    return {"kind": "categorical", **categorical_histogram(column, top_k)}

"""Histogram computation for the profile report's distribution plots.

Numeric histograms merge across chunks exactly: one partial pass finds
the global value range, the bin edges are derived from it with numpy's
own edge rule, and per-chunk integer bin counts over those shared edges
add up to precisely the monolithic ``np.histogram`` result (numpy's
uniform-bin fast path corrects rounding against the explicit edges, so
both binning routes agree element for element). Categorical histograms
ride on the chunk-merged ``value_counts`` frequency tables.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..dataframe import Column
from ..dataframe.chunked import compressed_chunks


def numeric_histogram(column: Column, bins: int = 20) -> dict[str, Any]:
    """Equal-width histogram of a numeric column's non-missing values."""
    parts = [part for part in compressed_chunks(column) if len(part)]
    if not parts:
        return {"bin_edges": [], "counts": []}
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if len(parts) == 1:
        counts, edges = np.histogram(parts[0], bins=bins)
    else:
        low = min(float(np.min(part)) for part in parts)
        high = max(float(np.max(part)) for part in parts)
        edges = np.histogram_bin_edges(np.array([low, high]), bins=bins)
        counts = np.zeros(bins, dtype=np.int64)
        for part in parts:
            counts += np.histogram(part, bins=edges)[0]
    return {
        "bin_edges": [float(edge) for edge in edges],
        "counts": [int(count) for count in counts],
    }


def categorical_histogram(column: Column, top_k: int = 15) -> dict[str, Any]:
    """Frequency bars for the most common categories (+ grouped remainder)."""
    counts = column.value_counts()
    common = counts.most_common(top_k)
    other = sum(counts.values()) - sum(count for _, count in common)
    labels = [str(value) for value, _ in common]
    values = [int(count) for _, count in common]
    if other > 0:
        labels.append("(other)")
        values.append(int(other))
    return {"labels": labels, "counts": values}


def histogram(column: Column, bins: int = 20, top_k: int = 15) -> dict[str, Any]:
    """Type-appropriate histogram for one column."""
    if column.is_numeric():
        return {"kind": "numeric", **numeric_histogram(column, bins)}
    return {"kind": "categorical", **categorical_histogram(column, top_k)}

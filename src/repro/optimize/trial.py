"""Trials: the unit of evaluation in a study."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .distributions import Categorical, Distribution, FloatUniform, IntUniform

RUNNING = "running"
COMPLETE = "complete"
FAILED = "failed"
PRUNED = "pruned"


class TrialPruned(Exception):
    """Raised inside an objective to abandon the current trial."""


@dataclass
class FrozenTrial:
    """Immutable record of a finished trial."""

    number: int
    params: dict[str, Any]
    distributions: dict[str, Distribution]
    value: float | None
    state: str
    user_attrs: dict[str, Any] = field(default_factory=dict)
    duration_seconds: float = 0.0


class Trial:
    """Live trial handle: the objective calls ``suggest_*`` on it.

    A sampler can pre-seed parameter values; anything not pre-seeded is
    sampled from its distribution on first request.
    """

    def __init__(
        self,
        number: int,
        rng: np.random.Generator,
        seeded_params: dict[str, Any] | None = None,
    ) -> None:
        self.number = number
        self.params: dict[str, Any] = {}
        self.distributions: dict[str, Distribution] = {}
        self.user_attrs: dict[str, Any] = {}
        self._rng = rng
        self._seeded = dict(seeded_params or {})
        self._intermediate: dict[int, float] = {}

    # ------------------------------------------------------------------
    def _suggest(self, name: str, distribution: Distribution) -> Any:
        if name in self.params:
            return self.params[name]
        if name in self._seeded and distribution.contains(self._seeded[name]):
            value = self._seeded[name]
        else:
            value = distribution.sample(self._rng)
        self.params[name] = value
        self.distributions[name] = distribution
        return value

    def suggest_categorical(self, name: str, choices: list[Any]) -> Any:
        return self._suggest(name, Categorical(tuple(choices)))

    def suggest_int(self, name: str, low: int, high: int, step: int = 1) -> int:
        return int(self._suggest(name, IntUniform(low, high, step)))

    def suggest_float(
        self, name: str, low: float, high: float, log: bool = False
    ) -> float:
        return float(self._suggest(name, FloatUniform(low, high, log)))

    # ------------------------------------------------------------------
    def set_user_attr(self, key: str, value: Any) -> None:
        self.user_attrs[key] = value

    def report(self, value: float, step: int) -> None:
        """Record an intermediate value (used by pruners)."""
        self._intermediate[step] = float(value)

    def intermediate_values(self) -> dict[int, float]:
        return dict(self._intermediate)

"""Samplers: random, TPE (sequential model-based), and grid.

The TPE sampler is the "Bayesian hyperparameter optimization algorithm"
the paper delegates to Optuna (§4): past trials are split into a good and
a bad set, per-parameter densities l(x) and g(x) are estimated for each
set, and candidates maximizing l(x)/g(x) are proposed.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

import numpy as np

from .distributions import (
    Categorical,
    Distribution,
    FloatUniform,
    IntUniform,
    grid_points,
)
from .trial import COMPLETE, FrozenTrial


class Sampler:
    """Proposes parameter values for the next trial."""

    def seed_params(
        self,
        history: Sequence[FrozenTrial],
        direction: str,
        rng: np.random.Generator,
    ) -> dict[str, Any]:
        raise NotImplementedError


class RandomSampler(Sampler):
    """Independent sampling from each distribution (no seeding needed)."""

    def seed_params(
        self,
        history: Sequence[FrozenTrial],
        direction: str,
        rng: np.random.Generator,
    ) -> dict[str, Any]:
        return {}


class GridSampler(Sampler):
    """Exhaustive sweep over the cartesian product of grid points.

    The grid is built lazily from the distributions observed in the first
    trial; until then it behaves randomly.
    """

    def __init__(self, resolution: int = 4) -> None:
        self.resolution = resolution
        self._grid: list[dict[str, Any]] | None = None
        self._cursor = 0

    def seed_params(
        self,
        history: Sequence[FrozenTrial],
        direction: str,
        rng: np.random.Generator,
    ) -> dict[str, Any]:
        if self._grid is None:
            if not history:
                return {}
            self._grid = self._build_grid(history[0].distributions)
        if not self._grid:
            return {}
        params = self._grid[self._cursor % len(self._grid)]
        self._cursor += 1
        return dict(params)

    def _build_grid(
        self, distributions: dict[str, Distribution]
    ) -> list[dict[str, Any]]:
        names = sorted(distributions)
        axes = [grid_points(distributions[n], self.resolution) for n in names]
        return [
            dict(zip(names, combo)) for combo in itertools.product(*axes)
        ]


class TPESampler(Sampler):
    """Tree-structured Parzen Estimator over independent parameters."""

    def __init__(
        self,
        n_startup_trials: int = 5,
        gamma: float = 0.25,
        n_candidates: int = 24,
    ) -> None:
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        self.n_startup_trials = n_startup_trials
        self.gamma = gamma
        self.n_candidates = n_candidates

    # ------------------------------------------------------------------
    def seed_params(
        self,
        history: Sequence[FrozenTrial],
        direction: str,
        rng: np.random.Generator,
    ) -> dict[str, Any]:
        complete = [t for t in history if t.state == COMPLETE and t.value is not None]
        if len(complete) < self.n_startup_trials:
            return {}
        ordered = sorted(
            complete,
            key=lambda t: t.value,
            reverse=(direction == "maximize"),
        )
        n_good = max(1, int(np.ceil(self.gamma * len(ordered))))
        good = ordered[:n_good]
        bad = ordered[n_good:] or ordered[-1:]

        distributions: dict[str, Distribution] = {}
        for trial in complete:
            distributions.update(trial.distributions)

        seeded: dict[str, Any] = {}
        for name, distribution in distributions.items():
            good_values = [t.params[name] for t in good if name in t.params]
            bad_values = [t.params[name] for t in bad if name in t.params]
            if not good_values:
                continue
            seeded[name] = self._propose(
                distribution, good_values, bad_values, rng
            )
        return seeded

    # ------------------------------------------------------------------
    def _propose(
        self,
        distribution: Distribution,
        good_values: list[Any],
        bad_values: list[Any],
        rng: np.random.Generator,
    ) -> Any:
        if isinstance(distribution, Categorical):
            return self._propose_categorical(
                distribution, good_values, bad_values, rng
            )
        return self._propose_numeric(distribution, good_values, bad_values, rng)

    def _propose_categorical(
        self,
        distribution: Categorical,
        good_values: list[Any],
        bad_values: list[Any],
        rng: np.random.Generator,
    ) -> Any:
        choices = distribution.choices
        alpha = 1.0
        good_weights = np.array(
            [good_values.count(c) + alpha for c in choices], dtype=float
        )
        bad_weights = np.array(
            [bad_values.count(c) + alpha for c in choices], dtype=float
        )
        ratio = (good_weights / good_weights.sum()) / (
            bad_weights / bad_weights.sum()
        )
        probabilities = ratio / ratio.sum()
        return choices[int(rng.choice(len(choices), p=probabilities))]

    def _propose_numeric(
        self,
        distribution: Distribution,
        good_values: list[Any],
        bad_values: list[Any],
        rng: np.random.Generator,
    ) -> Any:
        if isinstance(distribution, IntUniform):
            low, high = float(distribution.low), float(distribution.high)
        elif isinstance(distribution, FloatUniform):
            low, high = distribution.low, distribution.high
        else:
            return distribution.sample(rng)
        span = max(high - low, 1e-12)
        good = np.array([float(v) for v in good_values])
        bad = np.array([float(v) for v in bad_values]) if bad_values else good
        bandwidth = max(span / 6.0, 1e-9)

        candidates = []
        for _ in range(self.n_candidates):
            center = float(good[int(rng.integers(len(good)))])
            value = float(np.clip(rng.normal(center, bandwidth), low, high))
            candidates.append(value)

        def log_density(points: np.ndarray, value: float) -> float:
            kernel = np.exp(-0.5 * ((points - value) / bandwidth) ** 2)
            return float(np.log(kernel.mean() + 1e-12))

        best = max(
            candidates,
            key=lambda v: log_density(good, v) - log_density(bad, v),
        )
        if isinstance(distribution, IntUniform):
            step = distribution.step
            snapped = distribution.low + step * round(
                (best - distribution.low) / step
            )
            return int(np.clip(snapped, distribution.low, distribution.high))
        return best

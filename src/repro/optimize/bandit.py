"""Epsilon-greedy bandit sampler (paper future work 3).

The paper's outlook suggests "reinforcement learning for dynamic tool
selection": treat each categorical choice (detector, repairer) as a bandit
arm, keep running reward estimates from completed trials, exploit the best
arms with probability 1-epsilon and explore uniformly otherwise. Numeric
hyperparameters fall back to random sampling.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .distributions import Categorical, Distribution
from .samplers import Sampler
from .trial import COMPLETE, FrozenTrial


class BanditSampler(Sampler):
    """Per-parameter epsilon-greedy selection over categorical arms."""

    def __init__(self, epsilon: float = 0.2, decay: float = 0.95) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.epsilon = epsilon
        self.decay = decay
        self._round = 0

    def seed_params(
        self,
        history: Sequence[FrozenTrial],
        direction: str,
        rng: np.random.Generator,
    ) -> dict[str, Any]:
        complete = [
            trial
            for trial in history
            if trial.state == COMPLETE and trial.value is not None
        ]
        if not complete:
            return {}
        self._round += 1
        epsilon = self.epsilon * (self.decay ** self._round)

        distributions: dict[str, Distribution] = {}
        for trial in complete:
            distributions.update(trial.distributions)

        seeded: dict[str, Any] = {}
        for name, distribution in distributions.items():
            if not isinstance(distribution, Categorical):
                continue  # numeric knobs stay randomly sampled
            if rng.random() < epsilon:
                continue  # explore: leave unseeded -> uniform sample
            best_arm = self._best_arm(
                complete, name, distribution, direction
            )
            if best_arm is not None:
                seeded[name] = best_arm
        return seeded

    def _best_arm(
        self,
        trials: Sequence[FrozenTrial],
        name: str,
        distribution: Categorical,
        direction: str,
    ) -> Any:
        rewards: dict[Any, list[float]] = {}
        for trial in trials:
            if name in trial.params:
                rewards.setdefault(trial.params[name], []).append(trial.value)
        scored = {
            arm: float(np.mean(values)) for arm, values in rewards.items()
        }
        if not scored:
            return None
        # Prefer untried arms once per round so every arm gets explored.
        untried = [arm for arm in distribution.choices if arm not in scored]
        if untried and self._round <= len(distribution.choices):
            return untried[0]
        if direction == "minimize":
            return min(scored, key=scored.get)
        return max(scored, key=scored.get)

"""Study — the optimization loop driving iterative cleaning (§4)."""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from .samplers import Sampler, TPESampler
from .trial import COMPLETE, FAILED, PRUNED, FrozenTrial, Trial, TrialPruned

MINIMIZE = "minimize"
MAXIMIZE = "maximize"

Objective = Callable[[Trial], float]


class Study:
    """Sequential optimization of an objective over suggested parameters."""

    def __init__(
        self,
        direction: str = MINIMIZE,
        sampler: Sampler | None = None,
        seed: int = 0,
    ) -> None:
        if direction not in (MINIMIZE, MAXIMIZE):
            raise ValueError("direction must be 'minimize' or 'maximize'")
        self.direction = direction
        self.sampler = sampler if sampler is not None else TPESampler()
        self.trials: list[FrozenTrial] = []
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def optimize(
        self,
        objective: Objective,
        n_trials: int,
        catch_exceptions: bool = False,
        callback: Callable[[FrozenTrial], None] | None = None,
    ) -> None:
        """Run ``n_trials`` sequential trials of the objective."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        for _ in range(n_trials):
            seeded = self.sampler.seed_params(
                self.trials, self.direction, self._rng
            )
            trial = Trial(len(self.trials), self._rng, seeded)
            start = time.perf_counter()
            state = COMPLETE
            value: float | None = None
            try:
                value = float(objective(trial))
            except TrialPruned:
                state = PRUNED
            except Exception:
                if not catch_exceptions:
                    raise
                state = FAILED
            frozen = FrozenTrial(
                number=trial.number,
                params=dict(trial.params),
                distributions=dict(trial.distributions),
                value=value,
                state=state,
                user_attrs=dict(trial.user_attrs),
                duration_seconds=time.perf_counter() - start,
            )
            self.trials.append(frozen)
            if callback is not None:
                callback(frozen)

    # ------------------------------------------------------------------
    def completed_trials(self) -> list[FrozenTrial]:
        return [t for t in self.trials if t.state == COMPLETE and t.value is not None]

    @property
    def best_trial(self) -> FrozenTrial:
        completed = self.completed_trials()
        if not completed:
            raise RuntimeError("no completed trials")
        if self.direction == MINIMIZE:
            return min(completed, key=lambda t: t.value)
        return max(completed, key=lambda t: t.value)

    @property
    def best_value(self) -> float:
        return float(self.best_trial.value)

    @property
    def best_params(self) -> dict[str, Any]:
        return dict(self.best_trial.params)

    def best_value_history(self) -> list[float]:
        """Running best value after each completed trial."""
        history: list[float] = []
        best: float | None = None
        for trial in self.trials:
            if trial.state == COMPLETE and trial.value is not None:
                if best is None:
                    best = trial.value
                elif self.direction == MINIMIZE:
                    best = min(best, trial.value)
                else:
                    best = max(best, trial.value)
            if best is not None:
                history.append(best)
        return history


def create_study(
    direction: str = MINIMIZE,
    sampler: Sampler | None = None,
    seed: int = 0,
) -> Study:
    """Optuna-style factory."""
    return Study(direction=direction, sampler=sampler, seed=seed)

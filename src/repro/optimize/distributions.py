"""Search-space distributions for the hyperparameter optimizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np


class Distribution:
    """Base class for parameter distributions."""

    def sample(self, rng: np.random.Generator) -> Any:
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class Categorical(Distribution):
    """Uniform choice over a finite set of values."""

    choices: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError("Categorical needs at least one choice")

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(len(self.choices)))]

    def contains(self, value: Any) -> bool:
        return value in self.choices


@dataclass(frozen=True)
class IntUniform(Distribution):
    """Uniform integers in [low, high] inclusive, optional step."""

    low: int
    high: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("high must be >= low")
        if self.step < 1:
            raise ValueError("step must be >= 1")

    def sample(self, rng: np.random.Generator) -> int:
        count = (self.high - self.low) // self.step + 1
        return self.low + self.step * int(rng.integers(count))

    def contains(self, value: Any) -> bool:
        if not isinstance(value, (int, np.integer)):
            return False
        return (
            self.low <= value <= self.high
            and (value - self.low) % self.step == 0
        )


@dataclass(frozen=True)
class FloatUniform(Distribution):
    """Uniform floats in [low, high]; optionally log-scaled."""

    low: float
    high: float
    log: bool = False

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("high must be >= low")
        if self.log and self.low <= 0:
            raise ValueError("log scale requires positive bounds")

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(
                np.exp(rng.uniform(np.log(self.low), np.log(self.high)))
            )
        return float(rng.uniform(self.low, self.high))

    def contains(self, value: Any) -> bool:
        if not isinstance(value, (int, float, np.floating)):
            return False
        return self.low <= float(value) <= self.high


def grid_points(distribution: Distribution, resolution: int = 5) -> Sequence[Any]:
    """Representative points for grid search."""
    if isinstance(distribution, Categorical):
        return list(distribution.choices)
    if isinstance(distribution, IntUniform):
        values = list(range(distribution.low, distribution.high + 1, distribution.step))
        if len(values) <= resolution:
            return values
        picks = np.linspace(0, len(values) - 1, resolution).astype(int)
        return [values[int(i)] for i in picks]
    if isinstance(distribution, FloatUniform):
        if distribution.log:
            return [
                float(v)
                for v in np.exp(
                    np.linspace(
                        np.log(distribution.low),
                        np.log(distribution.high),
                        resolution,
                    )
                )
            ]
        return [
            float(v)
            for v in np.linspace(distribution.low, distribution.high, resolution)
        ]
    raise TypeError(f"unknown distribution {type(distribution).__name__}")

"""Hyperparameter optimization (Optuna substitute): Study/Trial/TPE."""

from .bandit import BanditSampler
from .distributions import (
    Categorical,
    Distribution,
    FloatUniform,
    IntUniform,
    grid_points,
)
from .samplers import GridSampler, RandomSampler, Sampler, TPESampler
from .study import MAXIMIZE, MINIMIZE, Study, create_study
from .trial import (
    COMPLETE,
    FAILED,
    PRUNED,
    RUNNING,
    FrozenTrial,
    Trial,
    TrialPruned,
)

__all__ = [
    "BanditSampler",
    "COMPLETE",
    "Categorical",
    "Distribution",
    "FAILED",
    "FloatUniform",
    "FrozenTrial",
    "GridSampler",
    "IntUniform",
    "MAXIMIZE",
    "MINIMIZE",
    "PRUNED",
    "RUNNING",
    "RandomSampler",
    "Sampler",
    "Study",
    "TPESampler",
    "Trial",
    "TrialPruned",
    "create_study",
    "grid_points",
]

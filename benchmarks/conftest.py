"""Shared benchmark helpers: dataset caches and report printing."""

from __future__ import annotations

import pytest

from repro.ingestion import make_dirty

#: Corruption profile for the Figure-3 labeling experiments: error budget
#: dominated by hard (in-domain value swap) errors, which is what keeps
#: RAHA's F1 in the paper's 0.3-0.6 band and makes the tuple sampler visit
#: clean tuples (reviewed > budget).
LABELING_PROFILE = dict(
    missing_rate=0.0075,
    outlier_rate=0.0075,
    disguised_rate=0.0075,
    subtle_rate=0.06,
)

BEERS_LABELING_PROFILE = dict(
    missing_rate=0.01,
    outlier_rate=0.01,
    disguised_rate=0.01,
    typo_rate=0.02,
    swap_rate=0.03,
    subtle_rate=0.03,
)


@pytest.fixture(scope="session")
def nasa_bundle():
    return make_dirty("nasa", seed=1)


@pytest.fixture(scope="session")
def beers_bundle():
    return make_dirty("beers", seed=1)


@pytest.fixture(scope="session")
def hospital_bundle():
    return make_dirty("hospital", seed=1)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one paper-style result table to the benchmark log."""
    widths = [
        max(len(str(header)), max((len(str(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))

"""Out-of-core join scaling — partitioned join of frames ~6x the budget.

Two CSVs are streamed into one :class:`~repro.dataframe.SpillStore`
whose resident budget is a small fraction of either table, then joined
with the partitioned hash strategy (key buckets spill through the same
store) and aggregated with the chunk-native ``group_by`` pushdown. The
store counters prove the operators ran out-of-core: spilled bytes are
several multiples of the budget while peak resident shard bytes never
exceed it, and the inputs are still spilled afterwards — the join
streamed from disk instead of densifying either table.
"""

from __future__ import annotations

import resource
import time

import numpy as np

from repro.dataframe import (
    DataFrame,
    SpillStore,
    group_by,
    join,
    read_csv_text_chunked,
    to_csv_text,
)

from conftest import print_table

N_LEFT = 60_000
N_RIGHT = 20_000
N_KEYS = 5_000
CHUNK_SIZE = 4_096
BUDGET_BYTES = 256 * 1024  # each input's shard bytes are ~6x this


def _left_csv_text(n_rows: int) -> str:
    rng = np.random.default_rng(7)
    missing = rng.random(n_rows) < 0.01
    return to_csv_text(
        DataFrame.from_dict(
            {
                "key": [
                    None if m else int(v)
                    for m, v in zip(missing, rng.integers(0, N_KEYS, n_rows))
                ],
                "x0": [float(v) for v in rng.normal(0.0, 1.0, n_rows)],
                "x1": [float(v) for v in rng.normal(0.0, 1.0, n_rows)],
                "tag": [f"t{int(v)}" for v in rng.integers(0, 40, n_rows)],
            }
        )
    )


def _right_csv_text(n_rows: int) -> str:
    rng = np.random.default_rng(13)
    return to_csv_text(
        DataFrame.from_dict(
            {
                "key": [int(v) for v in rng.integers(0, N_KEYS, n_rows)],
                "w0": [float(v) for v in rng.normal(5.0, 2.0, n_rows)],
                "label": [f"l{int(v)}" for v in rng.integers(0, 25, n_rows)],
            }
        )
    )


def test_partitioned_join_scale(benchmark):
    left_text = _left_csv_text(N_LEFT)
    right_text = _right_csv_text(N_RIGHT)

    def run() -> dict:
        store = SpillStore(budget_bytes=BUDGET_BYTES)
        start = time.perf_counter()
        left = read_csv_text_chunked(
            left_text, chunk_size=CHUNK_SIZE, spill=store
        )
        right = read_csv_text_chunked(
            right_text, chunk_size=CHUNK_SIZE, spill=store
        )
        ingest_seconds = time.perf_counter() - start
        input_spilled_bytes = store.stats()["spilled_bytes"]
        start = time.perf_counter()
        joined = join(
            left, right, ["key"], how="inner", strategy="partitioned"
        )
        join_seconds = time.perf_counter() - start
        start = time.perf_counter()
        grouped = group_by(
            left,
            ["tag"],
            {"n": ("key", "count"), "x0_mean": ("x0", "mean")},
        )
        group_seconds = time.perf_counter() - start
        still_spilled = sum(
            1
            for frame in (left, right)
            for name in frame.column_names
            if frame.column(name).spilled
        )
        return {
            "stats": store.stats(),
            "input_spilled_bytes": input_spilled_bytes,
            "ingest": ingest_seconds,
            "join": join_seconds,
            "group": group_seconds,
            "joined_rows": joined.num_rows,
            "group_rows": grouped.num_rows,
            "still_spilled": still_spilled,
            "n_columns": left.num_columns + right.num_columns,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["stats"]
    rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print_table(
        f"Partitioned join scaling ({N_LEFT}x{N_RIGHT} rows, "
        f"{CHUNK_SIZE}-row chunks)",
        ["metric", "value"],
        [
            ["spill budget", f"{stats['budget_bytes'] / 1024:.0f} KiB"],
            [
                "input spilled",
                f"{result['input_spilled_bytes'] / 1024:.0f} KiB",
            ],
            [
                "input / budget",
                f"{result['input_spilled_bytes'] / stats['budget_bytes']:.1f}x",
            ],
            [
                "total spilled (incl. buckets)",
                f"{stats['spilled_bytes'] / 1024:.0f} KiB",
            ],
            ["peak resident", f"{stats['peak_resident_bytes'] / 1024:.1f} KiB"],
            ["spilled shards", stats["spilled_shards"]],
            ["shard loads", stats["loads"]],
            ["evictions", stats["evictions"]],
            ["joined rows", result["joined_rows"]],
            ["group rows", result["group_rows"]],
            ["ingest [s]", f"{result['ingest']:.2f}"],
            ["join [s]", f"{result['join']:.2f}"],
            ["group_by [s]", f"{result['group']:.2f}"],
            ["peak RSS", f"{rss_mib:.0f} MiB"],
        ],
    )
    # Each input must dwarf the budget — the issue's 2x(6x-budget) shape.
    assert result["input_spilled_bytes"] >= 2 * 4 * stats["budget_bytes"]
    # Residency contract: bucket shards are size-capped, so the LRU
    # never overshoots even while the join spills and reloads buckets.
    assert stats["peak_resident_bytes"] <= stats["budget_bytes"]
    # The operators streamed: join + group_by left every column spilled.
    assert result["still_spilled"] == result["n_columns"]
    assert result["joined_rows"] > 0
    assert stats["evictions"] > 0
    benchmark.extra_info["peak_resident_bytes"] = stats["peak_resident_bytes"]
    benchmark.extra_info["joined_rows"] = result["joined_rows"]

"""Shared workload for the incremental re-profile budget and benchmark.

One definition of the 20-column frame shape and the 1%-of-cells
two-column repair, imported by both
``tests/perf/test_hot_path_regression.py`` (the >= 5x budget) and
``benchmarks/bench_incremental_session.py`` (the recorded trajectory),
so the two always measure the same workload.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.repair.base import RepairResult

N_NUMERIC = 16
N_CODES = 2
N_STRINGS = 2
N_COLUMNS = N_NUMERIC + N_CODES + N_STRINGS

#: The two columns every repair patch lands in (detection flags a strict
#: column subset; incremental re-profiling serves the rest from cache).
REPAIRED_COLUMNS = ("num0", "code0")


def make_incremental_frame(n_rows: int, seed: int = 17) -> DataFrame:
    """Mostly-complete numeric frame plus int codes and categoricals.

    Complete numeric columns keep the Spearman full-rank fast path (the
    realistic shape); the code/string columns give the categorical and
    association kernels real work.
    """
    rng = np.random.default_rng(seed)
    data: dict = {}
    for j in range(N_NUMERIC):
        data[f"num{j}"] = [float(v) for v in rng.normal(0.0, 1.0, n_rows)]
    for j in range(N_CODES):
        data[f"code{j}"] = [int(v) for v in rng.integers(0, 500, n_rows)]
    for j in range(N_STRINGS):
        data[f"cat{j}"] = [f"g{int(v)}" for v in rng.integers(0, 50, n_rows)]
    return DataFrame.from_dict(data)


def one_percent_repair(frame: DataFrame, seed: int) -> RepairResult:
    """1% of all cells repaired, split across :data:`REPAIRED_COLUMNS`."""
    rng = np.random.default_rng(seed)
    per_column = (frame.num_rows * frame.num_columns) // (
        100 * len(REPAIRED_COLUMNS)
    )
    repairs: dict = {}
    for name in REPAIRED_COLUMNS:
        rows = rng.choice(frame.num_rows, size=per_column, replace=False)
        for row in rows.tolist():
            repairs[(row, name)] = (
                float(rng.normal())
                if name.startswith("num")
                else int(rng.integers(0, 500))
            )
    return RepairResult(tool="perf", repairs=repairs)

"""Reproducibility features (§5): DataSheets, tracking, and versioning.

Times the overhead the reproducibility layer adds to a pipeline run and
verifies its contracts end-to-end: DataSheet replay equality, Delta version
counts across detect/repair, and tracked runs in the "Detection"/"Repair"
experiments.
"""

from __future__ import annotations

import time

from repro.core import DataLens, DataSheet

from conftest import print_table


def _pipeline_with_reproducibility(tmp_dir, bundle) -> dict:
    timings = {}
    lens = DataLens(tmp_dir, seed=0)
    session = lens.ingest_frame("nasa", bundle.dirty)

    start = time.perf_counter()
    session.run_detection(["iqr", "sd", "mv_detector", "fahes"])
    timings["detection_s"] = time.perf_counter() - start

    start = time.perf_counter()
    repaired = session.run_repair("ml_imputer")
    timings["repair_s"] = time.perf_counter() - start

    start = time.perf_counter()
    sheet_path = session.save_datasheet()
    timings["datasheet_s"] = time.perf_counter() - start

    start = time.perf_counter()
    replayed = DataSheet.load(sheet_path).replay(bundle.dirty)
    timings["replay_s"] = time.perf_counter() - start

    timings["replay_equal"] = replayed == repaired
    timings["delta_versions"] = len(session.delta.history())
    timings["detection_runs"] = len(lens.tracking.search_runs("Detection"))
    timings["repair_runs"] = len(lens.tracking.search_runs("Repair"))
    return timings


def test_reproducibility_overhead(benchmark, tmp_path, nasa_bundle):
    result = benchmark.pedantic(
        lambda: _pipeline_with_reproducibility(tmp_path, nasa_bundle),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Reproducibility pipeline (NASA)",
        ["stage", "value"],
        [[key, f"{value:.3f}" if isinstance(value, float) else value]
         for key, value in result.items()],
    )
    assert result["replay_equal"] is True
    assert result["delta_versions"] == 2  # upload + repair
    assert result["detection_runs"] == 4
    assert result["repair_runs"] == 1
    # DataSheet generation must be negligible next to detection+repair.
    assert result["datasheet_s"] < result["detection_s"] + result["repair_s"]
    benchmark.extra_info.update(
        {k: (round(v, 3) if isinstance(v, float) else v) for k, v in result.items()}
    )


def test_delta_write_read_cycle(benchmark, tmp_path, nasa_bundle):
    """Microbenchmark: one versioned write + read of the NASA table."""
    from repro.versioning import DeltaTable

    table = DeltaTable(tmp_path / "delta")

    def cycle():
        version = table.write(nasa_bundle.dirty)
        return table.read(version)

    frame = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert frame == nasa_bundle.dirty

"""Out-of-core scaling — profile + detect a frame several times the budget.

Ingests a CSV through the streaming chunked reader with a
:class:`~repro.dataframe.SpillStore` whose resident budget is a small
fraction of the dataset, then runs the full profile and the outlier /
missing-value detectors over the spilled frame. The store's counters
prove the residency contract: spilled bytes are several multiples of the
budget while peak resident shard bytes never exceed it — the pipeline
genuinely streamed from disk instead of densifying the table.
"""

from __future__ import annotations

import resource
import time

import numpy as np

from repro.dataframe import SpillStore, read_csv_text_chunked, to_csv_text
from repro.dataframe import DataFrame
from repro.detection.base import DetectionContext
from repro.detection.mvdetector import MVDetector
from repro.detection.outliers import IQRDetector, SDDetector
from repro.profiling import profile

from conftest import print_table

N_ROWS = 120_000
CHUNK_SIZE = 8_192
BUDGET_BYTES = 1024 * 1024  # far below the dataset's shard bytes


def _make_csv_text(n_rows: int) -> str:
    rng = np.random.default_rng(11)
    data: dict = {}
    for j in range(4):
        values = rng.normal(0.0, 1.0, n_rows)
        missing = rng.random(n_rows) < 0.02
        data[f"num{j}"] = [
            None if m else float(v) for m, v in zip(missing, values)
        ]
    data["code"] = [int(v) for v in rng.integers(0, 500, n_rows)]
    data["group"] = [f"g{int(v)}" for v in rng.integers(0, 50, n_rows)]
    return to_csv_text(DataFrame.from_dict(data))


def test_spill_scale_profile_and_detect(benchmark):
    text = _make_csv_text(N_ROWS)

    def run() -> dict:
        store = SpillStore(budget_bytes=BUDGET_BYTES)
        start = time.perf_counter()
        frame = read_csv_text_chunked(text, chunk_size=CHUNK_SIZE, spill=store)
        ingest_seconds = time.perf_counter() - start
        start = time.perf_counter()
        profile(frame)
        profile_seconds = time.perf_counter() - start
        context = DetectionContext()
        start = time.perf_counter()
        for detector in (SDDetector(), IQRDetector(), MVDetector()):
            detector.detect(frame, context)
        detect_seconds = time.perf_counter() - start
        still_spilled = sum(
            1 for name in frame.column_names if frame.column(name).spilled
        )
        return {
            "stats": store.stats(),
            "ingest": ingest_seconds,
            "profile": profile_seconds,
            "detect": detect_seconds,
            "still_spilled": still_spilled,
            "n_columns": frame.num_columns,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["stats"]
    rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print_table(
        f"Spill scaling ({N_ROWS} rows, {CHUNK_SIZE}-row chunks)",
        ["metric", "value"],
        [
            ["csv size", f"{len(text) / 1024**2:.1f} MiB"],
            ["spill budget", f"{stats['budget_bytes'] / 1024**2:.2f} MiB"],
            ["spilled bytes", f"{stats['spilled_bytes'] / 1024**2:.2f} MiB"],
            [
                "spilled / budget",
                f"{stats['spilled_bytes'] / stats['budget_bytes']:.1f}x",
            ],
            [
                "peak resident",
                f"{stats['peak_resident_bytes'] / 1024**2:.2f} MiB",
            ],
            ["spilled shards", stats["spilled_shards"]],
            ["shard loads", stats["loads"]],
            ["cache hits", stats["cache_hits"]],
            ["evictions", stats["evictions"]],
            ["ingest [s]", f"{result['ingest']:.2f}"],
            ["profile [s]", f"{result['profile']:.2f}"],
            ["detect [s]", f"{result['detect']:.2f}"],
            ["peak RSS", f"{rss_mib:.0f} MiB"],
        ],
    )
    # The dataset must dwarf the budget — otherwise this proves nothing.
    assert stats["spilled_bytes"] >= 4 * stats["budget_bytes"]
    # Residency contract: every shard fits, so the LRU never overshoots.
    assert stats["peak_resident_bytes"] <= stats["budget_bytes"]
    # The pipeline streamed: profile + detect left every column spilled.
    assert result["still_spilled"] == result["n_columns"]
    assert stats["evictions"] > 0
    benchmark.extra_info["spilled_over_budget"] = round(
        stats["spilled_bytes"] / stats["budget_bytes"], 1
    )
    benchmark.extra_info["peak_resident_bytes"] = stats["peak_resident_bytes"]

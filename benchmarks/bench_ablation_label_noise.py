"""Ablation — imperfect users in the labeling loop.

A headline contribution of the paper is realistic evaluation of ML-based
detection: instead of feeding RAHA ground-truth labels, DataLens collects
labels from actual users — who make mistakes. This bench sweeps the
simulated user's label-noise rate and reports RAHA's detection F1,
quantifying how much labeling quality the pipeline can absorb.
"""

from __future__ import annotations

import numpy as np

from repro.core import LabelingSession, SimulatedUser
from repro.ingestion import make_dirty
from repro.ml import detection_scores

from conftest import LABELING_PROFILE, print_table

NOISE_LEVELS = (0.0, 0.1, 0.2, 0.4)
SEEDS = (0, 1, 2)
BUDGET = 15


def _run_noise_sweep() -> list[dict]:
    rows = []
    for noise in NOISE_LEVELS:
        f1_scores, reviewed = [], []
        for seed in SEEDS:
            bundle = make_dirty("nasa", seed=seed, overrides=LABELING_PROFILE)
            session = LabelingSession(
                budget=BUDGET, clusters_per_column=6, seed=seed
            )
            user = SimulatedUser(bundle.mask, noise=noise, seed=seed)
            outcome = session.run(bundle.dirty, user)
            f1_scores.append(
                detection_scores(outcome.detection.cells, bundle.mask)["f1"]
            )
            reviewed.append(outcome.reviewed_tuples)
        rows.append(
            {
                "noise": noise,
                "avg_f1": float(np.mean(f1_scores)),
                "avg_reviewed": float(np.mean(reviewed)),
            }
        )
    return rows


def test_label_noise_ablation(benchmark):
    rows = benchmark.pedantic(_run_noise_sweep, rounds=1, iterations=1)
    print_table(
        f"Label-noise ablation (NASA, budget {BUDGET}): "
        "user mistakes vs RAHA F1",
        ["label noise", "avg detection F1", "avg reviewed tuples"],
        [
            [f"{row['noise']:.0%}", f"{row['avg_f1']:.3f}",
             f"{row['avg_reviewed']:.1f}"]
            for row in rows
        ],
    )
    by_noise = {row["noise"]: row for row in rows}
    # Heavy noise must clearly hurt; mild noise should be largely absorbed
    # by cluster-level label propagation.
    assert by_noise[0.4]["avg_f1"] < by_noise[0.0]["avg_f1"]
    assert by_noise[0.1]["avg_f1"] > 0.5 * by_noise[0.0]["avg_f1"]
    for row in rows:
        benchmark.extra_info[f"noise_{row['noise']}"] = round(row["avg_f1"], 3)

"""Figure 4 — distribution of detections across NASA attributes.

The paper stacks, for each of the six NASA columns, the per-column
detection rate split by source: Outlier detectors (IQR, SD), Missing
Values (MV detector), User Tagging, and Others (FAHES, RAHA). Error rates
sit below ~0.15 per attribute. The bench reproduces the stacked series and
renders the same SVG chart the dashboard shows in its Detection Results
tab.
"""

from __future__ import annotations

from pathlib import Path

from repro.core import DataLens, SimulatedUser
from repro.dashboard import stacked_bar_chart
from repro.ingestion import NASA_COLUMNS, NUMERIC_SENTINELS, make_dirty

from conftest import print_table

CATEGORY_TOOLS = {
    "Outlier": ("iqr", "sd"),
    "Missing Values": ("mv_detector",),
    "User Tagging": ("user_tags",),
    "Others": ("fahes", "raha"),
}


def _run_fig4(tmp_dir: Path) -> dict[str, list[float]]:
    bundle = make_dirty("nasa", seed=1)
    lens = DataLens(tmp_dir, seed=0)
    session = lens.ingest_frame("nasa", bundle.dirty)
    # The user tags the well-known sentinel values (§3, data tagging).
    for sentinel in NUMERIC_SENTINELS:
        if sentinel != 0.0:
            session.tag_value(sentinel)
    session.run_detection(["iqr", "sd", "fahes"])
    session.run_labeling_session(
        SimulatedUser(bundle.mask), budget=10, clusters_per_column=6
    )
    session.run_detection(["mv_detector"])
    series: dict[str, list[float]] = {}
    # Attribute each detected cell to exactly one category (priority order
    # mirrors the legend) so the stacked rates do not double-count.
    order = ["Outlier", "Missing Values", "User Tagging", "Others"]
    assigned: set = set()
    per_category_cells: dict[str, set] = {}
    for category in order:
        cells: set = set()
        for tool in CATEGORY_TOOLS[category]:
            result = session.detection_results.get(tool)
            if result is not None:
                cells |= result.cells
        per_category_cells[category] = cells - assigned
        assigned |= cells
    n = session.frame.num_rows
    for category in order:
        series[category] = [
            sum(1 for r, c in per_category_cells[category] if c == column) / n
            for column in NASA_COLUMNS
        ]
    return series


def test_fig4_error_distribution(benchmark, tmp_path):
    series = benchmark.pedantic(
        lambda: _run_fig4(tmp_path), rounds=1, iterations=1
    )
    rows = []
    for i, column in enumerate(NASA_COLUMNS):
        rows.append(
            [column]
            + [f"{series[cat][i]:.3f}" for cat in series]
            + [f"{sum(series[cat][i] for cat in series):.3f}"]
        )
    print_table(
        "Figure 4: distribution of detections across NASA attributes",
        ["column", *series.keys(), "total"],
        rows,
    )
    svg = stacked_bar_chart(
        NASA_COLUMNS,
        series,
        title="Distribution of detections across attributes (NASA)",
    )
    out = tmp_path / "fig4.svg"
    out.write_text(svg, encoding="utf-8")
    print(f"chart written to {out}")

    totals = [
        sum(series[category][i] for category in series)
        for i in range(len(NASA_COLUMNS))
    ]
    # Shape: every attribute shows detections, rates stay in the paper's
    # sub-0.2 band, and at least three sources contribute somewhere.
    assert all(total > 0.0 for total in totals)
    assert all(total < 0.25 for total in totals)
    contributing = sum(1 for cat in series if sum(series[cat]) > 0.0)
    assert contributing >= 3
    for i, column in enumerate(NASA_COLUMNS):
        benchmark.extra_info[column] = round(totals[i], 4)

"""Ablation — vectorized relational kernels vs. row-at-a-time loops.

Times ``sort_by`` / ``group_by`` / ``inner_join`` / repair application at
growing row counts, and (at a small size) compares against the retained
row-at-a-time reference to record the speedup the codes-based kernels
deliver on the interactive dashboard's hot path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dataframe import DataFrame, group_by, inner_join, sort_by
from repro.repair.base import RepairResult

from conftest import print_table

ROW_COUNTS = (5_000, 20_000, 50_000)
REFERENCE_ROWS = 5_000


def _make_frame(n_rows: int) -> DataFrame:
    rng = np.random.default_rng(42)
    values = rng.normal(0.0, 1.0, n_rows)
    return DataFrame.from_dict(
        {
            "value": [
                None if rng.random() < 0.02 else float(v) for v in values
            ],
            "group": [f"g{int(v)}" for v in rng.integers(0, 50, n_rows)],
            "code": [int(v) for v in rng.integers(0, 500, n_rows)],
        }
    )


def _make_right() -> DataFrame:
    return DataFrame.from_dict(
        {
            "code": list(range(500)),
            "label": [f"l{v % 7}" for v in range(500)],
        }
    )


def _timed(fn) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _reference_group_by(frame: DataFrame) -> DataFrame:
    groups: dict = {}
    for i in range(frame.num_rows):
        groups.setdefault(frame.at(i, "group"), []).append(i)
    out: dict = {"group": [], "total": [], "n": []}
    for key, indices in groups.items():
        values = [
            frame.at(i, "value")
            for i in indices
            if frame.at(i, "value") is not None
        ]
        out["group"].append(key)
        out["total"].append(sum(values) if values else None)
        out["n"].append(len(values) if values else None)
    return DataFrame.from_dict(out)


def _reference_join(frame: DataFrame, right: DataFrame) -> int:
    lookup: dict = {}
    for j in range(right.num_rows):
        lookup.setdefault(right.at(j, "code"), []).append(j)
    matches = 0
    for i in range(frame.num_rows):
        matches += len(lookup.get(frame.at(i, "code"), ()))
    return matches


def test_relational_ops_scaling(benchmark):
    right = _make_right()

    def run() -> list[dict]:
        rows = []
        for n_rows in ROW_COUNTS:
            frame = _make_frame(n_rows)
            aggregations = {
                "total": ("value", "sum"),
                "avg": ("value", "mean"),
                "n": ("value", "count"),
            }
            rng = np.random.default_rng(0)
            picked = rng.choice(n_rows, size=n_rows // 5, replace=False)
            repairs = {(int(r), "value"): 0.5 for r in picked}
            result = RepairResult(tool="bench", repairs=repairs)
            rows.append(
                {
                    "rows": n_rows,
                    "sort": _timed(lambda: sort_by(frame, ["group", "code"])),
                    "group_by": _timed(
                        lambda: group_by(frame, ["group"], aggregations)
                    ),
                    "join": _timed(
                        lambda: inner_join(frame, right, on=["code"])
                    ),
                    "repair": _timed(lambda: result.apply_to(frame)),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Relational kernels (vectorized) scaling",
        ["rows", "sort [ms]", "group_by [ms]", "join [ms]", "repair [ms]"],
        [
            [
                row["rows"],
                f"{row['sort'] * 1000:.1f}",
                f"{row['group_by'] * 1000:.1f}",
                f"{row['join'] * 1000:.1f}",
                f"{row['repair'] * 1000:.1f}",
            ]
            for row in rows
        ],
    )
    # Roughly linear growth: 10x rows must not cost more than ~50x time.
    for op in ("sort", "group_by", "join", "repair"):
        assert rows[-1][op] < max(rows[0][op], 1e-3) * 50 + 1.0


def test_relational_ops_vs_row_at_a_time(benchmark):
    frame = _make_frame(REFERENCE_ROWS)
    right = _make_right()
    aggregations = {"total": ("value", "sum"), "n": ("value", "count")}

    def run() -> dict:
        return {
            "group_fast": _timed(
                lambda: group_by(frame, ["group"], aggregations)
            ),
            "group_ref": _timed(lambda: _reference_group_by(frame)),
            "join_fast": _timed(lambda: inner_join(frame, right, on=["code"])),
            "join_ref": _timed(lambda: _reference_join(frame, right)),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    group_speedup = result["group_ref"] / max(result["group_fast"], 1e-9)
    join_speedup = result["join_ref"] / max(result["join_fast"], 1e-9)
    print_table(
        f"Vectorized vs row-at-a-time ({REFERENCE_ROWS} rows)",
        ["op", "vectorized [ms]", "reference [ms]", "speedup"],
        [
            [
                "group_by",
                f"{result['group_fast'] * 1000:.1f}",
                f"{result['group_ref'] * 1000:.1f}",
                f"{group_speedup:.1f}x",
            ],
            [
                "inner_join",
                f"{result['join_fast'] * 1000:.1f}",
                f"{result['join_ref'] * 1000:.1f}",
                f"{join_speedup:.1f}x",
            ],
        ],
    )
    benchmark.extra_info["group_by_speedup"] = round(group_speedup, 1)
    benchmark.extra_info["join_speedup"] = round(join_speedup, 1)
    assert group_speedup > 2.0
    assert join_speedup > 2.0
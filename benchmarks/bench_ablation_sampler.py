"""Ablation — HPO sampler choice for iterative cleaning.

The paper's future work (3) asks about "more advanced hyperparameter
optimization techniques and ... reinforcement learning for dynamic tool
selection"; this bench compares the TPE sampler the system ships against
random search, grid search, and the epsilon-greedy bandit (the RL-style
selector) under the same trial budget.
"""

from __future__ import annotations

import numpy as np

from repro.core import IterativeCleaner
from repro.ingestion import make_dirty

from conftest import print_table

DETECTORS = ["sd", "iqr", "mv_detector", "union_statistical", "union_broad", "min_k2"]
REPAIRERS = ["standard_imputer", "ml_imputer"]
TRIALS = 10
SEEDS = (0, 1, 2)


def _run_samplers() -> list[dict]:
    bundle = make_dirty("nasa", seed=1)
    rows = []
    for sampler in ("tpe", "random", "grid", "bandit"):
        scores, runtimes = [], []
        for seed in SEEDS:
            cleaner = IterativeCleaner(
                task="regression",
                target="Sound Pressure",
                sampler=sampler,
                detector_choices=DETECTORS,
                repairer_choices=REPAIRERS,
                seed=seed,
            )
            result = cleaner.clean(
                bundle.dirty, n_iterations=TRIALS, reference=bundle.clean
            )
            scores.append(result.best_score)
            runtimes.append(result.search_runtime_seconds)
        rows.append(
            {
                "sampler": sampler,
                "mean_best_mse": float(np.mean(scores)),
                "std": float(np.std(scores)),
                "mean_runtime": float(np.mean(runtimes)),
            }
        )
    return rows


def test_sampler_ablation(benchmark):
    rows = benchmark.pedantic(_run_samplers, rounds=1, iterations=1)
    print_table(
        f"Sampler ablation (NASA, {TRIALS} trials, {len(SEEDS)} seeds)",
        ["sampler", "mean best MSE", "std", "mean runtime [s]"],
        [
            [
                row["sampler"],
                f"{row['mean_best_mse']:.2f}",
                f"{row['std']:.2f}",
                f"{row['mean_runtime']:.1f}",
            ]
            for row in rows
        ],
    )
    by_name = {row["sampler"]: row for row in rows}
    # All samplers must find a configuration far better than doing nothing;
    # TPE should not lose badly to random search (sequential model-based
    # search is the paper's §4 design choice).
    assert by_name["tpe"]["mean_best_mse"] <= by_name["random"][
        "mean_best_mse"
    ] * 1.5
    for row in rows:
        benchmark.extra_info[row["sampler"]] = round(row["mean_best_mse"], 2)

"""Figure 5 — impact of the number of search iterations (§4).

For iteration counts {5, 10, 15, 20}, run the iterative cleaner and report
the downstream score of the best tool combination found, next to the two
baselines (model on dirty data, model on ground truth) and the search
runtime. Paper shape: NASA decision-tree MSE falls toward the ground-truth
baseline as iterations grow (10.7 vs GT ~10 at 20 iterations; dirty ~50),
Beers macro-F1 rises toward ground truth (≈0.72 dirty → ≈0.78), and the
search runtime grows roughly linearly with the iteration count.
"""

from __future__ import annotations

import numpy as np

from repro.core import IterativeCleaner, SimulatedUser
from repro.detection import DetectionContext
from repro.ingestion import make_dirty

from conftest import print_table

ITERATIONS = (5, 10, 15, 20)
SEEDS = (0, 1, 2)

# The space deliberately contains weak arms for these datasets (katara and
# nadeef find nothing on the all-numeric NASA table) — the paper's point is
# that the search must discover which tools fit the data.
DETECTORS = [
    "sd",
    "iqr",
    "mv_detector",
    "fahes",
    "nadeef",
    "katara",
    "holoclean",
    "union_statistical",
    "union_broad",
    "min_k2",
    "raha",
]
REPAIRERS = ["standard_imputer", "ml_imputer", "holoclean_repair"]


def _run_sweep(dataset: str, task: str, target: str) -> list[dict]:
    bundle = make_dirty(dataset, seed=1)
    rows = []
    for n_iterations in ITERATIONS:
        best_scores, runtimes, best_params = [], [], None
        dirty_scores, clean_scores = [], []
        for seed in SEEDS:
            context = DetectionContext(
                labeler=SimulatedUser(bundle.mask),
                labeling_budget=10,
                seed=seed,
            )
            cleaner = IterativeCleaner(
                task=task,
                target=target,
                detector_choices=DETECTORS,
                repairer_choices=REPAIRERS,
                seed=seed,
            )
            result = cleaner.clean(
                bundle.dirty,
                n_iterations=n_iterations,
                reference=bundle.clean,
                context=context,
            )
            best_scores.append(result.best_score)
            runtimes.append(result.search_runtime_seconds)
            best_params = result.best_params
            dirty_scores.append(result.baseline_dirty)
            clean_scores.append(result.baseline_clean)
        rows.append(
            {
                "iterations": n_iterations,
                "best": float(np.mean(best_scores)),
                "dirty": float(np.mean(dirty_scores)),
                "clean": float(np.mean(clean_scores)),
                "runtime": float(np.mean(runtimes)),
                "best_params": best_params,
            }
        )
    return rows


def _report(name: str, metric: str, rows: list[dict]) -> None:
    print_table(
        f"Figure 5 ({name}): iterations vs {metric} / baselines / runtime",
        ["iterations", f"repaired {metric}", f"dirty {metric}",
         f"ground truth {metric}", "search runtime [s]", "best tools"],
        [
            [
                row["iterations"],
                f"{row['best']:.3f}",
                f"{row['dirty']:.3f}",
                f"{row['clean']:.3f}",
                f"{row['runtime']:.1f}",
                f"{row['best_params'].get('detector')}+"
                f"{row['best_params'].get('repairer')}",
            ]
            for row in rows
        ],
    )


def test_fig5a_nasa_iterative_mse(benchmark):
    rows = benchmark.pedantic(
        lambda: _run_sweep("nasa", "regression", "Sound Pressure"),
        rounds=1,
        iterations=1,
    )
    _report("NASA", "MSE", rows)
    final = rows[-1]
    # Shape: the best repaired pipeline lands near the ground-truth
    # baseline (repairs may even denoise slightly past it) and far from
    # dirty; more iterations never hurt.
    assert final["best"] < final["dirty"]
    assert final["best"] <= final["clean"] * 1.35
    gap_dirty = final["dirty"] - final["clean"]
    gap_best = final["best"] - final["clean"]
    assert gap_best < 0.35 * gap_dirty
    best_by_iteration = [row["best"] for row in rows]
    assert all(
        later <= earlier + 1e-9
        for earlier, later in zip(best_by_iteration, best_by_iteration[1:])
    )
    # Runtime grows with the iteration count (paper's trade-off message).
    assert rows[-1]["runtime"] > rows[0]["runtime"]
    for row in rows:
        benchmark.extra_info[f"iters_{row['iterations']}"] = {
            "mse": round(row["best"], 2),
            "runtime_s": round(row["runtime"], 1),
        }
    benchmark.extra_info["baseline_dirty_mse"] = round(final["dirty"], 2)
    benchmark.extra_info["baseline_clean_mse"] = round(final["clean"], 2)


def test_fig5b_beers_iterative_f1(benchmark):
    rows = benchmark.pedantic(
        lambda: _run_sweep("beers", "classification", "style"),
        rounds=1,
        iterations=1,
    )
    _report("Beers", "macro-F1", rows)
    final = rows[-1]
    # Repaired beats the dirty baseline and lands in the neighbourhood of
    # ground truth (prototype-style repairs can denoise slightly past it).
    assert final["dirty"] < final["best"] <= final["clean"] + 0.08
    best_by_iteration = [row["best"] for row in rows]
    assert all(
        later >= earlier - 1e-9
        for earlier, later in zip(best_by_iteration, best_by_iteration[1:])
    )
    assert rows[-1]["runtime"] > rows[0]["runtime"]
    for row in rows:
        benchmark.extra_info[f"iters_{row['iterations']}"] = {
            "f1": round(row["best"], 3),
            "runtime_s": round(row["runtime"], 1),
        }
    benchmark.extra_info["baseline_dirty_f1"] = round(final["dirty"], 3)
    benchmark.extra_info["baseline_clean_f1"] = round(final["clean"], 3)

"""Serving-layer load benchmark: latency/throughput under concurrency.

Boots the real asyncio HTTP server (socket and all) over a workspace
with the dirty NASA dataset, then drives it with N concurrent keep-alive
clients issuing a mixed read/poll workload plus a detection POST. The
table reports p50/p99 latency and aggregate throughput; the run fails on
any 5xx or timeout — the acceptance gate for the async rebuild.

A second leg submits a long-running profile job via ``?async=1`` and
shows fast requests completing while the job is answerable (and finally
``done``) through ``GET /jobs/{id}``.

``DATALENS_BENCH_CLIENTS`` overrides the client count (default 8).
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

from repro.api import TestClient, create_app, serve
from repro.core import DataLens

from conftest import print_table

CLIENTS = int(os.environ.get("DATALENS_BENCH_CLIENTS", "8"))
REQUESTS_PER_CLIENT = 24
#: Read-mostly mix, matching a dashboard polling while users browse.
READ_PATHS = (
    "/health",
    "/datasets/nasa",
    "/datasets/nasa/quality",
    "/datasets/nasa/detections",
    "/datasets/nasa/versions",
)


def _boot(tmp_path, nasa_bundle):
    lens = DataLens(tmp_path / "workspace", seed=0)
    lens.ingest_frame("nasa", nasa_bundle.dirty)
    router = create_app(lens)
    # Seed one detection so /detections has content and repair-ish
    # endpoints are exercised realistically.
    seeded = TestClient(router).post(
        "/datasets/nasa/detect", {"tools": ["mv_detector", "iqr"]}
    )
    assert seeded.status == 200
    server = serve(router, port=0)
    return router, server


def _client_worker(port: int, client_id: int, out: list, failures: list):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        for i in range(REQUESTS_PER_CLIENT):
            if i == REQUESTS_PER_CLIENT // 2 and client_id == 0:
                # One writer in the fleet: a sync detection POST that
                # serializes against the reads via the dataset lock.
                method, path, body = (
                    "POST",
                    "/datasets/nasa/detect",
                    json.dumps({"tools": ["mv_detector"]}),
                )
            else:
                method, path, body = (
                    "GET",
                    READ_PATHS[(client_id + i) % len(READ_PATHS)],
                    None,
                )
            start = time.perf_counter()
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            response.read()
            elapsed = time.perf_counter() - start
            out.append(elapsed)
            if response.status >= 500:
                failures.append((method, path, response.status))
    except Exception as error:  # noqa: BLE001 — a dead socket is a failure
        failures.append(("CONN", f"client {client_id}", repr(error)))
    finally:
        conn.close()


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def test_serving_load(benchmark, tmp_path, nasa_bundle):
    router, server = _boot(tmp_path, nasa_bundle)
    port = server.server_address[1]
    try:

        def run():
            latencies: list[float] = []
            failures: list = []
            lock = threading.Lock()

            def worker(client_id: int):
                mine: list[float] = []
                _client_worker(port, client_id, mine, failures)
                with lock:
                    latencies.extend(mine)

            threads = [
                threading.Thread(target=worker, args=(client_id,))
                for client_id in range(CLIENTS)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            wall = time.perf_counter() - start
            return latencies, failures, wall

        latencies, failures, wall = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        assert failures == [], f"5xx/timeouts under load: {failures[:5]}"
        expected = CLIENTS * REQUESTS_PER_CLIENT
        assert len(latencies) == expected
        print_table(
            f"Serving load — {CLIENTS} concurrent keep-alive clients",
            ["clients", "requests", "p50 (ms)", "p99 (ms)", "rps", "5xx"],
            [
                [
                    CLIENTS,
                    len(latencies),
                    round(_percentile(latencies, 0.50) * 1e3, 2),
                    round(_percentile(latencies, 0.99) * 1e3, 2),
                    round(len(latencies) / wall, 1),
                    0,
                ]
            ],
        )
    finally:
        server.shutdown()
        router.job_queue.shutdown()


def test_async_job_poll_while_serving(tmp_path, nasa_bundle):
    """A long profile job stays answerable while fast requests complete."""
    router, server = _boot(tmp_path, nasa_bundle)
    port = server.server_address[1]
    try:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        conn.request("GET", "/datasets/nasa/profile?async=1")
        response = conn.getresponse()
        submitted = json.loads(response.read())
        assert response.status == 202, submitted
        job_id = submitted["job_id"]

        fast_during_job = 0
        statuses_seen = set()
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            conn.request("GET", f"/jobs/{job_id}")
            job = json.loads(conn.getresponse().read())
            statuses_seen.add(job["status"])
            if job["status"] in ("done", "failed"):
                break
            # Fast request interleaved with every poll.
            conn.request("GET", "/datasets/nasa")
            fast = conn.getresponse()
            fast.read()
            assert fast.status == 200
            fast_during_job += 1
        conn.close()

        assert job["status"] == "done", job.get("error")
        assert job["result"]["overview"]["rows"] == 1503
        print_table(
            "Async profile job polled over HTTP",
            ["job states seen", "fast 200s during job", "final status"],
            [[",".join(sorted(statuses_seen)), fast_during_job, job["status"]]],
        )
    finally:
        server.shutdown()
        router.job_queue.shutdown()

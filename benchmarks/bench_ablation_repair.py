"""Ablation — repair strategy impact on the downstream model (§3).

Fix the detector (the broad union) and swap the repair tool: the paper's
ML-based imputation (decision tree / k-NN) should beat the standard
mean/'Dummy' imputation on downstream performance, with HoloClean's
co-occurrence repair in between.
"""

from __future__ import annotations

from repro.core import DownstreamScorer, make_detector, make_repairer
from repro.detection import DetectionContext

from conftest import print_table

REPAIRERS = ["standard_imputer", "ml_imputer", "holoclean_repair"]


def _evaluate(bundle, task: str, target: str) -> list[dict]:
    detector = make_detector("union_broad")
    cells = detector.detect(bundle.dirty, DetectionContext()).cells
    scorer = DownstreamScorer(task, target, reference=bundle.clean, seed=0)
    rows = [
        {
            "repairer": "(none: dirty data)",
            "score": scorer.score(bundle.dirty),
            "repairs": 0,
        }
    ]
    for name in REPAIRERS:
        repairer = make_repairer(name)
        result = repairer.repair(bundle.dirty, cells)
        repaired = result.apply_to(bundle.dirty)
        rows.append(
            {
                "repairer": name,
                "score": scorer.score(repaired),
                "repairs": len(result.repairs),
            }
        )
    rows.append(
        {
            "repairer": "(ground truth)",
            "score": scorer.score(bundle.clean),
            "repairs": 0,
        }
    )
    return rows


def test_repair_ablation_nasa(benchmark, nasa_bundle):
    rows = benchmark.pedantic(
        lambda: _evaluate(nasa_bundle, "regression", "Sound Pressure"),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Repair ablation (NASA, detector = union_broad, metric = MSE)",
        ["repairer", "downstream MSE", "repairs applied"],
        [
            [row["repairer"], f"{row['score']:.2f}", row["repairs"]]
            for row in rows
        ],
    )
    by_name = {row["repairer"]: row["score"] for row in rows}
    assert by_name["ml_imputer"] < by_name["(none: dirty data)"]
    assert by_name["standard_imputer"] < by_name["(none: dirty data)"]
    # The paper pairs ML imputation with its best pipelines (Fig. 5a found
    # "Raha and ML Imputer"); it must beat naive mean imputation here.
    assert by_name["ml_imputer"] <= by_name["standard_imputer"]
    for row in rows:
        benchmark.extra_info[row["repairer"]] = round(row["score"], 2)


def test_repair_ablation_beers(benchmark, beers_bundle):
    rows = benchmark.pedantic(
        lambda: _evaluate(beers_bundle, "classification", "style"),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Repair ablation (Beers, detector = union_broad, metric = macro-F1)",
        ["repairer", "downstream macro-F1", "repairs applied"],
        [
            [row["repairer"], f"{row['score']:.3f}", row["repairs"]]
            for row in rows
        ],
    )
    by_name = {row["repairer"]: row["score"] for row in rows}
    assert by_name["ml_imputer"] >= by_name["(none: dirty data)"] - 0.02
    for row in rows:
        benchmark.extra_info[row["repairer"]] = round(row["score"], 3)

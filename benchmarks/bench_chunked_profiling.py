"""Ablation — chunked & parallel profiling vs. the monolithic engine.

Times the full profile report at growing row counts in three modes
(monolithic frame, chunked serial, chunked thread-parallel) and the
streaming chunked CSV reader against the monolithic reader, recording
the scaling trajectory the chunked execution layer delivers. Results are
asserted bit-identical across modes — the speed modes are the *same*
engine, not an approximation.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.dataframe import (
    DataFrame,
    read_csv_text,
    read_csv_text_chunked,
    to_csv_text,
)
from repro.profiling import profile

from conftest import print_table

ROW_COUNTS = (20_000, 50_000, 100_000, 200_000)
CHUNK_SIZE = 16_384


def _make_frame(n_rows: int) -> DataFrame:
    rng = np.random.default_rng(7)
    data: dict = {}
    for j in range(5):
        values = rng.normal(0.0, 1.0, n_rows)
        missing = rng.random(n_rows) < 0.02
        data[f"num{j}"] = [
            None if m else float(v) for m, v in zip(missing, values)
        ]
    data["code"] = [int(v) for v in rng.integers(0, 500, n_rows)]
    data["group"] = [f"g{int(v)}" for v in rng.integers(0, 50, n_rows)]
    return DataFrame.from_dict(data)


def _timed(fn) -> float:
    best = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_chunked_profiling_scaling(benchmark):
    workers = min(4, os.cpu_count() or 1)

    def run() -> list[dict]:
        rows = []
        for n_rows in ROW_COUNTS:
            frame = _make_frame(n_rows)
            chunked = frame.to_chunked(CHUNK_SIZE)
            mono_time = _timed(lambda: profile(frame))
            serial_time = _timed(lambda: profile(chunked))
            parallel_time = _timed(lambda: profile(chunked, n_jobs=workers))
            assert (
                profile(chunked, n_jobs=workers).to_dict()
                == profile(frame).to_dict()
            )
            rows.append(
                {
                    "rows": n_rows,
                    "mono": mono_time,
                    "serial": serial_time,
                    "parallel": parallel_time,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Chunked profiling ({CHUNK_SIZE}-row chunks, {workers} workers)",
        ["rows", "monolithic [s]", "chunked serial [s]", "parallel [s]",
         "serial overhead", "parallel speedup"],
        [
            [
                row["rows"],
                f"{row['mono']:.3f}",
                f"{row['serial']:.3f}",
                f"{row['parallel']:.3f}",
                f"{row['serial'] / row['mono']:.2f}x",
                f"{row['serial'] / row['parallel']:.2f}x",
            ]
            for row in rows
        ],
    )
    for row in rows:
        # The chunk layer must stay within noise of monolithic serially.
        assert row["serial"] < row["mono"] * 1.5 + 0.05
        benchmark.extra_info[f"serial_{row['rows']}"] = round(row["serial"], 3)
        benchmark.extra_info[f"parallel_{row['rows']}"] = round(
            row["parallel"], 3
        )


def test_streaming_csv_ingestion(benchmark):
    def run() -> list[dict]:
        rows = []
        for n_rows in (50_000, 200_000):
            text = to_csv_text(_make_frame(n_rows))
            mono_time = _timed(lambda: read_csv_text(text))
            chunked_time = _timed(
                lambda: read_csv_text_chunked(text, chunk_size=CHUNK_SIZE)
            )
            if n_rows <= 50_000:  # value equality spot-check, once
                assert read_csv_text_chunked(
                    text, chunk_size=CHUNK_SIZE
                ) == read_csv_text(text)
            rows.append(
                {"rows": n_rows, "mono": mono_time, "chunked": chunked_time}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Streaming chunked CSV ingestion",
        ["rows", "read_csv [s]", "read_csv_chunked [s]", "ratio"],
        [
            [
                row["rows"],
                f"{row['mono']:.3f}",
                f"{row['chunked']:.3f}",
                f"{row['chunked'] / row['mono']:.2f}x",
            ]
            for row in rows
        ],
    )
    for row in rows:
        # Streaming must stay in the same ballpark as the bulk reader.
        assert row["chunked"] < row["mono"] * 2.0 + 0.1

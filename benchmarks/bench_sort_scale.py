"""Out-of-core sort scaling — external merge sort of a frame ~8x the budget.

One CSV is streamed into a :class:`~repro.dataframe.SpillStore` whose
resident budget is a small fraction of the table, external-sorted on a
two-key order (runs and merged output spill through the same store), and
then merge-joined against a second spilled table via the planner's
``sortmerge`` strategy. The store counters prove both operators ran
out-of-core: spilled bytes are several multiples of the budget while
peak resident shard bytes never exceed it, and the inputs *and the
sorted output* are still spilled afterwards — sorting never densified a
table that would not have fit.
"""

from __future__ import annotations

import resource
import time

import numpy as np

from repro.dataframe import (
    DataFrame,
    SpillStore,
    external_sort_by,
    is_sorted_on,
    join,
    read_csv_text_chunked,
    to_csv_text,
)

from conftest import print_table

N_ROWS = 80_000
N_RIGHT = 20_000
N_KEYS = 5_000
CHUNK_SIZE = 4_096
BUDGET_BYTES = 256 * 1024  # the input's shard bytes are ~8x this


def _csv_text(n_rows: int) -> str:
    rng = np.random.default_rng(17)
    missing = rng.random(n_rows) < 0.01
    return to_csv_text(
        DataFrame.from_dict(
            {
                "key": [
                    None if m else int(v)
                    for m, v in zip(missing, rng.integers(0, N_KEYS, n_rows))
                ],
                "tag": [f"t{int(v)}" for v in rng.integers(0, 40, n_rows)],
                "x0": [float(v) for v in rng.normal(0.0, 1.0, n_rows)],
                "x1": [float(v) for v in rng.normal(0.0, 1.0, n_rows)],
            }
        )
    )


def _right_csv_text(n_rows: int) -> str:
    rng = np.random.default_rng(19)
    return to_csv_text(
        DataFrame.from_dict(
            {
                "key": [int(v) for v in rng.integers(0, N_KEYS, n_rows)],
                "label": [f"l{int(v)}" for v in rng.integers(0, 25, n_rows)],
            }
        )
    )


def test_external_sort_scale(benchmark):
    text = _csv_text(N_ROWS)
    right_text = _right_csv_text(N_RIGHT)

    def run() -> dict:
        store = SpillStore(budget_bytes=BUDGET_BYTES)
        start = time.perf_counter()
        frame = read_csv_text_chunked(text, chunk_size=CHUNK_SIZE, spill=store)
        right = read_csv_text_chunked(
            right_text, chunk_size=CHUNK_SIZE, spill=store
        )
        ingest_seconds = time.perf_counter() - start
        input_spilled_bytes = store.stats()["spilled_bytes"]
        start = time.perf_counter()
        ordered = external_sort_by(frame, ["key", "tag"])
        sort_seconds = time.perf_counter() - start
        sorted_probe = is_sorted_on(ordered, ["key", "tag"])
        # Residency snapshot before anything downstream touches shards.
        output_spilled = sum(
            1 for name in ordered.column_names if ordered.column(name).spilled
        )
        input_spilled = sum(
            1 for name in frame.column_names if frame.column(name).spilled
        )
        start = time.perf_counter()
        # auto: spilled inputs + sorted left -> the sortmerge plan.
        joined = join(ordered, right, ["key"], how="inner")
        join_seconds = time.perf_counter() - start
        return {
            "stats": store.stats(),
            "input_spilled_bytes": input_spilled_bytes,
            "ingest": ingest_seconds,
            "sort": sort_seconds,
            "join": join_seconds,
            "sorted_probe": sorted_probe,
            "joined_rows": joined.num_rows,
            "input_spilled": input_spilled,
            "output_spilled": output_spilled,
            "n_columns": frame.num_columns,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["stats"]
    rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print_table(
        f"External sort scaling ({N_ROWS} rows, {CHUNK_SIZE}-row chunks)",
        ["metric", "value"],
        [
            ["spill budget", f"{stats['budget_bytes'] / 1024:.0f} KiB"],
            [
                "input spilled",
                f"{result['input_spilled_bytes'] / 1024:.0f} KiB",
            ],
            [
                "input / budget",
                f"{result['input_spilled_bytes'] / stats['budget_bytes']:.1f}x",
            ],
            [
                "total spilled (incl. runs)",
                f"{stats['spilled_bytes'] / 1024:.0f} KiB",
            ],
            ["peak resident", f"{stats['peak_resident_bytes'] / 1024:.1f} KiB"],
            ["spilled shards", stats["spilled_shards"]],
            ["shard loads", stats["loads"]],
            ["evictions", stats["evictions"]],
            ["joined rows", result["joined_rows"]],
            ["ingest [s]", f"{result['ingest']:.2f}"],
            ["sort [s]", f"{result['sort']:.2f}"],
            ["sortmerge join [s]", f"{result['join']:.2f}"],
            ["peak RSS", f"{rss_mib:.0f} MiB"],
        ],
    )
    # The input must dwarf the budget — the issue's ~8x-budget shape.
    assert result["input_spilled_bytes"] >= 6 * stats["budget_bytes"]
    # Residency contract: run generation, the k-way merge, and the
    # downstream sortmerge join never overshoot the resident budget.
    assert stats["peak_resident_bytes"] <= stats["budget_bytes"]
    # Sorting streamed: the input stayed spilled, and the sorted output
    # itself is spill-backed rather than densified.
    assert result["input_spilled"] == result["n_columns"]
    assert result["output_spilled"] == result["n_columns"]
    assert result["sorted_probe"]
    assert result["joined_rows"] > 0
    assert stats["evictions"] > 0
    benchmark.extra_info["peak_resident_bytes"] = stats["peak_resident_bytes"]
    benchmark.extra_info["sort_seconds"] = result["sort"]

"""Ablation — profile-report cost as the dataset grows.

The Data Profile tab is generated automatically on ingestion, so its
runtime bounds dashboard interactivity. This bench scales NASA row counts
and also times the full report on each bundled dataset.
"""

from __future__ import annotations

import time

from repro.ingestion import beers, hospital, nasa
from repro.profiling import profile

from conftest import print_table

ROW_COUNTS = (250, 500, 1000, 2000)


def _scaling() -> list[dict]:
    rows = []
    for n_rows in ROW_COUNTS:
        frame = nasa(n_rows)
        start = time.perf_counter()
        report = profile(frame)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "rows": n_rows,
                "seconds": elapsed,
                "alerts": len(report.alerts),
            }
        )
    return rows


def test_profile_scaling(benchmark):
    rows = benchmark.pedantic(_scaling, rounds=1, iterations=1)
    print_table(
        "Profile report scaling (NASA rows)",
        ["rows", "profile runtime [s]", "alerts"],
        [
            [row["rows"], f"{row['seconds']:.3f}", row["alerts"]]
            for row in rows
        ],
    )
    # Roughly linear growth: 8x rows must not cost more than ~40x time.
    assert rows[-1]["seconds"] < max(rows[0]["seconds"], 1e-3) * 40 + 1.0
    for row in rows:
        benchmark.extra_info[f"rows_{row['rows']}"] = round(row["seconds"], 3)


def test_profile_nasa_full(benchmark):
    frame = nasa()
    report = benchmark(lambda: profile(frame))
    assert report.overview["rows"] == 1503


def test_profile_beers_full(benchmark):
    frame = beers()
    report = benchmark.pedantic(lambda: profile(frame), rounds=1, iterations=1)
    assert report.overview["rows"] == 2410


def test_profile_hospital_full(benchmark):
    frame = hospital()
    report = benchmark.pedantic(lambda: profile(frame), rounds=1, iterations=1)
    assert report.overview["categorical_columns"] >= 5

"""Ablation — incremental re-profile/re-score via the artifact cache.

Simulates the dashboard's interactive loop at growing row counts: cold
profile, cache-populating profile, a 1%-of-cells repair concentrated in
two columns, then the incremental re-profile and re-score served by the
session :class:`~repro.core.artifacts.ArtifactStore`. Records the
cold/warm trajectory, the recompute set (cache misses), and asserts the
warm outputs bit-identical to cold ones — the cached path is the *same*
engine replaying content-addressed results, not an approximation.
"""

from __future__ import annotations

import time

from repro.core.artifacts import ArtifactStore
from repro.core.quality import quality_summary
from repro.dataframe import DataFrame
from repro.profiling import profile

from conftest import print_table
from incremental_workload import (
    N_CODES,
    N_NUMERIC,
    N_STRINGS,
    make_incremental_frame,
    one_percent_repair,
)

ROW_COUNTS = (20_000, 50_000, 100_000, 200_000)


def _repair(frame: DataFrame, seed: int) -> DataFrame:
    """Apply the shared 1%-of-cells two-column repair."""
    return one_percent_repair(frame, seed).apply_to(frame)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_incremental_session_scaling(benchmark):
    def run() -> list[dict]:
        rows = []
        for n_rows in ROW_COUNTS:
            frame = make_incremental_frame(n_rows)
            store = ArtifactStore(enabled=True)
            cold_time, cold_report = _timed(lambda: profile(frame))
            _timed(lambda: profile(frame, store=store))  # populate
            repaired = _repair(frame, seed=1)
            misses_before = store.misses
            warm_time, warm_report = _timed(
                lambda: profile(repaired, store=store)
            )
            recomputed = store.misses - misses_before
            assert warm_report.to_json() == profile(repaired).to_json()
            assert cold_report.to_json() != warm_report.to_json()

            quality_cold_time, quality_cold = _timed(
                lambda: quality_summary(repaired)
            )
            quality_warm_time, quality_warm = _timed(
                lambda: quality_summary(repaired, store=store)
            )
            assert quality_warm == quality_cold
            rows.append(
                {
                    "rows": n_rows,
                    "cold_s": round(cold_time, 3),
                    "warm_s": round(warm_time, 3),
                    "speedup": round(cold_time / warm_time, 1),
                    "misses": recomputed,
                    "hit_rate": round(store.stats()["hit_rate"], 3),
                    "quality_cold_s": round(quality_cold_time, 3),
                    "quality_warm_s": round(quality_warm_time, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Incremental re-profile after a 1%-of-cells repair "
        f"({N_NUMERIC + N_CODES + N_STRINGS} columns, 2 repaired)",
        [
            "rows",
            "cold profile (s)",
            "incremental (s)",
            "speedup",
            "artifacts recomputed",
            "hit rate",
            "quality cold (s)",
            "quality warm (s)",
        ],
        [
            [
                row["rows"],
                row["cold_s"],
                row["warm_s"],
                f"{row['speedup']}x",
                row["misses"],
                row["hit_rate"],
                row["quality_cold_s"],
                row["quality_warm_s"],
            ]
            for row in rows
        ],
    )
    largest = rows[-1]
    assert largest["speedup"] >= 5.0, (
        f"incremental re-profile speedup {largest['speedup']}x < 5x at "
        f"{largest['rows']} rows"
    )

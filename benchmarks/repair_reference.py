"""Retained pure-Python reference for the repair-proposal engine.

This module preserves the historical per-cell implementations that the
vectorized codes-based engine replaced: per-value tokenization, the
Counter-based co-occurrence fit (O(rows · cols²) Python triple loop),
per-candidate ``log_score`` scoring for detection and repair, and the
row-at-a-time KNN / decision-tree prediction loops of the ML imputer.

It is the ground truth for two consumers:

* ``tests/repair/test_proposal_equivalence.py`` pins the vectorized
  engine bit-identical to these semantics over random and adversarial
  frames;
* ``benchmarks/bench_repair_scale.py`` times the engine against this
  reference at 50k×10 / 1%-dirty-cells scale (the ≥ 15x acceptance
  budget) and re-checks bit-identity at that scale.

The shared workload builders (frame shape, dirty-cell sampling) live
here too, so budget and benchmark always measure the same workload.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Hashable

import numpy as np

from repro.dataframe import DataFrame
from repro.detection.holoclean import HoloCleanDetector, _MISSING
from repro.ml import DecisionTreeRegressor, FrameEncoder, KNeighborsClassifier
from repro.repair.base import group_cells_by_column, mask_cells

# ----------------------------------------------------------------------
# Shared workload: the 50k×10 repair benchmark frame
# ----------------------------------------------------------------------

N_REPAIR_COLUMNS = 10
DIRTY_FRACTION = 0.01


def make_repair_frame(n_rows: int, seed: int = 23) -> DataFrame:
    """10-column frame with real co-occurrence structure.

    Two correlated city→country style string pairs, two correlated int
    code columns, and four numerics (two correlated pairs) — so the
    posterior repair has signal to exploit, like the hospital dataset.
    """
    rng = np.random.default_rng(seed)
    city = rng.integers(0, 40, n_rows)
    region = city // 4
    brand = rng.integers(0, 30, n_rows)
    style = brand % 6
    code = rng.integers(0, 25, n_rows)
    base = rng.normal(0.0, 1.0, n_rows)
    return DataFrame.from_dict(
        {
            "city": [f"city{int(v)}" for v in city],
            "country": [f"country{int(v)}" for v in region],
            "brand": [f"brand{int(v)}" for v in brand],
            "style": [f"style{int(v)}" for v in style],
            "code": [int(v) for v in code],
            "group": [int(v) * 3 for v in code // 5],
            "num0": [float(v) for v in base],
            "num1": [float(2.0 * v + e) for v, e in zip(base, rng.normal(0, 0.3, n_rows))],
            "num2": [float(v) for v in rng.normal(5.0, 2.0, n_rows)],
            "num3": [float(v) for v in rng.uniform(-1.0, 1.0, n_rows)],
        }
    )


def sample_dirty_cells(frame: DataFrame, seed: int = 5, fraction: float = DIRTY_FRACTION):
    """Uniformly random ``fraction`` of all cells, as a detected-cell set."""
    rng = np.random.default_rng(seed)
    total = frame.num_rows * frame.num_columns
    n_dirty = int(total * fraction)
    flat = rng.choice(total, size=n_dirty, replace=False)
    names = frame.column_names
    return {
        (int(index // frame.num_columns), names[int(index % frame.num_columns)])
        for index in flat
    }


# ----------------------------------------------------------------------
# Historical co-occurrence engine (per-value tokens, Counter statistics)
# ----------------------------------------------------------------------


class ReferenceCooccurrenceModel:
    """The retained dict-of-Counters co-occurrence model."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self._counts: dict[tuple[str, str], dict[Hashable, Counter]] = defaultdict(
            lambda: defaultdict(Counter)
        )
        self._domains: dict[str, set[Hashable]] = defaultdict(set)

    def fit(self, tokens: dict[str, list[Hashable]]) -> "ReferenceCooccurrenceModel":
        columns = list(tokens)
        n_rows = len(tokens[columns[0]]) if columns else 0
        for target in columns:
            for value in tokens[target]:
                if value != _MISSING:
                    self._domains[target].add(value)
        for target in columns:
            for other in columns:
                if target == other:
                    continue
                pair = self._counts[(target, other)]
                for row in range(n_rows):
                    target_value = tokens[target][row]
                    other_value = tokens[other][row]
                    if target_value == _MISSING or other_value == _MISSING:
                        continue
                    pair[other_value][target_value] += 1
        return self

    def domain(self, column: str) -> set[Hashable]:
        return self._domains[column]

    def log_score(
        self, column: str, candidate: Hashable, row_tokens: dict[str, Hashable]
    ) -> float:
        total = 0.0
        domain_size = max(1, len(self._domains[column]))
        for other, other_value in row_tokens.items():
            if other == column or other_value == _MISSING:
                continue
            counter = self._counts[(column, other)].get(other_value)
            count = counter[candidate] if counter else 0
            seen = sum(counter.values()) if counter else 0
            total += float(
                np.log((count + self.alpha) / (seen + self.alpha * domain_size))
            )
        return total


def reference_tokenize(frame: DataFrame, n_bins: int = 12) -> dict[str, list[Hashable]]:
    """The historical per-value tokenizer (quantile bins / raw values)."""
    tokens: dict[str, list[Hashable]] = {}
    for name in frame.column_names:
        column = frame.column(name)
        if column.is_numeric():
            values = column.to_numpy()
            finite = values[~np.isnan(values)]
            if len(finite) == 0:
                tokens[name] = [_MISSING] * frame.num_rows
                continue
            quantiles = np.unique(
                np.quantile(finite, np.linspace(0, 1, n_bins + 1))
            )
            edges = quantiles[1:-1]
            binned: list[Hashable] = []
            for value in values:
                if np.isnan(value):
                    binned.append(_MISSING)
                else:
                    binned.append(f"bin{int(np.searchsorted(edges, value))}")
            tokens[name] = binned
        else:
            tokens[name] = [
                _MISSING if v is None else v for v in column.values()
            ]
    return tokens


def _prune_domain(
    domain: set[Hashable], observed: Hashable, max_domain: int
) -> list[Hashable]:
    candidates = sorted(domain, key=str)
    if len(candidates) > max_domain:
        candidates = candidates[:max_domain]
    if observed not in candidates:
        candidates.append(observed)
    return candidates


def reference_holoclean_detect(
    frame: DataFrame,
    noisy: set,
    n_bins: int = 12,
    alpha: float = 1.0,
    posterior_margin: float = 2.0,
    max_domain: int = 24,
):
    """Historical posterior-margin scoring over precompiled noisy cells.

    Signal compilation (rules / IQR / nulls) is orthogonal to the
    proposal engine and shared with the vectorized path, so callers pass
    the noisy set in (``HoloCleanDetector.compile_signals``).
    """
    tokens = reference_tokenize(frame, n_bins)
    model = ReferenceCooccurrenceModel(alpha=alpha).fit(tokens)
    cells: set = set()
    scores: dict = {}
    for row, column in noisy:
        observed = tokens[column][row]
        row_tokens = {name: tokens[name][row] for name in frame.column_names}
        if observed == _MISSING:
            cells.add((row, column))
            scores[(row, column)] = 1.0
            continue
        domain = model.domain(column)
        if len(domain) < 2:
            continue
        candidates = _prune_domain(domain, observed, max_domain)
        observed_score = model.log_score(column, observed, row_tokens)
        best_score = max(
            model.log_score(column, candidate, row_tokens)
            for candidate in candidates
        )
        if best_score - observed_score >= np.log(posterior_margin):
            cells.add((row, column))
            scores[(row, column)] = float(best_score - observed_score)
    return cells, scores, {"noisy_candidates": len(noisy)}


def _reference_bin_representatives(
    frame: DataFrame, tokens: dict[str, list[Hashable]]
) -> dict[tuple[str, Hashable], float]:
    """Per-row list-append bin means (the pre-vectorization semantics)."""
    bins: dict[tuple[str, Hashable], list[float]] = defaultdict(list)
    for name in frame.numeric_column_names():
        column = frame.column(name)
        values = column.values()
        for token, value in zip(tokens[name], values):
            if token != _MISSING and value is not None:
                bins[(name, token)].append(float(value))
    return {key: float(np.mean(values)) for key, values in bins.items()}


def _reference_fallback(column: Any) -> Any:
    values = column.non_missing()
    if not values:
        return 0.0 if column.is_numeric() else "Dummy"
    if column.is_numeric():
        return float(np.mean([float(v) for v in values]))
    return column.value_counts().most_common(1)[0][0]


def reference_holoclean_repair(
    frame: DataFrame, cells: set, n_bins: int = 12, alpha: float = 1.0
):
    """Historical per-candidate argmax repair; returns (repairs, patches)."""
    masked = mask_cells(frame, cells)
    tokens = reference_tokenize(masked, n_bins)
    model = ReferenceCooccurrenceModel(alpha=alpha).fit(tokens)
    bin_values = _reference_bin_representatives(masked, tokens)
    repairs: dict = {}
    patches: dict = {}
    for column_name, rows in group_cells_by_column(cells).items():
        column = masked.column(column_name)
        domain = sorted(model.domain(column_name), key=str)
        column_values: list[Any] = []
        for row in rows:
            if not domain:
                value = _reference_fallback(column)
            else:
                row_tokens = {
                    name: tokens[name][row] for name in frame.column_names
                }
                best = max(
                    domain,
                    key=lambda candidate: model.log_score(
                        column_name, candidate, row_tokens
                    ),
                )
                if not column.is_numeric():
                    value = best
                else:
                    mean = bin_values.get((column_name, best))
                    if mean is None:
                        value = _reference_fallback(column)
                    elif column.dtype == "int":
                        value = int(round(mean))
                    else:
                        value = mean
            column_values.append(value)
            repairs[(row, column_name)] = value
        patches[column_name] = (rows, column_values)
    return repairs, patches


# ----------------------------------------------------------------------
# Historical ML-imputer prediction loops (row-at-a-time predict)
# ----------------------------------------------------------------------


def _reference_knn_predict(model: KNeighborsClassifier, matrix: np.ndarray):
    """Per-row distance + stable argsort + Counter vote (the old path)."""
    out = []
    for row in np.asarray(matrix, dtype=float):
        labels = model._neighbor_labels(row)
        counts = Counter(labels)
        best_count = max(counts.values())
        tied = sorted(
            (label for label, count in counts.items() if count == best_count),
            key=str,
        )
        out.append(tied[0])
    return out


def _reference_tree_predict(model: DecisionTreeRegressor, matrix: np.ndarray):
    return [model._predict_row(row) for row in np.asarray(matrix, dtype=float)]


def reference_ml_impute(
    frame: DataFrame,
    cells: set,
    tree_depth: int = 8,
    n_neighbors: int = 5,
    min_train_rows: int = 10,
    seed: int = 0,
):
    """Historical MLImputer._repair: per-target re-encoding, per-row predict."""
    masked = mask_cells(frame, cells)
    repairs: dict = {}
    patches: dict = {}
    models_used: dict[str, str] = {}
    for column_name, rows in group_cells_by_column(cells).items():
        target_column = masked.column(column_name)
        feature_names = [n for n in frame.column_names if n != column_name]
        if not feature_names:
            continue
        encoder = FrameEncoder(feature_names)
        matrix = encoder.fit_transform(masked)
        train_rows = np.flatnonzero(~target_column.mask()).tolist()
        if len(train_rows) < min_train_rows:
            models_used[column_name] = "fallback_constant"
            values = target_column.non_missing()
            if not values:
                fallback = 0.0 if target_column.is_numeric() else "Dummy"
            elif target_column.is_numeric():
                fallback = float(sum(float(v) for v in values) / len(values))
            else:
                fallback = target_column.value_counts().most_common(1)[0][0]
            patches[column_name] = (rows, [fallback] * len(rows))
            for row in rows:
                repairs[(row, column_name)] = fallback
            continue
        target_list = target_column.values()
        target_values = [target_list[row] for row in train_rows]
        if target_column.is_numeric():
            model: Any = DecisionTreeRegressor(max_depth=tree_depth, seed=seed)
            models_used[column_name] = "decision_tree"
            model.fit(matrix[train_rows], [float(v) for v in target_values])
            predictions = _reference_tree_predict(model, matrix[rows])
        else:
            model = KNeighborsClassifier(n_neighbors=n_neighbors)
            models_used[column_name] = "knn"
            model.fit(matrix[train_rows], target_values)
            predictions = _reference_knn_predict(model, matrix[rows])
        column_values: list[Any] = []
        for row, prediction in zip(rows, predictions):
            value = prediction
            if target_column.dtype == "int" and value is not None:
                value = int(round(float(value)))
            column_values.append(value)
            repairs[(row, column_name)] = value
        patches[column_name] = (rows, column_values)
    return repairs, patches, models_used


def compile_noisy(frame: DataFrame, context) -> set:
    """Shared signal compilation for detect-equivalence comparisons."""
    return HoloCleanDetector().compile_signals(frame, context)

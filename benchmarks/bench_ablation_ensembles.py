"""Ablation — multi-detector consolidation (§3 claim).

DataLens lets users select several detection tools and consolidates their
output with deduplication; Min-K trades recall for precision. This bench
quantifies the claim: the union improves recall over every single tool,
and Min-K(2) improves precision over the union.
"""

from __future__ import annotations

from repro.detection import (
    DetectionContext,
    FAHESDetector,
    IQRDetector,
    MinKEnsemble,
    MVDetector,
    SDDetector,
)
from repro.ml import detection_scores

from conftest import print_table


def _members():
    return [
        SDDetector(k=2.5),
        IQRDetector(factor=1.5),
        MVDetector(),
        FAHESDetector(),
    ]


def _evaluate(bundle) -> list[dict]:
    context = DetectionContext()
    rows = []
    for detector in _members():
        result = detector.detect(bundle.dirty, context)
        scores = detection_scores(result.cells, bundle.mask)
        rows.append({"tool": detector.name, **scores, "cells": len(result.cells)})
    for k in (1, 2, 3):
        ensemble = MinKEnsemble(_members(), k=k)
        result = ensemble.detect(bundle.dirty, context)
        scores = detection_scores(result.cells, bundle.mask)
        label = "union (min-k=1)" if k == 1 else f"min-k={k}"
        rows.append({"tool": label, **scores, "cells": len(result.cells)})
    return rows


def _report(name: str, rows: list[dict]) -> None:
    print_table(
        f"Ensemble ablation ({name}): precision/recall/F1 per configuration",
        ["tool", "cells", "precision", "recall", "F1"],
        [
            [
                row["tool"],
                row["cells"],
                f"{row['precision']:.3f}",
                f"{row['recall']:.3f}",
                f"{row['f1']:.3f}",
            ]
            for row in rows
        ],
    )


def _assert_claims(rows: list[dict]) -> None:
    by_tool = {row["tool"]: row for row in rows}
    union = by_tool["union (min-k=1)"]
    singles = [
        by_tool[name] for name in ("sd", "iqr", "mv_detector", "fahes")
    ]
    assert all(union["recall"] >= single["recall"] for single in singles)
    assert by_tool["min-k=2"]["precision"] >= union["precision"]


def test_ensembles_nasa(benchmark, nasa_bundle):
    rows = benchmark.pedantic(
        lambda: _evaluate(nasa_bundle), rounds=1, iterations=1
    )
    _report("NASA", rows)
    _assert_claims(rows)
    for row in rows:
        benchmark.extra_info[row["tool"]] = round(row["f1"], 3)


def test_ensembles_beers(benchmark, beers_bundle):
    rows = benchmark.pedantic(
        lambda: _evaluate(beers_bundle), rounds=1, iterations=1
    )
    _report("Beers", rows)
    _assert_claims(rows)
    for row in rows:
        benchmark.extra_info[row["tool"]] = round(row["f1"], 3)
